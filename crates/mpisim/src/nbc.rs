//! Round-based schedules for nonblocking collectives.
//!
//! Each collective is compiled into a vector of [`Round`]s at initiation
//! (mirroring libNBC-style schedule construction). The progress engine
//! advances one round at a time: post the round's internal point-to-point
//! operations, wait for them (across progress polls), apply the receive
//! actions (reduction combines, block placement), move on.
//!
//! The essential property this representation preserves is that a
//! nonblocking collective only advances **when the progress engine runs**
//! (paper §2, Figures 3 and 5): between polls, a schedule sits frozen at
//! its current round no matter how much virtual time passes.
//!
//! Algorithms: dissemination barrier, binomial broadcast/reduce,
//! recursive-doubling allreduce (power-of-two sizes; reduce+bcast
//! composition otherwise), ring allgather, pairwise-exchange all-to-all,
//! linear gather/scatter.

use std::ops::Range;
use std::rc::Rc;

use crate::engine::ReqInner;
use crate::types::{Bytes, Dtype, Rank, ReduceOp, Tag};

/// Where the payload of an internal send comes from.
#[derive(Clone, Debug)]
pub enum DataSrc {
    /// The instance accumulator in its current state.
    Acc,
    /// A byte range of the accumulator.
    AccChunk(Range<usize>),
    /// A byte range of the immutable input buffer.
    InputChunk(Range<usize>),
    /// A fixed payload (e.g. the barrier token).
    Fixed(Bytes),
}

/// What to do with the payload of an internal receive once it lands.
#[derive(Clone, Debug)]
pub enum RecvAction {
    /// Drop it (barrier tokens).
    Discard,
    /// Replace the accumulator wholesale (broadcast).
    ReplaceAcc,
    /// Element-wise reduce into the accumulator.
    CombineAcc { dtype: Dtype, op: ReduceOp },
    /// Element-wise reduce into a byte range of the accumulator
    /// (reduce-scatter phases).
    CombineAt {
        offset: usize,
        dtype: Dtype,
        op: ReduceOp,
    },
    /// Copy into the accumulator at a byte offset (gather/all-to-all).
    StoreAt(usize),
}

/// Payloads at or above this size use the Rabenseifner (reduce-scatter +
/// allgather) allreduce schedule, moving `2·len` bytes per rank instead of
/// recursive doubling's `log2(P)·len` — matching what MPICH-family
/// libraries do for large reductions.
pub const ALLREDUCE_RSAG_THRESHOLD: usize = 16 * 1024;

/// One send within a round.
#[derive(Clone, Debug)]
pub struct SendSpec {
    /// Destination, as a communicator rank.
    pub peer: Rank,
    pub data: DataSrc,
}

/// One receive within a round.
#[derive(Clone, Debug)]
pub struct RecvSpec {
    /// Source, as a communicator rank.
    pub peer: Rank,
    pub action: RecvAction,
}

/// A schedule step: all its ops are posted together and must all complete
/// before the next round is posted.
#[derive(Clone, Debug, Default)]
pub struct Round {
    pub sends: Vec<SendSpec>,
    pub recvs: Vec<RecvSpec>,
}

impl Round {
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.recvs.is_empty()
    }
}

/// A live collective: schedule + progress state. Owned by the engine.
pub struct NbcInstance {
    pub comm: crate::engine::CommId,
    pub ctx_tag: Tag,
    pub rounds: Vec<Round>,
    pub cur: usize,
    pub inflight: Vec<Rc<ReqInner>>,
    pub recv_actions: Vec<(Rc<ReqInner>, RecvAction)>,
    pub acc: Bytes,
    pub input: Option<Bytes>,
    pub user_req: Rc<ReqInner>,
}

fn ceil_log2(n: usize) -> u32 {
    debug_assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

/// Dissemination barrier: `ceil(log2 P)` rounds, in round `k` send a token
/// to `(r + 2^k) mod P` and receive one from `(r - 2^k) mod P`.
pub fn barrier_rounds(p: usize, r: Rank) -> Vec<Round> {
    debug_assert!(r < p);
    if p == 1 {
        return Vec::new();
    }
    (0..ceil_log2(p))
        .map(|k| {
            let d = 1usize << k;
            Round {
                sends: vec![SendSpec {
                    peer: (r + d) % p,
                    data: DataSrc::Fixed(Bytes::real(vec![0])),
                }],
                recvs: vec![RecvSpec {
                    peer: (r + p - d % p) % p,
                    action: RecvAction::Discard,
                }],
            }
        })
        .collect()
}

/// Binomial broadcast from `root`. The accumulator starts as the root's
/// buffer (root) or empty (others) and is replaced on receive.
pub fn bcast_rounds(p: usize, r: Rank, root: Rank) -> Vec<Round> {
    debug_assert!(r < p && root < p);
    if p == 1 {
        return Vec::new();
    }
    let vr = (r + p - root) % p; // virtual rank: root becomes 0
    let q = ceil_log2(p);
    let mut rounds = Vec::with_capacity(q as usize);
    for j in 0..q {
        let d = 1usize << j;
        let mut round = Round::default();
        if vr >= d && vr < 2 * d {
            // Receive my copy from vr - d.
            let peer_v = vr - d;
            round.recvs.push(RecvSpec {
                peer: (peer_v + root) % p,
                action: RecvAction::ReplaceAcc,
            });
        } else if vr < d && vr + d < p {
            round.sends.push(SendSpec {
                peer: (vr + d + root) % p,
                data: DataSrc::Acc,
            });
        }
        rounds.push(round);
    }
    rounds
}

/// Binomial reduce to `root` (accumulator holds the local contribution and
/// accumulates children; leaves send up).
pub fn reduce_rounds(p: usize, r: Rank, root: Rank, dtype: Dtype, op: ReduceOp) -> Vec<Round> {
    debug_assert!(r < p && root < p);
    if p == 1 {
        return Vec::new();
    }
    let vr = (r + p - root) % p;
    let q = ceil_log2(p);
    let mut rounds = Vec::with_capacity(q as usize);
    let mut sent = false;
    for j in 0..q {
        let d = 1usize << j;
        let mut round = Round::default();
        if !sent {
            if vr & d != 0 {
                round.sends.push(SendSpec {
                    peer: ((vr - d) + root) % p,
                    data: DataSrc::Acc,
                });
                sent = true;
            } else if vr + d < p {
                round.recvs.push(RecvSpec {
                    peer: ((vr + d) + root) % p,
                    action: RecvAction::CombineAcc { dtype, op },
                });
            }
        }
        rounds.push(round);
    }
    rounds
}

/// Allreduce of a `len`-byte payload. Large payloads on power-of-two rank
/// counts (with `len` divisible by `p` and the dtype) use Rabenseifner's
/// reduce-scatter + allgather; small ones use recursive doubling;
/// non-power-of-two sizes compose binomial reduce-to-0 with broadcast.
pub fn allreduce_rounds_sized(
    p: usize,
    r: Rank,
    dtype: Dtype,
    op: ReduceOp,
    len: usize,
) -> Vec<Round> {
    if p > 1
        && p.is_power_of_two()
        && len >= ALLREDUCE_RSAG_THRESHOLD
        && len.is_multiple_of(p * dtype.size())
    {
        return allreduce_rsag_rounds(p, r, dtype, op, len);
    }
    allreduce_rounds(p, r, dtype, op)
}

/// Rabenseifner allreduce: reduce-scatter by recursive halving, then
/// allgather by recursive doubling. `2·len·(p-1)/p` bytes on the wire per
/// rank, independent of `log2(p)`.
pub fn allreduce_rsag_rounds(
    p: usize,
    r: Rank,
    dtype: Dtype,
    op: ReduceOp,
    len: usize,
) -> Vec<Round> {
    debug_assert!(p.is_power_of_two() && r < p);
    debug_assert_eq!(len % (p * dtype.size()), 0);
    let q = ceil_log2(p);
    let mut rounds = Vec::with_capacity(2 * q as usize);
    // Reduce-scatter: halve the active range each round.
    let (mut lo, mut hi) = (0usize, len);
    for k in 0..q {
        let half = (hi - lo) / 2;
        let partner = r ^ (1usize << k);
        if r & (1 << k) == 0 {
            rounds.push(Round {
                sends: vec![SendSpec {
                    peer: partner,
                    data: DataSrc::AccChunk(lo + half..hi),
                }],
                recvs: vec![RecvSpec {
                    peer: partner,
                    action: RecvAction::CombineAt {
                        offset: lo,
                        dtype,
                        op,
                    },
                }],
            });
            hi = lo + half;
        } else {
            rounds.push(Round {
                sends: vec![SendSpec {
                    peer: partner,
                    data: DataSrc::AccChunk(lo..lo + half),
                }],
                recvs: vec![RecvSpec {
                    peer: partner,
                    action: RecvAction::CombineAt {
                        offset: lo + half,
                        dtype,
                        op,
                    },
                }],
            });
            lo += half;
        }
    }
    // Allgather: double the owned range back up, reversing the bits.
    for k in (0..q).rev() {
        let partner = r ^ (1usize << k);
        let size = hi - lo;
        let partner_lo = if r & (1 << k) == 0 { hi } else { lo - size };
        rounds.push(Round {
            sends: vec![SendSpec {
                peer: partner,
                data: DataSrc::AccChunk(lo..hi),
            }],
            recvs: vec![RecvSpec {
                peer: partner,
                action: RecvAction::StoreAt(partner_lo),
            }],
        });
        if r & (1 << k) == 0 {
            hi += size;
        } else {
            lo -= size;
        }
    }
    rounds
}

/// Allreduce. Power-of-two sizes use recursive doubling; otherwise the
/// schedule composes binomial reduce-to-0 with binomial broadcast.
pub fn allreduce_rounds(p: usize, r: Rank, dtype: Dtype, op: ReduceOp) -> Vec<Round> {
    debug_assert!(r < p);
    if p == 1 {
        return Vec::new();
    }
    if p.is_power_of_two() {
        (0..ceil_log2(p))
            .map(|k| {
                let peer = r ^ (1usize << k);
                Round {
                    sends: vec![SendSpec {
                        peer,
                        data: DataSrc::Acc,
                    }],
                    recvs: vec![RecvSpec {
                        peer,
                        action: RecvAction::CombineAcc { dtype, op },
                    }],
                }
            })
            .collect()
    } else {
        let mut rounds = reduce_rounds(p, r, 0, dtype, op);
        rounds.extend(bcast_rounds(p, r, 0));
        rounds
    }
}

/// Ring allgather of `block` bytes per rank. The accumulator is the output
/// buffer of `p * block` bytes with the local contribution pre-placed at
/// `r * block` by the caller.
pub fn allgather_rounds(p: usize, r: Rank, block: usize) -> Vec<Round> {
    debug_assert!(r < p);
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;
    (0..p.saturating_sub(1))
        .map(|k| {
            let send_block = (r + p - k) % p;
            let recv_block = (r + p - k - 1) % p;
            Round {
                sends: vec![SendSpec {
                    peer: right,
                    data: DataSrc::AccChunk(send_block * block..(send_block + 1) * block),
                }],
                recvs: vec![RecvSpec {
                    peer: left,
                    action: RecvAction::StoreAt(recv_block * block),
                }],
            }
        })
        .collect()
}

/// Pairwise-exchange all-to-all of `block` bytes per peer. The input buffer
/// holds `p * block` bytes; the accumulator is the output buffer with the
/// local block pre-placed by the caller.
pub fn alltoall_rounds(p: usize, r: Rank, block: usize) -> Vec<Round> {
    debug_assert!(r < p);
    (1..p)
        .map(|k| {
            let dst = (r + k) % p;
            let src = (r + p - k) % p;
            Round {
                sends: vec![SendSpec {
                    peer: dst,
                    data: DataSrc::InputChunk(dst * block..(dst + 1) * block),
                }],
                recvs: vec![RecvSpec {
                    peer: src,
                    action: RecvAction::StoreAt(src * block),
                }],
            }
        })
        .collect()
}

/// Linear gather of `block` bytes per rank to `root`: non-roots send once,
/// the root posts `P-1` receives in a single round. (A binomial tree would
/// lower root congestion; linear matches common small-`P` implementations
/// and keeps the root-bottleneck behaviour visible.)
pub fn gather_rounds(p: usize, r: Rank, root: Rank, block: usize) -> Vec<Round> {
    debug_assert!(r < p && root < p);
    if p == 1 {
        return Vec::new();
    }
    if r == root {
        vec![Round {
            sends: Vec::new(),
            recvs: (0..p)
                .filter(|&s| s != root)
                .map(|s| RecvSpec {
                    peer: s,
                    action: RecvAction::StoreAt(s * block),
                })
                .collect(),
        }]
    } else {
        vec![Round {
            sends: vec![SendSpec {
                peer: root,
                data: DataSrc::Acc,
            }],
            recvs: Vec::new(),
        }]
    }
}

/// Linear scatter of `block` bytes per rank from `root`.
pub fn scatter_rounds(p: usize, r: Rank, root: Rank, block: usize) -> Vec<Round> {
    debug_assert!(r < p && root < p);
    if p == 1 {
        return Vec::new();
    }
    if r == root {
        vec![Round {
            sends: (0..p)
                .filter(|&d| d != root)
                .map(|d| SendSpec {
                    peer: d,
                    data: DataSrc::InputChunk(d * block..(d + 1) * block),
                })
                .collect(),
            recvs: Vec::new(),
        }]
    } else {
        vec![Round {
            sends: Vec::new(),
            recvs: vec![RecvSpec {
                peer: root,
                action: RecvAction::ReplaceAcc,
            }],
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn barrier_round_counts() {
        assert!(barrier_rounds(1, 0).is_empty());
        assert_eq!(barrier_rounds(2, 0).len(), 1);
        assert_eq!(barrier_rounds(5, 3).len(), 3);
        assert_eq!(barrier_rounds(8, 7).len(), 3);
    }

    /// Global consistency: in every round, rank A sends to B iff B receives
    /// from A.
    fn check_matched(p: usize, schedules: &[Vec<Round>]) {
        let max_rounds = schedules.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..max_rounds {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for (r, sched) in schedules.iter().enumerate() {
                if let Some(rd) = sched.get(round) {
                    for s in &rd.sends {
                        sends.push((r, s.peer));
                    }
                    for rc in &rd.recvs {
                        recvs.push((rc.peer, r));
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "round {round} of {p} ranks mismatched");
        }
    }

    #[test]
    fn barrier_sends_match_recvs() {
        for p in [2, 3, 4, 5, 8, 13] {
            let schedules: Vec<_> = (0..p).map(|r| barrier_rounds(p, r)).collect();
            check_matched(p, &schedules);
        }
    }

    #[test]
    fn bcast_sends_match_recvs_and_cover_all() {
        for p in [2, 3, 4, 7, 8, 9] {
            for root in [0, p - 1, p / 2] {
                let schedules: Vec<_> = (0..p).map(|r| bcast_rounds(p, r, root)).collect();
                check_matched(p, &schedules);
                // Every non-root receives exactly once.
                for (r, sched) in schedules.iter().enumerate() {
                    let n: usize = sched.iter().map(|rd| rd.recvs.len()).sum();
                    assert_eq!(n, usize::from(r != root), "rank {r} root {root} p {p}");
                }
            }
        }
    }

    #[test]
    fn reduce_sends_match_recvs_and_each_nonroot_sends_once() {
        for p in [2, 3, 4, 6, 8, 11] {
            for root in [0, p - 1] {
                let schedules: Vec<_> = (0..p)
                    .map(|r| reduce_rounds(p, r, root, Dtype::F64, ReduceOp::Sum))
                    .collect();
                check_matched(p, &schedules);
                for (r, sched) in schedules.iter().enumerate() {
                    let n: usize = sched.iter().map(|rd| rd.sends.len()).sum();
                    assert_eq!(n, usize::from(r != root));
                }
            }
        }
    }

    #[test]
    fn allreduce_sends_match_recvs() {
        for p in [2, 3, 4, 5, 8, 12, 16] {
            let schedules: Vec<_> = (0..p)
                .map(|r| allreduce_rounds(p, r, Dtype::F64, ReduceOp::Sum))
                .collect();
            check_matched(p, &schedules);
        }
    }

    #[test]
    fn allgather_blocks_rotate_fully() {
        for p in [2, 3, 5, 8] {
            let schedules: Vec<_> = (0..p).map(|r| allgather_rounds(p, r, 16)).collect();
            check_matched(p, &schedules);
            // Every rank stores every foreign block exactly once.
            for (r, sched) in schedules.iter().enumerate() {
                let mut offsets: Vec<usize> = sched
                    .iter()
                    .flat_map(|rd| rd.recvs.iter())
                    .map(|rc| match rc.action {
                        RecvAction::StoreAt(o) => o / 16,
                        _ => panic!("allgather must store blocks"),
                    })
                    .collect();
                offsets.sort_unstable();
                let expect: Vec<usize> = (0..p).filter(|&b| b != r).collect();
                assert_eq!(offsets, expect);
            }
        }
    }

    #[test]
    fn alltoall_exchanges_every_pair() {
        for p in [2, 3, 4, 7] {
            let schedules: Vec<_> = (0..p).map(|r| alltoall_rounds(p, r, 8)).collect();
            check_matched(p, &schedules);
            for (r, sched) in schedules.iter().enumerate() {
                let mut dsts: Vec<usize> = sched
                    .iter()
                    .flat_map(|rd| rd.sends.iter())
                    .map(|s| s.peer)
                    .collect();
                dsts.sort_unstable();
                let expect: Vec<usize> = (0..p).filter(|&d| d != r).collect();
                assert_eq!(dsts, expect);
            }
        }
    }

    #[test]
    fn gather_scatter_match() {
        for p in [2, 4, 5] {
            let g: Vec<_> = (0..p).map(|r| gather_rounds(p, r, 0, 4)).collect();
            check_matched(p, &g);
            let s: Vec<_> = (0..p).map(|r| scatter_rounds(p, r, 0, 4)).collect();
            check_matched(p, &s);
        }
    }

    #[test]
    fn rsag_allreduce_sends_match_recvs_and_cover_every_block() {
        for p in [2usize, 4, 8, 16] {
            let len = p * 8 * 4; // divisible by p and the dtype
            let schedules: Vec<_> = (0..p)
                .map(|r| allreduce_rsag_rounds(p, r, Dtype::F64, ReduceOp::Sum, len))
                .collect();
            check_matched(p, &schedules);
            // 2·log2(p) rounds; total bytes ≈ 2·len·(p-1)/p per rank.
            for sched in &schedules {
                assert_eq!(sched.len(), 2 * (p.trailing_zeros() as usize));
            }
        }
    }

    #[test]
    fn sized_selector_picks_the_right_algorithm() {
        // Small payload → recursive doubling (log2 rounds).
        let small = allreduce_rounds_sized(8, 0, Dtype::F64, ReduceOp::Sum, 64);
        assert_eq!(small.len(), 3);
        // Large divisible payload → RSAG (2·log2 rounds).
        let large = allreduce_rounds_sized(8, 0, Dtype::F64, ReduceOp::Sum, 64 * 1024);
        assert_eq!(large.len(), 6);
        // Large but indivisible → falls back.
        let odd = allreduce_rounds_sized(8, 0, Dtype::F64, ReduceOp::Sum, 64 * 1024 + 8);
        assert_eq!(odd.len(), 3);
        // Non-power-of-two stays on the reduce+bcast composite.
        let np2 = allreduce_rounds_sized(6, 0, Dtype::F64, ReduceOp::Sum, 64 * 1024 + 16);
        assert!(np2.len() > 3);
    }

    #[test]
    fn single_rank_collectives_are_empty() {
        assert!(allreduce_rounds(1, 0, Dtype::F64, ReduceOp::Sum).is_empty());
        assert!(alltoall_rounds(1, 0, 8).is_empty());
        assert!(allgather_rounds(1, 0, 8).is_empty());
        assert!(gather_rounds(1, 0, 0, 8).is_empty());
        assert!(scatter_rounds(1, 0, 0, 8).is_empty());
    }
}
