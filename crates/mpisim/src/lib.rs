//! `mpisim` — a simulated MPI library over the `simnet` fabric.
//!
//! This is the substrate under every experiment in this reproduction: an
//! MPI-like message-passing library whose *software mechanics* mirror the
//! MPICH-derived implementations the paper evaluates against (Intel MPI,
//! Cray MPI):
//!
//! * **Eager protocol** for messages up to the profile's threshold: the
//!   send call pays an internal buffer copy proportional to the message
//!   size, then completes locally (Fig 4's rising posting cost).
//! * **Rendezvous protocol** above the threshold: an RTS control message is
//!   sent; the payload moves only after the receiver's progress engine
//!   matches the RTS and answers CTS, and the *sender's* progress engine
//!   processes that CTS. With nobody polling, a nonblocking send makes no
//!   progress during compute — precisely the overlap failure of §2.
//! * **Tag/source matching** with wildcard support, posted-receive and
//!   unexpected-message queues, FIFO per (source, communicator, tag).
//! * **Nonblocking collectives** as round-based schedules advanced only by
//!   progress polls (libNBC-style).
//! * **Thread levels**: under `MPI_THREAD_MULTIPLE`, every call takes the
//!   library's global lock and pays the paper's measured extra
//!   critical-section cost; contention between threads then emerges from
//!   the simulated mutex queueing.
//!
//! The public entry point is [`Universe`], which runs one async closure per
//! rank under the deterministic `destime` executor and hands each a
//! [`Mpi`] handle.
//!
//! # Example
//!
//! ```
//! use mpisim::{run_funneled, COMM_WORLD};
//!
//! let (outs, _elapsed) = run_funneled(2, |mpi| async move {
//!     if mpi.rank() == 0 {
//!         mpi.send(COMM_WORLD, 1, 7, vec![1u8, 2, 3]).await;
//!         0
//!     } else {
//!         let (status, data) = mpi.recv(COMM_WORLD, Some(0), Some(7)).await;
//!         assert_eq!(data.to_vec(), vec![1, 2, 3]);
//!         status.len
//!     }
//! });
//! assert_eq!(outs, vec![0, 3]);
//! ```

pub mod api;
pub mod engine;
pub mod nbc;
pub mod types;
pub mod universe;

pub use api::{Mpi, Request, COMM_WORLD};
pub use engine::{CommId, RankStats, ReqKind, WinId};
pub use types::{
    bytes_to_f64s, combine, f64s_to_bytes, Bytes, Dtype, Rank, ReduceOp, Status, Tag, ThreadLevel,
    ANY_SOURCE, ANY_TAG, TAG_INTERNAL_BASE,
};
pub use universe::{run_funneled, Universe};
