//! The per-rank MPI engine: matching, protocols, and the progress loop.
//!
//! Everything in this module is synchronous state manipulation returning the
//! virtual-time *cost* of the work performed; the async API layer
//! (`crate::api`) charges those costs to the calling simulated thread with
//! `env.advance(..)`. Keeping the engine synchronous guarantees no `RefCell`
//! borrow is ever held across an await.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use destime::sync::Flag;
use destime::Nanos;
use simnet::{Fabric, MachineProfile};

use crate::nbc::{DataSrc, NbcInstance, RecvAction, Round};
use crate::types::{combine, Bytes, Rank, Status, Tag};

/// Wire envelope size added to every message.
pub(crate) const ENVELOPE_BYTES: usize = 64;
/// Wire size of a rendezvous control message.
pub(crate) const CTRL_BYTES: usize = 64;

/// Communicator identifier. `0` is `MPI_COMM_WORLD`.
pub type CommId = u64;

/// What travels on the simulated wire.
///
/// Rendezvous control messages carry `Rc` handles to the peer request
/// objects — the simulation runs in one address space, so this stands in
/// for the match-entry pointers a real MPI embeds in its RTS/CTS packets.
pub(crate) enum WireMsg {
    Eager {
        src: Rank,
        comm: CommId,
        tag: Tag,
        payload: Bytes,
    },
    Rts {
        src: Rank,
        comm: CommId,
        tag: Tag,
        len: usize,
        sender_req: Rc<ReqInner>,
    },
    Cts {
        sender_req: Rc<ReqInner>,
        recv_req: Rc<ReqInner>,
    },
    RndvData {
        src: Rank,
        tag: Tag,
        recv_req: Rc<ReqInner>,
        payload: Bytes,
    },
    /// One-sided put: applied to the target window when the *target's*
    /// progress engine polls — without asynchronous progress, passive-
    /// target RMA stalls exactly as Casper [30] describes.
    RmaPut {
        win: WinId,
        offset: usize,
        payload: Bytes,
        origin: Rank,
        origin_req: Rc<ReqInner>,
    },
    /// Ack completing the origin's put request.
    RmaPutAck { origin_req: Rc<ReqInner> },
    /// One-sided get request; the target replies with window contents.
    RmaGetReq {
        win: WinId,
        offset: usize,
        len: usize,
        origin: Rank,
        origin_req: Rc<ReqInner>,
    },
    /// Get reply carrying the window data.
    RmaGetReply {
        origin_req: Rc<ReqInner>,
        payload: Bytes,
    },
}

/// One-sided communication window identifier.
pub type WinId = u64;

/// Request kind (diagnostics only; completion logic is uniform).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    Send,
    Recv,
    Collective,
}

/// Internal request state. User-facing [`crate::Request`] wraps an `Rc` of
/// this.
pub struct ReqInner {
    /// Diagnostic classification of the request.
    #[allow(dead_code)]
    pub(crate) kind: ReqKind,
    pub(crate) done: Flag,
    pub(crate) status: Cell<Option<Status>>,
    pub(crate) data: RefCell<Option<Bytes>>,
    /// For rendezvous sends: the payload parked until CTS arrives.
    pub(crate) parked: RefCell<Option<(Rank, Tag, Bytes)>>,
}

impl ReqInner {
    pub(crate) fn new(kind: ReqKind) -> Rc<Self> {
        Rc::new(Self {
            kind,
            done: Flag::new(),
            status: Cell::new(None),
            data: RefCell::new(None),
            parked: RefCell::new(None),
        })
    }

    pub(crate) fn complete(&self, status: Option<Status>, data: Option<Bytes>) {
        if let Some(s) = status {
            self.status.set(Some(s));
        }
        if let Some(d) = data {
            *self.data.borrow_mut() = Some(d);
        }
        self.done.set();
    }

    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }
}

/// A posted (pending) receive.
struct PostedRecv {
    comm: CommId,
    /// World-rank source filter (`None` = `MPI_ANY_SOURCE`).
    src: Option<Rank>,
    tag: Option<Tag>,
    req: Rc<ReqInner>,
}

/// A message that arrived before its receive was posted.
enum Unexpected {
    Eager {
        src: Rank,
        comm: CommId,
        tag: Tag,
        payload: Bytes,
    },
    Rndv {
        src: Rank,
        comm: CommId,
        tag: Tag,
        len: usize,
        sender_req: Rc<ReqInner>,
    },
}

impl Unexpected {
    fn key(&self) -> (CommId, Rank, Tag) {
        match self {
            Unexpected::Eager { src, comm, tag, .. } => (*comm, *src, *tag),
            Unexpected::Rndv { src, comm, tag, .. } => (*comm, *src, *tag),
        }
    }
}

/// Communicator bookkeeping.
#[derive(Clone)]
pub struct CommInfo {
    pub id: CommId,
    /// World ranks of the members, indexed by communicator rank.
    pub ranks: Rc<Vec<Rank>>,
    /// This process's rank within the communicator.
    pub my_rank: Rank,
}

impl CommInfo {
    pub fn size(&self) -> usize {
        self.ranks.len()
    }
    pub fn world_of(&self, comm_rank: Rank) -> Rank {
        self.ranks[comm_rank]
    }
}

/// Aggregate per-rank statistics (diagnostics & reports).
#[derive(Clone, Copy, Debug, Default)]
pub struct RankStats {
    pub sends: u64,
    pub recvs: u64,
    pub progress_polls: u64,
    pub unexpected_hits: u64,
    pub nbc_started: u64,
}

/// Lock-free metric handles for one rank's engine, resolved once at
/// construction. Mirrors [`RankStats`] but adds protocol splits (eager vs
/// rendezvous), queue-depth gauges with high-water marks, and the
/// `THREAD_MULTIPLE` lock wait — all exported through [`obs::Registry`]
/// snapshots so harness reports can diff them per phase.
pub struct EngineObs {
    pub registry: obs::Registry,
    pub progress_polls: obs::Counter,
    pub eager_sends: obs::Counter,
    pub rndv_sends: obs::Counter,
    pub unexpected_hits: obs::Counter,
    pub nbc_started: obs::Counter,
    /// Simulated ns application threads spent waiting on the library lock
    /// (`THREAD_MULTIPLE` serialization, charged in `api::enter`).
    pub lock_wait_ns: obs::Counter,
    pub unexpected_depth: obs::Gauge,
    pub posted_depth: obs::Gauge,
    pub active_nbcs: obs::Gauge,
}

impl Default for EngineObs {
    fn default() -> Self {
        let registry = obs::Registry::default();
        Self {
            progress_polls: registry.counter("mpi.progress_polls"),
            eager_sends: registry.counter("mpi.eager_sends"),
            rndv_sends: registry.counter("mpi.rndv_sends"),
            unexpected_hits: registry.counter("mpi.unexpected_hits"),
            nbc_started: registry.counter("mpi.nbc_started"),
            lock_wait_ns: registry.counter("mpi.lock_wait_ns"),
            unexpected_depth: registry.gauge("mpi.unexpected_depth"),
            posted_depth: registry.gauge("mpi.posted_depth"),
            active_nbcs: registry.gauge("mpi.active_nbcs"),
            registry,
        }
    }
}

/// The synchronous per-rank engine.
pub struct RankInner {
    pub(crate) world_rank: Rank,
    pub(crate) profile: MachineProfile,
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
    pub(crate) nbcs: Vec<NbcInstance>,
    pub(crate) comms: HashMap<CommId, CommInfo>,
    dup_seq: HashMap<CommId, u64>,
    split_seq: HashMap<CommId, u64>,
    pub(crate) coll_seq: HashMap<CommId, u32>,
    /// One-sided windows: id -> local exposure buffer.
    windows: HashMap<WinId, Vec<u8>>,
    win_seq: u64,
    /// Outstanding origin-side RMA requests per window (drained by fence).
    rma_origin: HashMap<WinId, Vec<Rc<ReqInner>>>,
    pub(crate) stats: RankStats,
    pub(crate) obs: EngineObs,
}

impl RankInner {
    pub fn new(world_rank: Rank, n_ranks: usize, profile: MachineProfile) -> Self {
        let mut comms = HashMap::new();
        comms.insert(
            0,
            CommInfo {
                id: 0,
                ranks: Rc::new((0..n_ranks).collect()),
                my_rank: world_rank,
            },
        );
        Self {
            world_rank,
            profile,
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            nbcs: Vec::new(),
            comms,
            dup_seq: HashMap::new(),
            split_seq: HashMap::new(),
            coll_seq: HashMap::new(),
            windows: HashMap::new(),
            win_seq: 0,
            rma_origin: HashMap::new(),
            stats: RankStats::default(),
            obs: EngineObs::default(),
        }
    }

    /// Keep the queue-depth gauges (and their high-water marks) in step
    /// with the matching structures. Cheap: three relaxed stores.
    fn sync_obs_depths(&self) {
        self.obs.unexpected_depth.set(self.unexpected.len() as u64);
        self.obs.posted_depth.set(self.posted.len() as u64);
        self.obs.active_nbcs.set(self.nbcs.len() as u64);
    }

    pub fn comm(&self, id: CommId) -> &CommInfo {
        self.comms.get(&id).expect("unknown communicator")
    }

    /// Deterministic child communicator id for `dup`: ranks must call dup
    /// collectively (in the same per-parent order), as in MPI.
    pub fn dup_comm(&mut self, parent: CommId) -> CommId {
        let seq = {
            let s = self.dup_seq.entry(parent).or_insert(0);
            *s += 1;
            *s
        };
        let info = self.comm(parent).clone();
        let id = parent.wrapping_mul(1_000).wrapping_add(seq).wrapping_add(1);
        self.comms.insert(
            id,
            CommInfo {
                id,
                ranks: info.ranks,
                my_rank: info.my_rank,
            },
        );
        id
    }

    /// Register a split result computed by the universe (see
    /// `api::Mpi::comm_split`); id derivation must match on every member.
    pub fn register_split(
        &mut self,
        parent: CommId,
        color: u64,
        members: Rc<Vec<Rank>>,
        my_rank: Rank,
    ) -> CommId {
        let seq = self.split_seq.entry(parent).or_insert(0);
        *seq += 1;
        let id = parent
            .wrapping_mul(1_000)
            .wrapping_add(500)
            .wrapping_add(*seq * 64)
            .wrapping_add(color);
        self.comms.insert(
            id,
            CommInfo {
                id,
                ranks: members,
                my_rank,
            },
        );
        id
    }

    // -- send path ----------------------------------------------------------

    /// Issue a nonblocking send. Returns `(request, caller cost in ns)`.
    pub(crate) fn isend(
        &mut self,
        fabric: &Fabric<WireMsg>,
        now: Nanos,
        comm: CommId,
        dst: Rank,
        tag: Tag,
        payload: Bytes,
    ) -> (Rc<ReqInner>, Nanos) {
        self.stats.sends += 1;
        let info = self.comm(comm).clone();
        let dst_world = info.world_of(dst);
        let len = payload.len();
        let req = ReqInner::new(ReqKind::Send);
        let p = &self.profile;
        let cost;
        if p.is_eager(len) {
            // Eager: the sender copies into an internal buffer inside the
            // call (this is what makes posting cost grow with size, Fig 4)
            // and completes locally right away.
            self.obs.eager_sends.inc();
            cost = MachineProfile::transfer_ns(len, p.eager_copy_gbps);
            fabric.transmit(
                self.world_rank,
                dst_world,
                len + ENVELOPE_BYTES,
                now + cost,
                WireMsg::Eager {
                    src: self.world_rank,
                    comm,
                    tag,
                    payload,
                },
            );
            req.complete(None, None);
        } else {
            // Rendezvous: send RTS, park the payload until CTS.
            self.obs.rndv_sends.inc();
            cost = p.rndv_ctrl_ns;
            *req.parked.borrow_mut() = Some((dst_world, tag, payload));
            fabric.transmit(
                self.world_rank,
                dst_world,
                CTRL_BYTES,
                now + cost,
                WireMsg::Rts {
                    src: self.world_rank,
                    comm,
                    tag,
                    len,
                    sender_req: req.clone(),
                },
            );
        }
        (req, cost)
    }

    // -- receive path -------------------------------------------------------

    /// Post a nonblocking receive. Returns `(request, caller cost)`.
    pub(crate) fn irecv(
        &mut self,
        fabric: &Fabric<WireMsg>,
        now: Nanos,
        comm: CommId,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> (Rc<ReqInner>, Nanos) {
        self.stats.recvs += 1;
        let info = self.comm(comm).clone();
        let src_world = src.map(|s| info.world_of(s));
        let req = ReqInner::new(ReqKind::Recv);
        let mut cost = self.profile.match_cost_ns;

        // Check the unexpected queue first (MPI matching order).
        if let Some(pos) = self.unexpected.iter().position(|u| {
            let (ucomm, usrc, utag) = u.key();
            ucomm == comm && src_world.is_none_or(|s| s == usrc) && tag.is_none_or(|t| t == utag)
        }) {
            self.stats.unexpected_hits += 1;
            self.obs.unexpected_hits.inc();
            let u = self.unexpected.remove(pos).expect("indexed entry");
            match u {
                Unexpected::Eager {
                    src: usrc,
                    tag: utag,
                    payload,
                    ..
                } => {
                    // Copy out of the internal eager buffer into user space.
                    cost += MachineProfile::transfer_ns(payload.len(), self.profile.mem_copy_gbps);
                    req.complete(
                        Some(Status {
                            source: usrc,
                            tag: utag,
                            len: payload.len(),
                        }),
                        Some(payload),
                    );
                }
                Unexpected::Rndv {
                    src: usrc,
                    sender_req,
                    ..
                } => {
                    // Reply CTS; completion when the data lands.
                    cost += self.profile.rndv_ctrl_ns;
                    fabric.transmit(
                        self.world_rank,
                        usrc,
                        CTRL_BYTES,
                        now + cost,
                        WireMsg::Cts {
                            sender_req,
                            recv_req: req.clone(),
                        },
                    );
                }
            }
        } else {
            self.posted.push_back(PostedRecv {
                comm,
                src: src_world,
                tag,
                req: req.clone(),
            });
        }
        self.sync_obs_depths();
        (req, cost)
    }

    /// Nonblocking probe: does a matching message sit in the unexpected
    /// queue? (The caller should run a progress poll first.)
    pub fn iprobe(&self, comm: CommId, src: Option<Rank>, tag: Option<Tag>) -> Option<Status> {
        let info = self.comm(comm);
        let src_world = src.map(|s| info.world_of(s));
        self.unexpected
            .iter()
            .find(|u| {
                let (ucomm, usrc, utag) = u.key();
                ucomm == comm
                    && src_world.is_none_or(|s| s == usrc)
                    && tag.is_none_or(|t| t == utag)
            })
            .map(|u| match u {
                Unexpected::Eager {
                    src, tag, payload, ..
                } => Status {
                    source: *src,
                    tag: *tag,
                    len: payload.len(),
                },
                Unexpected::Rndv { src, tag, len, .. } => Status {
                    source: *src,
                    tag: *tag,
                    len: *len,
                },
            })
    }

    // -- one-sided (RMA) ------------------------------------------------------

    /// Collectively create a window exposing `local` bytes (every rank must
    /// call in matching order, like `MPI_Win_create`).
    pub fn win_create(&mut self, local: Vec<u8>) -> WinId {
        self.win_seq += 1;
        let id = 0xA000_0000u64 + self.win_seq;
        self.windows.insert(id, local);
        self.rma_origin.insert(id, Vec::new());
        id
    }

    /// Read this rank's window contents (exposure buffer).
    pub fn win_local(&self, win: WinId) -> &[u8] {
        self.windows.get(&win).expect("unknown window")
    }

    /// `MPI_Put`: deliver `payload` into `target`'s window at `offset`.
    /// Returns (request completing at the origin once acked, caller cost).
    pub(crate) fn rma_put(
        &mut self,
        fabric: &Fabric<WireMsg>,
        now: Nanos,
        win: WinId,
        target: Rank,
        offset: usize,
        payload: Bytes,
    ) -> (Rc<ReqInner>, Nanos) {
        let req = ReqInner::new(ReqKind::Send);
        let cost = self.profile.rndv_ctrl_ns
            + MachineProfile::transfer_ns(payload.len(), self.profile.eager_copy_gbps);
        fabric.transmit(
            self.world_rank,
            target,
            payload.len() + ENVELOPE_BYTES,
            now + cost,
            WireMsg::RmaPut {
                win,
                offset,
                payload,
                origin: self.world_rank,
                origin_req: req.clone(),
            },
        );
        self.rma_origin.entry(win).or_default().push(req.clone());
        (req, cost)
    }

    /// `MPI_Get`: fetch `len` bytes from `target`'s window at `offset`.
    pub(crate) fn rma_get(
        &mut self,
        fabric: &Fabric<WireMsg>,
        now: Nanos,
        win: WinId,
        target: Rank,
        offset: usize,
        len: usize,
    ) -> (Rc<ReqInner>, Nanos) {
        let req = ReqInner::new(ReqKind::Recv);
        let cost = self.profile.rndv_ctrl_ns;
        fabric.transmit(
            self.world_rank,
            target,
            CTRL_BYTES,
            now + cost,
            WireMsg::RmaGetReq {
                win,
                offset,
                len,
                origin: self.world_rank,
                origin_req: req.clone(),
            },
        );
        self.rma_origin.entry(win).or_default().push(req.clone());
        (req, cost)
    }

    /// Outstanding origin-side requests for `win` (taken by fence).
    pub(crate) fn take_rma_origin(&mut self, win: WinId) -> Vec<Rc<ReqInner>> {
        self.rma_origin
            .get_mut(&win)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    // -- progress engine ----------------------------------------------------

    /// One progress poll at virtual time `now`: drain arrived packets,
    /// advance protocol state machines and nonblocking-collective
    /// schedules. Returns the cost to charge the polling thread.
    ///
    /// This is the *only* place incoming traffic is ever acted upon — if no
    /// simulated thread calls this (directly or via any MPI call), nothing
    /// progresses. That semantic is the heart of the paper's problem
    /// statement.
    pub(crate) fn progress(&mut self, fabric: &Fabric<WireMsg>, now: Nanos) -> Nanos {
        self.stats.progress_polls += 1;
        self.obs.progress_polls.inc();
        let mut cost = self.profile.progress_poll_ns;
        let packets = fabric.endpoint(self.world_rank).drain_ready(now);
        for msg in packets {
            cost += self.handle_wire(fabric, now + cost, msg);
        }
        cost += self.advance_nbcs(fabric, now + cost);
        self.sync_obs_depths();
        cost
    }

    fn handle_wire(&mut self, fabric: &Fabric<WireMsg>, now: Nanos, msg: WireMsg) -> Nanos {
        let p = self.profile.clone();
        match msg {
            WireMsg::Eager {
                src,
                comm,
                tag,
                payload,
            } => {
                let mut cost = p.match_cost_ns;
                if let Some(pos) = self.match_posted(comm, src, tag) {
                    let pr = self.posted.remove(pos).expect("indexed entry");
                    cost += MachineProfile::transfer_ns(payload.len(), p.mem_copy_gbps);
                    pr.req.complete(
                        Some(Status {
                            source: src,
                            tag,
                            len: payload.len(),
                        }),
                        Some(payload),
                    );
                } else {
                    self.unexpected.push_back(Unexpected::Eager {
                        src,
                        comm,
                        tag,
                        payload,
                    });
                    self.obs.unexpected_depth.set(self.unexpected.len() as u64);
                }
                cost
            }
            WireMsg::Rts {
                src,
                comm,
                tag,
                len,
                sender_req,
            } => {
                let mut cost = p.match_cost_ns + p.rndv_ctrl_ns;
                if let Some(pos) = self.match_posted(comm, src, tag) {
                    let pr = self.posted.remove(pos).expect("indexed entry");
                    fabric.transmit(
                        self.world_rank,
                        src,
                        CTRL_BYTES,
                        now + cost,
                        WireMsg::Cts {
                            sender_req,
                            recv_req: pr.req,
                        },
                    );
                } else {
                    cost = p.match_cost_ns; // no CTS yet
                    self.unexpected.push_back(Unexpected::Rndv {
                        src,
                        comm,
                        tag,
                        len,
                        sender_req,
                    });
                    self.obs.unexpected_depth.set(self.unexpected.len() as u64);
                }
                cost
            }
            WireMsg::Cts {
                sender_req,
                recv_req,
            } => {
                // We are the sender; ship the parked payload.
                let cost = p.rndv_ctrl_ns;
                let (dst_world, tag, payload) = sender_req
                    .parked
                    .borrow_mut()
                    .take()
                    .expect("CTS for a send with no parked payload");
                fabric.transmit(
                    self.world_rank,
                    dst_world,
                    payload.len() + ENVELOPE_BYTES,
                    now + cost,
                    WireMsg::RndvData {
                        src: self.world_rank,
                        tag,
                        recv_req,
                        payload,
                    },
                );
                sender_req.complete(None, None);
                cost
            }
            WireMsg::RndvData {
                src,
                tag,
                recv_req,
                payload,
            } => {
                // Rendezvous lands directly in the user buffer (zero copy).
                let cost = p.match_cost_ns;
                recv_req.complete(
                    Some(Status {
                        source: src,
                        tag,
                        len: payload.len(),
                    }),
                    Some(payload),
                );
                cost
            }
            WireMsg::RmaPut {
                win,
                offset,
                payload,
                origin,
                origin_req,
            } => {
                let n = payload.len();
                let cost = p.match_cost_ns + MachineProfile::transfer_ns(n, p.mem_copy_gbps);
                let buf = self.windows.get_mut(&win).expect("put to unknown window");
                if let Some(data) = payload.as_real() {
                    buf[offset..offset + n].copy_from_slice(data);
                }
                fabric.transmit(
                    self.world_rank,
                    origin,
                    CTRL_BYTES,
                    now + cost,
                    WireMsg::RmaPutAck { origin_req },
                );
                cost
            }
            WireMsg::RmaPutAck { origin_req } => {
                origin_req.complete(None, None);
                p.match_cost_ns
            }
            WireMsg::RmaGetReq {
                win,
                offset,
                len,
                origin,
                origin_req,
            } => {
                let cost = p.match_cost_ns + p.rndv_ctrl_ns;
                let buf = self.windows.get(&win).expect("get from unknown window");
                let payload = Bytes::real(buf[offset..offset + len].to_vec());
                fabric.transmit(
                    self.world_rank,
                    origin,
                    len + ENVELOPE_BYTES,
                    now + cost,
                    WireMsg::RmaGetReply {
                        origin_req,
                        payload,
                    },
                );
                cost
            }
            WireMsg::RmaGetReply {
                origin_req,
                payload,
            } => {
                let cost =
                    p.match_cost_ns + MachineProfile::transfer_ns(payload.len(), p.mem_copy_gbps);
                origin_req.complete(None, Some(payload));
                cost
            }
        }
    }

    fn match_posted(&self, comm: CommId, src: Rank, tag: Tag) -> Option<usize> {
        self.posted.iter().position(|r| {
            r.comm == comm && r.src.is_none_or(|s| s == src) && r.tag.is_none_or(|t| t == tag)
        })
    }

    // -- nonblocking collectives ---------------------------------------------

    /// Start a collective described by `rounds`; posts round 0 immediately.
    /// Returns `(user request, caller cost)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start_nbc(
        &mut self,
        fabric: &Fabric<WireMsg>,
        now: Nanos,
        comm: CommId,
        ctx_tag: Tag,
        acc: Bytes,
        input: Option<Bytes>,
        rounds: Vec<Round>,
    ) -> (Rc<ReqInner>, Nanos) {
        self.stats.nbc_started += 1;
        self.obs.nbc_started.inc();
        let user_req = ReqInner::new(ReqKind::Collective);
        let mut inst = NbcInstance {
            comm,
            ctx_tag,
            rounds,
            cur: 0,
            inflight: Vec::new(),
            recv_actions: Vec::new(),
            acc,
            input,
            user_req: user_req.clone(),
        };
        let mut cost = 0;
        // Post rounds until one actually blocks; rounds with no pending ops
        // (or whose ops complete instantly off the unexpected queue)
        // fall through.
        loop {
            if inst.cur >= inst.rounds.len() {
                inst.finish();
                break;
            }
            match self.post_round(fabric, now + cost, &mut inst) {
                PostOutcome::Blocked(c) => {
                    cost += c;
                    self.nbcs.push(inst);
                    break;
                }
                PostOutcome::RoundComplete(c) => {
                    cost += c;
                    inst.cur += 1;
                }
            }
        }
        self.sync_obs_depths();
        (user_req, cost)
    }

    /// Advance all active collective schedules; part of `progress`.
    fn advance_nbcs(&mut self, fabric: &Fabric<WireMsg>, now: Nanos) -> Nanos {
        let mut cost = 0;
        let mut i = 0;
        while i < self.nbcs.len() {
            let mut finished = false;
            loop {
                // Is the posted round's traffic complete?
                if !self.nbcs[i].inflight.iter().all(|r| r.is_done()) {
                    break;
                }
                // Apply receive actions (reductions, placements) and move on.
                cost += self.nbcs[i].apply_recv_actions();
                self.nbcs[i].cur += 1;
                if self.nbcs[i].cur >= self.nbcs[i].rounds.len() {
                    self.nbcs[i].finish();
                    finished = true;
                    break;
                }
                match self.post_round_at(fabric, now + cost, i) {
                    PostOutcome::Blocked(c) => {
                        cost += c;
                        break;
                    }
                    PostOutcome::RoundComplete(c) => {
                        // Instant completion already applied its receive
                        // actions and cleared `inflight`; loop again (the
                        // empty in-flight set reads as complete and `cur`
                        // advances at the top).
                        cost += c;
                    }
                }
            }
            if finished {
                self.nbcs.swap_remove(i);
            } else {
                i += 1;
            }
        }
        cost
    }

    fn post_round_at(&mut self, fabric: &Fabric<WireMsg>, now: Nanos, idx: usize) -> PostOutcome {
        let mut inst = std::mem::replace(&mut self.nbcs[idx], NbcInstance::placeholder());
        let out = self.post_round(fabric, now, &mut inst);
        self.nbcs[idx] = inst;
        out
    }

    /// Post the sends/recvs of round `inst.cur`. Does not bump `cur`.
    fn post_round(
        &mut self,
        fabric: &Fabric<WireMsg>,
        now: Nanos,
        inst: &mut NbcInstance,
    ) -> PostOutcome {
        debug_assert!(inst.cur < inst.rounds.len());
        let round = inst.rounds[inst.cur].clone();
        let mut cost = 0;
        inst.inflight.clear();
        inst.recv_actions.clear();
        let tag = inst.ctx_tag;
        let comm = inst.comm;
        for send in &round.sends {
            let data = inst.resolve(&send.data);
            let (req, c) = self.isend(fabric, now + cost, comm, send.peer, tag, data);
            cost += c;
            inst.inflight.push(req);
        }
        for recv in &round.recvs {
            let (req, c) = self.irecv(fabric, now + cost, comm, Some(recv.peer), Some(tag));
            cost += c;
            inst.recv_actions.push((req.clone(), recv.action.clone()));
            inst.inflight.push(req);
        }
        if inst.inflight.is_empty() {
            PostOutcome::RoundComplete(cost)
        } else if inst.inflight.iter().all(|r| r.is_done()) {
            // Everything matched instantly (e.g. unexpected queue hits).
            cost += inst.apply_recv_actions();
            PostOutcome::RoundComplete(cost)
        } else {
            PostOutcome::Blocked(cost)
        }
    }

    /// Number of active nonblocking collectives (diagnostics).
    pub fn active_nbcs(&self) -> usize {
        self.nbcs.len()
    }

    /// Unexpected-queue depth (diagnostics).
    pub fn unexpected_depth(&self) -> usize {
        self.unexpected.len()
    }

    /// Posted-receive queue depth (diagnostics).
    pub fn posted_depth(&self) -> usize {
        self.posted.len()
    }
}

enum PostOutcome {
    /// Round posted, waiting on internal requests.
    Blocked(Nanos),
    /// Round had no pending ops (or completed instantly).
    RoundComplete(Nanos),
}

impl NbcInstance {
    /// Apply queued receive actions into the accumulator; returns cost.
    fn apply_recv_actions(&mut self) -> Nanos {
        let mut cost = 0;
        for (req, action) in std::mem::take(&mut self.recv_actions) {
            let payload = req
                .data
                .borrow_mut()
                .take()
                .expect("completed recv carries data");
            cost += self.apply_action(&action, payload);
        }
        self.inflight.clear();
        cost
    }

    fn apply_action(&mut self, action: &RecvAction, payload: Bytes) -> Nanos {
        match action {
            RecvAction::Discard => 0,
            RecvAction::ReplaceAcc => {
                self.acc = payload;
                0
            }
            RecvAction::CombineAcc { dtype, op } => {
                let n = payload.len();
                // Synthetic reductions keep the nominal size.
                if let (Bytes::Real(acc), Bytes::Real(other)) = (&mut self.acc, &payload) {
                    combine(*dtype, *op, Rc::make_mut(acc).as_mut_slice(), other);
                }
                // ~1 flop per element charged at copy bandwidth is a fair
                // stand-in for a memory-bound reduction loop.
                MachineProfile::transfer_ns(n, 8.0)
            }
            RecvAction::CombineAt { offset, dtype, op } => {
                let n = payload.len();
                if let (Bytes::Real(acc), Bytes::Real(other)) = (&mut self.acc, &payload) {
                    let acc = Rc::make_mut(acc);
                    combine(*dtype, *op, &mut acc[*offset..*offset + n], other);
                }
                MachineProfile::transfer_ns(n, 8.0)
            }
            RecvAction::StoreAt(offset) => {
                let off = *offset;
                let n = payload.len();
                if let (Bytes::Real(acc), Bytes::Real(other)) = (&mut self.acc, &payload) {
                    let acc = Rc::make_mut(acc);
                    acc[off..off + n].copy_from_slice(other);
                }
                MachineProfile::transfer_ns(n, 8.0)
            }
        }
    }

    /// Materialize a data source into a payload.
    fn resolve(&self, src: &DataSrc) -> Bytes {
        match src {
            DataSrc::Acc => self.acc.clone(),
            DataSrc::AccChunk(range) => slice_bytes(&self.acc, range.clone()),
            DataSrc::InputChunk(range) => slice_bytes(
                self.input
                    .as_ref()
                    .expect("collective without input buffer"),
                range.clone(),
            ),
            DataSrc::Fixed(b) => b.clone(),
        }
    }

    fn finish(&mut self) {
        let result = std::mem::replace(&mut self.acc, Bytes::synthetic(0));
        self.user_req.complete(None, Some(result));
    }

    fn placeholder() -> Self {
        NbcInstance {
            comm: 0,
            ctx_tag: 0,
            rounds: Vec::new(),
            cur: 0,
            inflight: Vec::new(),
            recv_actions: Vec::new(),
            acc: Bytes::synthetic(0),
            input: None,
            user_req: ReqInner::new(ReqKind::Collective),
        }
    }
}

fn slice_bytes(b: &Bytes, range: std::ops::Range<usize>) -> Bytes {
    match b {
        Bytes::Real(v) => Bytes::real(v[range].to_vec()),
        Bytes::Synthetic(_) => Bytes::synthetic(range.len()),
    }
}
