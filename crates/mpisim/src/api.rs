//! The per-rank MPI handle: the async API simulated threads call.
//!
//! Every method models the corresponding MPI function, charging the calling
//! simulated thread the modelled software cost and — when the library was
//! initialized with `MPI_THREAD_MULTIPLE` — funnelling through the global
//! library lock with its extra critical-section cost, exactly the overhead
//! structure the paper attributes to multithreaded MPI implementations.

use std::cell::RefCell;
use std::rc::Rc;

use destime::futures::race;
use destime::sync::SimMutex;
use destime::{Env, Nanos};
use simnet::Fabric;

use crate::engine::{CommId, RankInner, ReqInner, WireMsg};
use crate::nbc;
use crate::types::{Bytes, Dtype, Rank, ReduceOp, Status, Tag, ThreadLevel, TAG_INTERNAL_BASE};

/// `MPI_COMM_WORLD`.
pub const COMM_WORLD: CommId = 0;

/// A nonblocking-operation handle (`MPI_Request`).
#[derive(Clone)]
pub struct Request {
    pub(crate) inner: Rc<ReqInner>,
}

impl Request {
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Completion status (receives only; `None` before completion or for
    /// sends).
    pub fn status(&self) -> Option<Status> {
        self.inner.status.get()
    }

    /// Take the received payload out of a completed receive/collective.
    pub fn take_data(&self) -> Option<Bytes> {
        self.inner.data.borrow_mut().take()
    }
}

/// Shared world state: fabric plus each rank's engine cell.
pub(crate) struct WorldInner {
    pub env: Env,
    pub fabric: Fabric<WireMsg>,
    pub level: ThreadLevel,
    pub ranks: Vec<RankCell>,
}

pub(crate) struct RankCell {
    pub inner: RefCell<RankInner>,
    /// The MPI library's global lock (taken only under `Multiple`).
    pub lock: SimMutex<()>,
}

/// Per-rank MPI handle. Clone freely across the rank's simulated threads.
#[derive(Clone)]
pub struct Mpi {
    pub(crate) world: Rc<WorldInner>,
    pub(crate) rank: Rank,
}

impl Mpi {
    /// World rank of this process.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.ranks.len()
    }

    /// Thread level the "cluster" was initialized with.
    pub fn thread_level(&self) -> ThreadLevel {
        self.world.level
    }

    pub fn env(&self) -> &Env {
        &self.world.env
    }

    /// The machine profile this universe was built with.
    pub fn profile(&self) -> simnet::MachineProfile {
        self.world.fabric.profile().clone()
    }

    /// Size of a communicator.
    pub fn comm_size(&self, comm: CommId) -> usize {
        self.cell().inner.borrow().comm(comm).size()
    }

    /// This process's rank within a communicator.
    pub fn comm_rank(&self, comm: CommId) -> Rank {
        self.cell().inner.borrow().comm(comm).my_rank
    }

    fn cell(&self) -> &RankCell {
        &self.world.ranks[self.rank]
    }

    /// Snapshot of engine statistics.
    pub fn stats(&self) -> crate::engine::RankStats {
        self.cell().inner.borrow().stats
    }

    /// This rank's engine metrics registry (protocol counters, queue-depth
    /// gauges, lock wait). Snapshot/diff it around a phase to attribute
    /// engine activity to that phase.
    pub fn obs_registry(&self) -> obs::Registry {
        self.cell().inner.borrow().obs.registry.clone()
    }

    /// Contended/total acquisitions of the library lock (diagnostics).
    pub fn lock_contention(&self) -> (u64, u64) {
        let l = &self.cell().lock;
        (l.contended_acquisitions(), l.total_acquisitions())
    }

    // -- call prologue/epilogue ---------------------------------------------

    /// Model entry into the MPI library: returns (guard, extra cost).
    async fn enter(&self) -> (Option<destime::sync::SimMutexGuard<()>>, Nanos) {
        if self.world.level.locked() {
            let t0 = self.world.env.now();
            let g = self.cell().lock.lock().await;
            let waited = self.world.env.now() - t0;
            let inner = self.cell().inner.borrow();
            let extra = inner.profile.mt_lock_extra_ns;
            // Attribute both the queueing delay and the serialization
            // surcharge to lock wait (THREAD_MULTIPLE cost, paper §2).
            inner.obs.lock_wait_ns.add(waited + extra);
            drop(inner);
            (Some(g), extra)
        } else {
            (None, 0)
        }
    }

    // -- point-to-point -----------------------------------------------------

    /// `MPI_Isend`.
    pub async fn isend(
        &self,
        comm: CommId,
        dst: Rank,
        tag: Tag,
        payload: impl Into<Bytes>,
    ) -> Request {
        debug_assert!(tag < TAG_INTERNAL_BASE, "application tag in internal space");
        self.isend_internal(comm, dst, tag, payload.into()).await
    }

    pub(crate) async fn isend_internal(
        &self,
        comm: CommId,
        dst: Rank,
        tag: Tag,
        payload: Bytes,
    ) -> Request {
        let (guard, extra) = self.enter().await;
        let (inner, cost) = {
            let mut eng = self.cell().inner.borrow_mut();
            let base = eng.profile.mpi_call_overhead_ns;
            let now = self.world.env.now() + base + extra;
            let (r, c) = eng.isend(&self.world.fabric, now, comm, dst, tag, payload);
            (r, base + extra + c)
        };
        self.world.env.advance(cost).await;
        drop(guard);
        Request { inner }
    }

    /// `MPI_Irecv`. `src`/`tag` of `None` are the wildcards.
    pub async fn irecv(&self, comm: CommId, src: Option<Rank>, tag: Option<Tag>) -> Request {
        let (guard, extra) = self.enter().await;
        let (inner, cost) = {
            let mut eng = self.cell().inner.borrow_mut();
            let base = eng.profile.mpi_call_overhead_ns;
            let now = self.world.env.now() + base + extra;
            let (r, c) = eng.irecv(&self.world.fabric, now, comm, src, tag);
            (r, base + extra + c)
        };
        self.world.env.advance(cost).await;
        drop(guard);
        Request { inner }
    }

    /// One progress poll under the appropriate locking regime; charges the
    /// caller. Returns after the poll.
    pub async fn progress_once(&self) {
        let (guard, extra) = self.enter().await;
        let cost = {
            let mut eng = self.cell().inner.borrow_mut();
            let now = self.world.env.now() + extra;
            extra + eng.progress(&self.world.fabric, now)
        };
        self.world.env.advance(cost).await;
        drop(guard);
    }

    /// One progress poll *below* the library's locking layer: used to model
    /// progress agents that bypass application-visible mutual exclusion
    /// (Cray core specialization, hardware progress engines). Charges the
    /// caller the poll cost but never touches the global lock.
    pub async fn progress_unlocked(&self) {
        let cost = {
            let mut eng = self.cell().inner.borrow_mut();
            let now = self.world.env.now();
            eng.progress(&self.world.fabric, now)
        };
        self.world.env.advance(cost).await;
    }

    /// `MPI_Test`: one progress poll, then report completion.
    pub async fn test(&self, req: &Request) -> bool {
        if req.is_done() {
            return true;
        }
        self.progress_once().await;
        req.is_done()
    }

    /// `MPI_Testany` over a set of requests; returns the index of a
    /// completed one if any.
    pub async fn testany(&self, reqs: &[Request]) -> Option<usize> {
        if let Some(i) = reqs.iter().position(Request::is_done) {
            return Some(i);
        }
        self.progress_once().await;
        reqs.iter().position(Request::is_done)
    }

    /// `MPI_Iprobe`.
    pub async fn iprobe(
        &self,
        comm: CommId,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Option<Status> {
        self.progress_once().await;
        self.cell().inner.borrow().iprobe(comm, src, tag)
    }

    /// `MPI_Wait`: poll the progress engine until the request completes,
    /// sleeping (in virtual time) between polls until the next possible
    /// state change — a new wire arrival or another thread completing the
    /// request. Under `Multiple` the lock is re-acquired per poll, exactly
    /// like the per-iteration global-lock dance inside MPICH-style waits.
    pub async fn wait(&self, req: &Request) -> Option<Status> {
        self.wait_all_slice(std::slice::from_ref(req)).await;
        req.status()
    }

    /// `MPI_Waitall`.
    pub async fn waitall(&self, reqs: &[Request]) {
        self.wait_all_slice(reqs).await;
    }

    async fn wait_all_slice(&self, reqs: &[Request]) {
        let env = self.world.env.clone();
        // Model the call entry once.
        let base = self.cell().inner.borrow().profile.mpi_call_overhead_ns;
        env.advance(base).await;
        loop {
            if reqs.iter().all(Request::is_done) {
                return;
            }
            self.progress_once().await;
            if reqs.iter().all(Request::is_done) {
                return;
            }
            self.sleep_until_state_change(reqs).await;
        }
    }

    /// `MPI_Waitany`: returns the index of the first request to complete.
    pub async fn waitany(&self, reqs: &[Request]) -> usize {
        let env = self.world.env.clone();
        let base = self.cell().inner.borrow().profile.mpi_call_overhead_ns;
        env.advance(base).await;
        loop {
            if let Some(i) = reqs.iter().position(Request::is_done) {
                return i;
            }
            self.progress_once().await;
            if let Some(i) = reqs.iter().position(Request::is_done) {
                return i;
            }
            self.sleep_until_state_change(reqs).await;
        }
    }

    /// Park until something that could change request state happens: a
    /// pending wire arrival comes due, a new packet is deposited, or a
    /// request in `reqs` is completed by another thread (e.g. the offload
    /// thread).
    async fn sleep_until_state_change(&self, reqs: &[Request]) {
        let env = self.world.env.clone();
        let ep = self.world.fabric.endpoint(self.rank);
        let arrivals = ep.arrival_signal().wait();
        let done_any = wait_any_done(reqs);
        match ep.next_arrival() {
            Some(t) if t <= env.now() => { /* poll again immediately */ }
            Some(t) => {
                let _ = race(done_any, race(arrivals, env.sleep_until(t))).await;
            }
            None => {
                let _ = race(done_any, arrivals).await;
            }
        }
    }

    /// Park (cost-free) until something could change this rank's MPI
    /// state: the next pending wire arrival comes due, or a new packet is
    /// deposited. Returns immediately if an arrival is already due.
    ///
    /// Used by progress daemons (the offload thread, comm-self helpers) to
    /// model "polling continuously" without simulating every empty poll:
    /// the daemon reacts to events at the same virtual instant it would
    /// have discovered them by spinning.
    pub async fn park_until_activity(&self) {
        let env = self.world.env.clone();
        let ep = self.world.fabric.endpoint(self.rank);
        match ep.next_arrival() {
            Some(t) if t <= env.now() => {}
            Some(t) => {
                let _ = race(ep.arrival_signal().wait(), env.sleep_until(t)).await;
            }
            None => ep.arrival_signal().wait().await,
        }
    }

    /// Does this rank have any protocol state that a progress daemon
    /// should keep polling for (pending arrivals, posted receives,
    /// unexpected messages, or active collective schedules)?
    pub fn has_pending_state(&self) -> bool {
        let eng = self.cell().inner.borrow();
        self.world.fabric.endpoint(self.rank).pending() > 0
            || eng.active_nbcs() > 0
            || eng.unexpected_depth() > 0
            || eng.posted_depth() > 0
    }

    /// Blocking `MPI_Send`.
    pub async fn send(&self, comm: CommId, dst: Rank, tag: Tag, payload: impl Into<Bytes>) {
        let r = self.isend(comm, dst, tag, payload).await;
        self.wait(&r).await;
    }

    /// Blocking `MPI_Recv`; returns `(status, payload)`.
    pub async fn recv(&self, comm: CommId, src: Option<Rank>, tag: Option<Tag>) -> (Status, Bytes) {
        let r = self.irecv(comm, src, tag).await;
        let status = self.wait(&r).await.expect("recv completes with status");
        let data = r.take_data().expect("recv completes with data");
        (status, data)
    }

    // -- communicator management --------------------------------------------

    /// `MPI_Comm_dup` (collective: every member must call, in matching
    /// order per parent).
    pub fn comm_dup(&self, parent: CommId) -> CommId {
        self.cell().inner.borrow_mut().dup_comm(parent)
    }

    /// `MPI_Comm_split` by color (key = current rank order). Deterministic
    /// and local in the model: membership is computed from the color map
    /// provided by the caller, which must be identical on all members.
    pub fn comm_split(&self, parent: CommId, colors: &[u64]) -> CommId {
        let mut eng = self.cell().inner.borrow_mut();
        let info = eng.comm(parent).clone();
        assert_eq!(colors.len(), info.size(), "one color per member");
        let my_color = colors[info.my_rank];
        let members: Vec<Rank> = (0..info.size())
            .filter(|&r| colors[r] == my_color)
            .map(|r| info.world_of(r))
            .collect();
        let my_new = members
            .iter()
            .position(|&w| w == self.rank)
            .expect("caller is a member of its own split");
        eng.register_split(parent, my_color, Rc::new(members), my_new)
    }

    // -- nonblocking collectives ---------------------------------------------

    fn next_coll_tag(&self, comm: CommId) -> Tag {
        let mut eng = self.cell().inner.borrow_mut();
        let seq = eng.coll_seq.entry(comm).or_insert(0);
        *seq = seq.wrapping_add(1);
        TAG_INTERNAL_BASE + (*seq % 0x0fff_ffff)
    }

    async fn start_nbc(
        &self,
        comm: CommId,
        acc: Bytes,
        input: Option<Bytes>,
        rounds: Vec<nbc::Round>,
    ) -> Request {
        let ctx = self.next_coll_tag(comm);
        let (guard, extra) = self.enter().await;
        let (inner, cost) = {
            let mut eng = self.cell().inner.borrow_mut();
            let base = eng.profile.mpi_call_overhead_ns;
            let now = self.world.env.now() + base + extra;
            let (r, c) = eng.start_nbc(&self.world.fabric, now, comm, ctx, acc, input, rounds);
            (r, base + extra + c)
        };
        self.world.env.advance(cost).await;
        drop(guard);
        Request { inner }
    }

    /// `MPI_Ibarrier`.
    pub async fn ibarrier(&self, comm: CommId) -> Request {
        let (p, r) = self.comm_shape(comm);
        self.start_nbc(comm, Bytes::synthetic(0), None, nbc::barrier_rounds(p, r))
            .await
    }

    /// `MPI_Ibcast`: root supplies the payload; everyone's completed
    /// request carries the broadcast data.
    pub async fn ibcast(&self, comm: CommId, root: Rank, payload: impl Into<Bytes>) -> Request {
        let (p, r) = self.comm_shape(comm);
        let acc = if r == root {
            payload.into()
        } else {
            Bytes::synthetic(0)
        };
        self.start_nbc(comm, acc, None, nbc::bcast_rounds(p, r, root))
            .await
    }

    /// `MPI_Ireduce` to `root`.
    pub async fn ireduce(
        &self,
        comm: CommId,
        root: Rank,
        contribution: impl Into<Bytes>,
        dtype: Dtype,
        op: ReduceOp,
    ) -> Request {
        let (p, r) = self.comm_shape(comm);
        self.start_nbc(
            comm,
            contribution.into(),
            None,
            nbc::reduce_rounds(p, r, root, dtype, op),
        )
        .await
    }

    /// `MPI_Iallreduce`. Large payloads use the Rabenseifner
    /// reduce-scatter + allgather schedule, small ones recursive doubling
    /// (mirroring MPICH's size-dependent algorithm selection).
    pub async fn iallreduce(
        &self,
        comm: CommId,
        contribution: impl Into<Bytes>,
        dtype: Dtype,
        op: ReduceOp,
    ) -> Request {
        let (p, r) = self.comm_shape(comm);
        let contribution = contribution.into();
        let rounds = nbc::allreduce_rounds_sized(p, r, dtype, op, contribution.len());
        self.start_nbc(comm, contribution, None, rounds).await
    }

    /// `MPI_Iallgather`: each rank contributes `block` bytes; the completed
    /// request carries the concatenation.
    pub async fn iallgather(&self, comm: CommId, contribution: impl Into<Bytes>) -> Request {
        let (p, r) = self.comm_shape(comm);
        let mine = contribution.into();
        let block = mine.len();
        let acc = prefill(p * block, r * block, &mine);
        self.start_nbc(comm, acc, None, nbc::allgather_rounds(p, r, block))
            .await
    }

    /// `MPI_Ialltoall`: `input` holds `P` blocks of `block` bytes, block
    /// `i` destined for rank `i`. The completed request carries the output.
    pub async fn ialltoall(&self, comm: CommId, input: impl Into<Bytes>, block: usize) -> Request {
        let (p, r) = self.comm_shape(comm);
        let input = input.into();
        assert_eq!(input.len(), p * block, "all-to-all input shape");
        let own = slice_of(&input, r * block..(r + 1) * block);
        let acc = prefill(p * block, r * block, &own);
        self.start_nbc(comm, acc, Some(input), nbc::alltoall_rounds(p, r, block))
            .await
    }

    /// `MPI_Igather` to `root` of equal-size blocks.
    pub async fn igather(
        &self,
        comm: CommId,
        root: Rank,
        contribution: impl Into<Bytes>,
    ) -> Request {
        let (p, r) = self.comm_shape(comm);
        let mine = contribution.into();
        let block = mine.len();
        let acc = if r == root {
            prefill(p * block, r * block, &mine)
        } else {
            mine
        };
        self.start_nbc(comm, acc, None, nbc::gather_rounds(p, r, root, block))
            .await
    }

    /// `MPI_Iscatter` from `root`: root's `input` holds `P` blocks.
    pub async fn iscatter(
        &self,
        comm: CommId,
        root: Rank,
        input: Option<Bytes>,
        block: usize,
    ) -> Request {
        let (p, r) = self.comm_shape(comm);
        let (acc, input) = if r == root {
            let input = input.expect("root provides scatter input");
            assert_eq!(input.len(), p * block, "scatter input shape");
            let own = slice_of(&input, r * block..(r + 1) * block);
            (own, Some(input))
        } else {
            (Bytes::synthetic(0), None)
        };
        self.start_nbc(comm, acc, input, nbc::scatter_rounds(p, r, root, block))
            .await
    }

    fn comm_shape(&self, comm: CommId) -> (usize, Rank) {
        let eng = self.cell().inner.borrow();
        let info = eng.comm(comm);
        (info.size(), info.my_rank)
    }

    // -- one-sided (RMA) -------------------------------------------------------

    /// `MPI_Win_create` (collective: every rank calls, in matching order),
    /// exposing `local` bytes for one-sided access.
    pub async fn win_create(&self, local: Vec<u8>) -> crate::engine::WinId {
        let id = self.cell().inner.borrow_mut().win_create(local);
        // Window creation synchronizes (as in MPI).
        self.barrier(COMM_WORLD).await;
        id
    }

    /// Snapshot of this rank's window exposure buffer.
    pub fn win_local(&self, win: crate::engine::WinId) -> Vec<u8> {
        self.cell().inner.borrow().win_local(win).to_vec()
    }

    /// `MPI_Put`: one-sided write into `target`'s window. The request
    /// completes at the origin once the target's progress engine applied
    /// the data and the ack returned — which requires the *target* to poll
    /// (the passive-target progress problem of Casper [30]).
    pub async fn put(
        &self,
        win: crate::engine::WinId,
        target: Rank,
        offset: usize,
        payload: impl Into<Bytes>,
    ) -> Request {
        let (guard, extra) = self.enter().await;
        let (inner, cost) = {
            let mut eng = self.cell().inner.borrow_mut();
            let base = eng.profile.mpi_call_overhead_ns;
            let now = self.world.env.now() + base + extra;
            let (r, c) = eng.rma_put(&self.world.fabric, now, win, target, offset, payload.into());
            (r, base + extra + c)
        };
        self.world.env.advance(cost).await;
        drop(guard);
        Request { inner }
    }

    /// `MPI_Get`: one-sided read of `len` bytes from `target`'s window.
    pub async fn get(
        &self,
        win: crate::engine::WinId,
        target: Rank,
        offset: usize,
        len: usize,
    ) -> Request {
        let (guard, extra) = self.enter().await;
        let (inner, cost) = {
            let mut eng = self.cell().inner.borrow_mut();
            let base = eng.profile.mpi_call_overhead_ns;
            let now = self.world.env.now() + base + extra;
            let (r, c) = eng.rma_get(&self.world.fabric, now, win, target, offset, len);
            (r, base + extra + c)
        };
        self.world.env.advance(cost).await;
        drop(guard);
        Request { inner }
    }

    /// `MPI_Win_fence`: complete all locally-issued RMA on `win`, then
    /// synchronize. After the fence, every rank's puts are visible in the
    /// target windows.
    pub async fn win_fence(&self, win: crate::engine::WinId) {
        let pending = self.cell().inner.borrow_mut().take_rma_origin(win);
        let reqs: Vec<Request> = pending.into_iter().map(|inner| Request { inner }).collect();
        self.waitall(&reqs).await;
        self.barrier(COMM_WORLD).await;
    }

    // -- blocking collectives -------------------------------------------------

    /// `MPI_Barrier`.
    pub async fn barrier(&self, comm: CommId) {
        let r = self.ibarrier(comm).await;
        self.wait(&r).await;
    }

    /// `MPI_Bcast`; returns the broadcast payload on every rank.
    pub async fn bcast(&self, comm: CommId, root: Rank, payload: impl Into<Bytes>) -> Bytes {
        let r = self.ibcast(comm, root, payload).await;
        self.wait(&r).await;
        r.take_data().expect("bcast result")
    }

    /// `MPI_Allreduce`; returns the reduced payload.
    pub async fn allreduce(
        &self,
        comm: CommId,
        contribution: impl Into<Bytes>,
        dtype: Dtype,
        op: ReduceOp,
    ) -> Bytes {
        let r = self.iallreduce(comm, contribution, dtype, op).await;
        self.wait(&r).await;
        r.take_data().expect("allreduce result")
    }

    /// `MPI_Reduce`; the root gets the reduction, others get their final
    /// partial (callers should ignore it, as in MPI).
    pub async fn reduce(
        &self,
        comm: CommId,
        root: Rank,
        contribution: impl Into<Bytes>,
        dtype: Dtype,
        op: ReduceOp,
    ) -> Bytes {
        let r = self.ireduce(comm, root, contribution, dtype, op).await;
        self.wait(&r).await;
        r.take_data().expect("reduce result")
    }

    /// `MPI_Allgather`.
    pub async fn allgather(&self, comm: CommId, contribution: impl Into<Bytes>) -> Bytes {
        let r = self.iallgather(comm, contribution).await;
        self.wait(&r).await;
        r.take_data().expect("allgather result")
    }

    /// `MPI_Alltoall`.
    pub async fn alltoall(&self, comm: CommId, input: impl Into<Bytes>, block: usize) -> Bytes {
        let r = self.ialltoall(comm, input, block).await;
        self.wait(&r).await;
        r.take_data().expect("alltoall result")
    }
}

/// Future that resolves when any request in the set completes.
fn wait_any_done(reqs: &[Request]) -> WaitAnyDone {
    WaitAnyDone {
        flags: reqs.iter().map(|r| r.inner.done.clone()).collect(),
    }
}

struct WaitAnyDone {
    flags: Vec<destime::sync::Flag>,
}

impl std::future::Future for WaitAnyDone {
    type Output = ();
    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        for f in &self.flags {
            if f.is_set() {
                return std::task::Poll::Ready(());
            }
        }
        for f in &self.flags {
            // Register with each flag; first set wins.
            let mut w = f.wait();
            if std::pin::Pin::new(&mut w).poll(cx).is_ready() {
                return std::task::Poll::Ready(());
            }
        }
        std::task::Poll::Pending
    }
}

/// Build a `total`-byte buffer with `mine` placed at `offset` (synthetic
/// stays synthetic).
fn prefill(total: usize, offset: usize, mine: &Bytes) -> Bytes {
    match mine.as_real() {
        Some(data) => {
            let mut out = vec![0u8; total];
            out[offset..offset + data.len()].copy_from_slice(data);
            Bytes::real(out)
        }
        None => Bytes::synthetic(total),
    }
}

fn slice_of(b: &Bytes, range: std::ops::Range<usize>) -> Bytes {
    match b.as_real() {
        Some(v) => Bytes::real(v[range].to_vec()),
        None => Bytes::synthetic(range.len()),
    }
}
