//! Cluster construction and execution.

use std::cell::RefCell;
use std::future::Future;
use std::rc::Rc;

use destime::sync::SimMutex;
use destime::{Env, Nanos, Sim};
use simnet::{Fabric, MachineProfile};

use crate::api::{Mpi, RankCell, WorldInner};
use crate::engine::RankInner;
use crate::types::ThreadLevel;

/// A simulated MPI job: `n` ranks on a machine described by `profile`,
/// initialized at `level`.
pub struct Universe {
    pub n_ranks: usize,
    pub profile: MachineProfile,
    pub level: ThreadLevel,
    max_events: Option<u64>,
}

impl Universe {
    pub fn new(n_ranks: usize, profile: MachineProfile, level: ThreadLevel) -> Self {
        assert!(n_ranks > 0);
        Self {
            n_ranks,
            profile,
            level,
            max_events: None,
        }
    }

    /// Backstop event budget (see [`destime::Sim::with_max_events`]).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = Some(max);
        self
    }

    /// Run one async closure per rank (the "application process"); returns
    /// per-rank results and the final virtual time.
    ///
    /// The closure typically spawns further tasks for its OpenMP-like
    /// thread team (see the `team` crate).
    pub fn run<T, F, Fut>(self, per_rank: F) -> (Vec<T>, Nanos)
    where
        T: 'static,
        F: Fn(Mpi) -> Fut + 'static,
        Fut: Future<Output = T> + 'static,
    {
        let n = self.n_ranks;
        let profile = self.profile.clone();
        let level = self.level;
        let mut sim = Sim::new();
        if let Some(m) = self.max_events {
            sim = sim.with_max_events(m);
        }
        let results: Rc<RefCell<Vec<Option<T>>>> =
            Rc::new(RefCell::new((0..n).map(|_| None).collect()));
        let results2 = results.clone();
        let elapsed = sim.run(move |env: Env| {
            let fabric: Fabric<crate::engine::WireMsg> = Fabric::new(n, profile.clone());
            let world = Rc::new(WorldInner {
                env: env.clone(),
                fabric,
                level,
                ranks: (0..n)
                    .map(|r| RankCell {
                        inner: RefCell::new(RankInner::new(r, n, profile.clone())),
                        lock: SimMutex::new(()),
                    })
                    .collect(),
            });
            let per_rank = Rc::new(per_rank);
            async move {
                let mut handles = Vec::with_capacity(n);
                for r in 0..n {
                    let mpi = Mpi {
                        world: world.clone(),
                        rank: r,
                    };
                    handles.push(env.spawn(per_rank(mpi)));
                }
                for (r, h) in handles.into_iter().enumerate() {
                    let out = h.join().await;
                    results2.borrow_mut()[r] = Some(out);
                }
            }
        });
        let results = Rc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("result vector still shared"))
            .into_inner()
            .into_iter()
            .map(|o| o.expect("rank task completed"))
            .collect();
        (results, elapsed)
    }
}

/// Convenience: run a closure on `n` ranks with the Xeon profile at
/// `Funneled`, returning per-rank outputs.
pub fn run_funneled<T, F, Fut>(n: usize, per_rank: F) -> (Vec<T>, Nanos)
where
    T: 'static,
    F: Fn(Mpi) -> Fut + 'static,
    Fut: Future<Output = T> + 'static,
{
    Universe::new(n, MachineProfile::xeon(), ThreadLevel::Funneled).run(per_rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let (out, _) = run_funneled(4, |mpi| async move { (mpi.rank(), mpi.size()) });
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_job_terminates_at_zero_cost_work() {
        let (out, t) = run_funneled(1, |_mpi| async move { 42 });
        assert_eq!(out, vec![42]);
        assert_eq!(t, 0);
    }
}
