//! MPI semantics tests for the simulated library: matching rules, protocol
//! behaviour (including the *absence* of asynchronous progress, which the
//! paper's offload infrastructure exists to fix), collectives, communicator
//! management, and the THREAD_MULTIPLE lock model.

use destime::Nanos;
use mpisim::{
    bytes_to_f64s, f64s_to_bytes, Bytes, Dtype, Mpi, ReduceOp, ThreadLevel, Universe, COMM_WORLD,
};
use simnet::MachineProfile;

fn run2<T: 'static>(
    f: impl Fn(Mpi) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>> + 'static,
) -> (Vec<T>, Nanos) {
    Universe::new(2, MachineProfile::xeon(), ThreadLevel::Funneled).run(f)
}

#[test]
fn message_order_between_pair_is_fifo() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                for i in 0..5u8 {
                    mpi.send(COMM_WORLD, 1, 9, vec![i]).await;
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..5 {
                    let (_, data) = mpi.recv(COMM_WORLD, Some(0), Some(9)).await;
                    got.push(data.to_vec()[0]);
                }
                got
            }
        })
    });
    assert_eq!(outs[1], vec![0, 1, 2, 3, 4]);
}

#[test]
fn tag_matching_selects_correct_message() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                mpi.send(COMM_WORLD, 1, 1, vec![10u8]).await;
                mpi.send(COMM_WORLD, 1, 2, vec![20u8]).await;
                (0, 0)
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let (_, b) = mpi.recv(COMM_WORLD, Some(0), Some(2)).await;
                let (_, a) = mpi.recv(COMM_WORLD, Some(0), Some(1)).await;
                (a.to_vec()[0], b.to_vec()[0])
            }
        })
    });
    assert_eq!(outs[1], (10, 20));
}

#[test]
fn wildcard_source_and_tag_match_anything() {
    let (outs, _) = Universe::new(3, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            match mpi.rank() {
                0 => {
                    let (s1, d1) = mpi.recv(COMM_WORLD, None, None).await;
                    let (s2, d2) = mpi.recv(COMM_WORLD, None, None).await;
                    let mut got = vec![(s1.source, d1.to_vec()[0]), (s2.source, d2.to_vec()[0])];
                    got.sort_unstable();
                    got
                }
                r => {
                    mpi.env().advance(r as u64 * 1000).await;
                    mpi.send(COMM_WORLD, 0, 40 + r as u32, vec![r as u8]).await;
                    Vec::new()
                }
            }
        })
    }) as (Vec<Vec<(usize, u8)>>, _);
    assert_eq!(outs[0], vec![(1, 1), (2, 2)]);
}

#[test]
fn unexpected_messages_are_buffered_until_posted() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                mpi.send(COMM_WORLD, 1, 5, vec![42u8]).await;
                0
            } else {
                // Let the message arrive and sit unexpected for a while.
                mpi.env().advance(1_000_000).await;
                mpi.progress_once().await; // pulls it into the unexpected queue
                let (_, data) = mpi.recv(COMM_WORLD, Some(0), Some(5)).await;
                data.to_vec()[0]
            }
        })
    });
    assert_eq!(outs[1], 42);
}

#[test]
fn large_messages_use_rendezvous_and_content_survives() {
    let n = 512 * 1024; // > 128 KiB threshold
    let (outs, _) = run2(move |mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                let payload: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                mpi.send(COMM_WORLD, 1, 3, payload).await;
                true
            } else {
                let (st, data) = mpi.recv(COMM_WORLD, Some(0), Some(3)).await;
                assert_eq!(st.len, n);
                let v = data.to_vec();
                v.len() == n && v.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8)
            }
        })
    });
    assert!(outs[1]);
}

/// The central substrate property: a rendezvous transfer makes **no
/// progress** while the sender computes without entering MPI. The payload
/// moves only once both sides are in their waits.
#[test]
fn rendezvous_stalls_without_progress_polls() {
    let n = 1 << 20; // 1 MiB, rendezvous
    let compute_ns: Nanos = 10_000_000; // 10 ms of "computation"
    let (outs, _) = run2(move |mpi| {
        Box::pin(async move {
            let env = mpi.env().clone();
            if mpi.rank() == 0 {
                let req = mpi.isend(COMM_WORLD, 1, 3, Bytes::synthetic(n)).await;
                let t0 = env.now();
                env.advance(compute_ns).await; // no MPI calls here
                let t_wait = env.now();
                mpi.wait(&req).await;
                (t_wait - t0, env.now() - t_wait)
            } else {
                let req = mpi.irecv(COMM_WORLD, Some(0), Some(3)).await;
                let t0 = env.now();
                env.advance(compute_ns).await;
                let t_wait = env.now();
                mpi.wait(&req).await;
                (t_wait - t0, env.now() - t_wait)
            }
        })
    });
    // Both sides computed for 10ms...
    assert_eq!(outs[0].0, compute_ns);
    // ...and the receiver still had to wait roughly the full wire time for
    // 1 MiB at 6 GB/s (~175 µs) afterwards: zero overlap was achieved.
    let wire_ns = MachineProfile::transfer_ns(n, 6.0);
    assert!(
        outs[1].1 > wire_ns / 2,
        "receiver wait {}ns should be a large fraction of the wire time {}ns",
        outs[1].1,
        wire_ns
    );
}

/// Counterpart: if the receiver keeps polling during the "compute" phase,
/// the transfer overlaps and the final wait is nearly free.
#[test]
fn rendezvous_overlaps_when_polled() {
    let n = 1 << 20;
    let compute_ns: Nanos = 10_000_000;
    let (outs, _) = run2(move |mpi| {
        Box::pin(async move {
            let env = mpi.env().clone();
            if mpi.rank() == 0 {
                let req = mpi.isend(COMM_WORLD, 1, 3, Bytes::synthetic(n)).await;
                // Poll while computing, in slices.
                for _ in 0..100 {
                    env.advance(compute_ns / 100).await;
                    mpi.progress_once().await;
                }
                mpi.wait(&req).await;
                0
            } else {
                let req = mpi.irecv(COMM_WORLD, Some(0), Some(3)).await;
                for _ in 0..100 {
                    env.advance(compute_ns / 100).await;
                    mpi.progress_once().await;
                }
                let t = env.now();
                mpi.wait(&req).await;
                env.now() - t
            }
        })
    });
    let wire_ns = MachineProfile::transfer_ns(n, 6.0);
    assert!(
        outs[1] < wire_ns / 4,
        "wait {}ns should be small vs wire {}ns when progress was driven",
        outs[1],
        wire_ns
    );
}

#[test]
fn eager_send_completes_locally_before_receiver_exists() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                let req = mpi.isend(COMM_WORLD, 1, 8, vec![1u8; 1024]).await;
                let done_at_post = req.is_done();
                mpi.wait(&req).await;
                done_at_post
            } else {
                mpi.env().advance(50_000).await; // receiver shows up late
                let (_, d) = mpi.recv(COMM_WORLD, Some(0), Some(8)).await;
                d.len() == 1024
            }
        })
    });
    assert!(outs[0], "eager isend is locally complete at post time");
    assert!(outs[1]);
}

#[test]
fn iprobe_sees_unexpected_without_consuming() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                mpi.send(COMM_WORLD, 1, 77, vec![5u8; 96]).await;
                true
            } else {
                // Poll until the probe sees it.
                let mut st = None;
                for _ in 0..1000 {
                    st = mpi.iprobe(COMM_WORLD, Some(0), None).await;
                    if st.is_some() {
                        break;
                    }
                    mpi.env().advance(1_000).await;
                }
                let st = st.expect("probe finds the message");
                assert_eq!(st.tag, 77);
                assert_eq!(st.len, 96);
                // Probe again: still there.
                assert!(mpi.iprobe(COMM_WORLD, Some(0), Some(77)).await.is_some());
                // Then actually receive it.
                let (_, d) = mpi.recv(COMM_WORLD, Some(0), Some(77)).await;
                d.len() == 96
            }
        })
    });
    assert!(outs[1]);
}

#[test]
fn barrier_synchronizes_ranks() {
    let (outs, _) = Universe::new(4, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            let env = mpi.env().clone();
            // Rank r computes r ms before the barrier.
            env.advance(mpi.rank() as u64 * 1_000_000).await;
            mpi.barrier(COMM_WORLD).await;
            env.now()
        })
    });
    let latest_arrival = 3_000_000;
    for (r, &t) in outs.iter().enumerate() {
        assert!(
            t >= latest_arrival,
            "rank {r} left the barrier at {t}, before the slowest arrival"
        );
        assert!(t < latest_arrival + 1_000_000, "barrier exit too late: {t}");
    }
}

#[test]
fn allreduce_sums_across_ranks() {
    for p in [2usize, 3, 4, 8] {
        let (outs, _) =
            Universe::new(p, MachineProfile::xeon(), ThreadLevel::Funneled).run(move |mpi| {
                Box::pin(async move {
                    let mine = f64s_to_bytes(&[mpi.rank() as f64, 1.0, -(mpi.rank() as f64)]);
                    let out = mpi
                        .allreduce(COMM_WORLD, mine, Dtype::F64, ReduceOp::Sum)
                        .await;
                    bytes_to_f64s(&out.to_vec())
                })
            });
        let expect_sum = (0..p).map(|r| r as f64).sum::<f64>();
        for o in &outs {
            assert_eq!(o[0], expect_sum, "p={p}");
            assert_eq!(o[1], p as f64);
            assert_eq!(o[2], -expect_sum);
        }
    }
}

#[test]
fn allreduce_max_and_min() {
    let (outs, _) = Universe::new(5, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            let mine = f64s_to_bytes(&[mpi.rank() as f64]);
            let mx = mpi
                .allreduce(COMM_WORLD, mine.clone(), Dtype::F64, ReduceOp::Max)
                .await;
            let mn = mpi
                .allreduce(COMM_WORLD, mine, Dtype::F64, ReduceOp::Min)
                .await;
            (
                bytes_to_f64s(&mx.to_vec())[0],
                bytes_to_f64s(&mn.to_vec())[0],
            )
        })
    });
    for &(mx, mn) in &outs {
        assert_eq!(mx, 4.0);
        assert_eq!(mn, 0.0);
    }
}

#[test]
fn bcast_delivers_root_payload() {
    let (outs, _) = Universe::new(6, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            let payload = if mpi.comm_rank(COMM_WORLD) == 2 {
                Bytes::real(vec![9u8; 300])
            } else {
                Bytes::synthetic(0)
            };
            let out = mpi.bcast(COMM_WORLD, 2, payload).await;
            out.to_vec()
        })
    });
    for o in &outs {
        assert_eq!(o, &vec![9u8; 300]);
    }
}

#[test]
fn reduce_collects_at_root() {
    let (outs, _) = Universe::new(7, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            let mine = f64s_to_bytes(&[1.0]);
            let out = mpi
                .reduce(COMM_WORLD, 3, mine, Dtype::F64, ReduceOp::Sum)
                .await;
            if mpi.rank() == 3 {
                Some(bytes_to_f64s(&out.to_vec())[0])
            } else {
                None
            }
        })
    });
    assert_eq!(outs[3], Some(7.0));
}

#[test]
fn allgather_concatenates_blocks() {
    let (outs, _) = Universe::new(4, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            let mine = vec![mpi.rank() as u8; 4];
            mpi.allgather(COMM_WORLD, mine).await.to_vec()
        })
    });
    let expect: Vec<u8> = (0..4).flat_map(|r| vec![r as u8; 4]).collect();
    for o in &outs {
        assert_eq!(o, &expect);
    }
}

#[test]
fn alltoall_transposes_blocks() {
    for p in [2usize, 3, 4, 5] {
        let (outs, _) =
            Universe::new(p, MachineProfile::xeon(), ThreadLevel::Funneled).run(move |mpi| {
                Box::pin(async move {
                    let r = mpi.rank() as u8;
                    // Block for destination d = [r, d].
                    let input: Vec<u8> = (0..p).flat_map(|d| vec![r, d as u8]).collect();
                    mpi.alltoall(COMM_WORLD, input, 2).await.to_vec()
                })
            });
        for (r, o) in outs.iter().enumerate() {
            // Output block s should be [s, r].
            let expect: Vec<u8> = (0..p).flat_map(|s| vec![s as u8, r as u8]).collect();
            assert_eq!(o, &expect, "p={p} rank={r}");
        }
    }
}

#[test]
fn gather_and_scatter_roundtrip() {
    let (outs, _) = Universe::new(4, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            let root = 1;
            // Gather each rank's id block at root.
            let g = mpi
                .igather(COMM_WORLD, root, vec![mpi.rank() as u8; 3])
                .await;
            mpi.wait(&g).await;
            let gathered = g.take_data().expect("gather result");
            // Root scatters it right back.
            let input = if mpi.rank() == root {
                Some(gathered.clone())
            } else {
                None
            };
            let s = mpi.iscatter(COMM_WORLD, root, input, 3).await;
            mpi.wait(&s).await;
            s.take_data().expect("scatter result").to_vec()
        })
    });
    for (r, o) in outs.iter().enumerate() {
        assert_eq!(o, &vec![r as u8; 3], "rank {r} got its own block back");
    }
}

#[test]
fn nonblocking_collective_overlaps_only_with_polling() {
    // An Iallreduce posted, then compute, then wait: without polling, the
    // schedule is stuck at round 0 until the wait.
    let (outs, _) = Universe::new(4, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            let env = mpi.env().clone();
            let mine = f64s_to_bytes(&[1.0; 1024]);
            let req = mpi
                .iallreduce(COMM_WORLD, mine, Dtype::F64, ReduceOp::Sum)
                .await;
            env.advance(5_000_000).await; // compute without polls
            let t = env.now();
            mpi.wait(&req).await;
            let wait_ns = env.now() - t;
            let out = bytes_to_f64s(&req.take_data().expect("result").to_vec());
            (wait_ns, out[0])
        })
    });
    for &(wait_ns, v) in &outs {
        assert_eq!(v, 4.0);
        assert!(
            wait_ns > 1_000,
            "without progress the wait must do real work, got {wait_ns}ns"
        );
    }
}

#[test]
fn comm_dup_separates_traffic() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            let dup = mpi.comm_dup(COMM_WORLD);
            if mpi.rank() == 0 {
                // Same tag on both communicators.
                mpi.send(COMM_WORLD, 1, 4, vec![1u8]).await;
                mpi.send(dup, 1, 4, vec![2u8]).await;
                0
            } else {
                // Receive from the dup first: must get the dup message.
                let (_, d) = mpi.recv(dup, Some(0), Some(4)).await;
                let (_, w) = mpi.recv(COMM_WORLD, Some(0), Some(4)).await;
                (d.to_vec()[0] as usize) * 10 + w.to_vec()[0] as usize
            }
        })
    });
    assert_eq!(outs[1], 21);
}

#[test]
fn comm_split_forms_working_subgroups() {
    let (outs, _) = Universe::new(4, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
        Box::pin(async move {
            // Even/odd split.
            let colors: Vec<u64> = (0..4).map(|r| (r % 2) as u64).collect();
            let sub = mpi.comm_split(COMM_WORLD, &colors);
            assert_eq!(mpi.comm_size(sub), 2);
            let mine = f64s_to_bytes(&[mpi.rank() as f64]);
            let out = mpi.allreduce(sub, mine, Dtype::F64, ReduceOp::Sum).await;
            bytes_to_f64s(&out.to_vec())[0]
        })
    });
    assert_eq!(outs, vec![2.0, 4.0, 2.0, 4.0]); // 0+2 and 1+3
}

#[test]
fn thread_multiple_charges_the_lock_penalty() {
    // The same ping-pong is strictly slower under MPI_THREAD_MULTIPLE.
    let time = |level: ThreadLevel| {
        let (outs, _) = Universe::new(2, MachineProfile::xeon(), level).run(|mpi| {
            Box::pin(async move {
                let env = mpi.env().clone();
                let t0 = env.now();
                for _ in 0..10 {
                    if mpi.rank() == 0 {
                        mpi.send(COMM_WORLD, 1, 1, vec![0u8; 64]).await;
                        let _ = mpi.recv(COMM_WORLD, Some(1), Some(1)).await;
                    } else {
                        let _ = mpi.recv(COMM_WORLD, Some(0), Some(1)).await;
                        mpi.send(COMM_WORLD, 0, 1, vec![0u8; 64]).await;
                    }
                }
                env.now() - t0
            })
        });
        outs[0]
    };
    let funneled = time(ThreadLevel::Funneled);
    let multiple = time(ThreadLevel::Multiple);
    assert!(
        multiple > funneled + 20 * 2_000,
        "MULTIPLE ({multiple}ns) must pay the per-call lock penalty over FUNNELED ({funneled}ns)"
    );
}

#[test]
fn waitany_returns_first_completion() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                mpi.env().advance(1_000_000).await;
                mpi.send(COMM_WORLD, 1, 2, vec![1u8]).await; // tag 2 sent late...
                mpi.send(COMM_WORLD, 1, 1, vec![2u8]).await;
                usize::MAX
            } else {
                let r1 = mpi.irecv(COMM_WORLD, Some(0), Some(1)).await;
                let r2 = mpi.irecv(COMM_WORLD, Some(0), Some(2)).await;
                // tag 2 arrives first (sent first): index 1 completes first.
                mpi.waitany(&[r1.clone(), r2.clone()]).await
            }
        })
    });
    assert_eq!(outs[1], 1);
}

#[test]
fn stats_count_traffic() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                mpi.send(COMM_WORLD, 1, 1, vec![0u8; 8]).await;
                mpi.send(COMM_WORLD, 1, 1, vec![0u8; 8]).await;
            } else {
                let _ = mpi.recv(COMM_WORLD, Some(0), Some(1)).await;
                let _ = mpi.recv(COMM_WORLD, Some(0), Some(1)).await;
            }
            let s = mpi.stats();
            (s.sends, s.recvs)
        })
    });
    assert_eq!(outs[0].0, 2);
    assert_eq!(outs[1].1, 2);
}

#[test]
fn synthetic_payloads_flow_like_real_ones() {
    let (outs, _) = run2(|mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                mpi.send(COMM_WORLD, 1, 1, Bytes::synthetic(1 << 22)).await;
                0
            } else {
                let (st, data) = mpi.recv(COMM_WORLD, Some(0), Some(1)).await;
                assert!(data.as_real().is_none());
                st.len
            }
        })
    });
    assert_eq!(outs[1], 1 << 22);
}
