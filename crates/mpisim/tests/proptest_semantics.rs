//! Property-based tests of the simulated MPI's matching and collective
//! semantics over randomized workloads.

use mpisim::{bytes_to_f64s, f64s_to_bytes, Bytes, Dtype, ReduceOp, ThreadLevel, Universe};
use proptest::prelude::*;
use simnet::MachineProfile;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of tagged messages from rank 0 is received in exactly
    /// per-tag FIFO order by rank 1, regardless of the posting order of
    /// the receives.
    #[test]
    fn per_tag_fifo_under_arbitrary_recv_order(
        sends in prop::collection::vec(0u32..4, 1..24),
        recv_order_seed in any::<u64>(),
    ) {
        // Count per-tag sequence numbers the receiver should observe.
        let sends = Rc::new(sends);
        let sends2 = sends.clone();
        let (outs, _) = Universe::new(2, MachineProfile::xeon(), ThreadLevel::Funneled)
            .run(move |mpi| {
                let sends = sends2.clone();
                Box::pin(async move {
                    if mpi.rank() == 0 {
                        for (i, &tag) in sends.iter().enumerate() {
                            mpi.send(mpisim::COMM_WORLD, 1, tag, vec![i as u8]).await;
                        }
                        Vec::new()
                    } else {
                        // Post receives per tag in a scrambled tag order.
                        let mut by_tag: Vec<Vec<u8>> = vec![Vec::new(); 4];
                        let mut tags: Vec<u32> = (0..4).collect();
                        // Deterministic scramble from the seed.
                        let mut s = recv_order_seed;
                        for i in (1..tags.len()).rev() {
                            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let j = (s >> 33) as usize % (i + 1);
                            tags.swap(i, j);
                        }
                        for &tag in &tags {
                            let n = sends.iter().filter(|&&t| t == tag).count();
                            for _ in 0..n {
                                let (_, d) =
                                    mpi.recv(mpisim::COMM_WORLD, Some(0), Some(tag)).await;
                                by_tag[tag as usize].push(d.to_vec()[0]);
                            }
                        }
                        by_tag.into_iter().flatten().collect()
                    }
                })
            });
        // Per tag, indices must appear in increasing send order.
        let mut cursor = vec![Vec::new(); 4];
        for (i, &tag) in sends.iter().enumerate() {
            cursor[tag as usize].push(i as u8);
        }
        let expect: Vec<u8> = cursor.into_iter().flatten().collect();
        let mut got = outs[1].clone();
        // outs came grouped by tag already; compare as multisets per tag
        // with order inside each tag.
        prop_assert_eq!(&mut got, &expect);
    }

    /// Allreduce(sum) equals the local sum of contributions for any rank
    /// count in 2..=9 and any payload lane count.
    #[test]
    fn allreduce_sum_is_correct_for_any_shape(
        p in 2usize..9,
        lanes in 1usize..8,
        seed in any::<u64>(),
    ) {
        let vals: Rc<Vec<Vec<f64>>> = Rc::new((0..p)
            .map(|r| {
                (0..lanes)
                    .map(|l| ((seed.wrapping_mul(r as u64 + 1).wrapping_add(l as u64) % 1000) as f64) - 500.0)
                    .collect()
            })
            .collect());
        let vals2 = vals.clone();
        let (outs, _) = Universe::new(p, MachineProfile::xeon(), ThreadLevel::Funneled)
            .run(move |mpi| {
                let vals = vals2.clone();
                Box::pin(async move {
                    let mine = f64s_to_bytes(&vals[mpi.rank()]);
                    let out = mpi
                        .allreduce(mpisim::COMM_WORLD, mine, Dtype::F64, ReduceOp::Sum)
                        .await;
                    bytes_to_f64s(&out.to_vec())
                })
            });
        let mut expect = vec![0.0; lanes];
        for v in vals.iter() {
            for (e, x) in expect.iter_mut().zip(v) {
                *e += x;
            }
        }
        for o in &outs {
            for (a, b) in o.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    /// Alltoall is an involution on symmetric block layouts: transposing
    /// twice returns the original distribution.
    #[test]
    fn alltoall_twice_is_identity(p in 2usize..7, block in 1usize..5, seed in any::<u64>()) {
        let (outs, _) = Universe::new(p, MachineProfile::xeon(), ThreadLevel::Funneled)
            .run(move |mpi| {
                Box::pin(async move {
                    let r = mpi.rank() as u64;
                    let input: Vec<u8> = (0..p * block)
                        .map(|i| (seed.wrapping_mul(r + 1).wrapping_add(i as u64) % 251) as u8)
                        .collect();
                    let once = mpi
                        .alltoall(mpisim::COMM_WORLD, input.clone(), block)
                        .await;
                    let twice = mpi
                        .alltoall(mpisim::COMM_WORLD, once.to_vec(), block)
                        .await;
                    (input, twice.to_vec())
                })
            });
        for (input, twice) in outs {
            prop_assert_eq!(input, twice);
        }
    }

    /// Bcast delivers the root's payload bit-exactly to every rank for any
    /// root and size.
    #[test]
    fn bcast_delivers_exact_payload(p in 2usize..9, root_sel in any::<u8>(), len in 0usize..300) {
        let (outs, _) = Universe::new(p, MachineProfile::xeon(), ThreadLevel::Funneled)
            .run(move |mpi| {
                Box::pin(async move {
                    let root = root_sel as usize % p;
                    let payload: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
                    let arg = if mpi.rank() == root {
                        Bytes::real(payload)
                    } else {
                        Bytes::synthetic(0)
                    };
                    mpi.bcast(mpisim::COMM_WORLD, root, arg).await.to_vec()
                })
            });
        let expect: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        for o in outs {
            prop_assert_eq!(o, expect.clone());
        }
    }
}
