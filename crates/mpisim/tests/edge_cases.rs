//! Edge cases of the simulated MPI: zero-length messages, self-sends,
//! many concurrent nonblocking collectives, interleaved collective and
//! point-to-point traffic, and exhaustion-adjacent scenarios.

use mpisim::{
    bytes_to_f64s, f64s_to_bytes, Bytes, Dtype, Mpi, ReduceOp, ThreadLevel, Universe, COMM_WORLD,
};
use simnet::MachineProfile;

fn uni(n: usize) -> Universe {
    Universe::new(n, MachineProfile::xeon(), ThreadLevel::Funneled)
}

#[test]
fn zero_length_messages_match_and_complete() {
    let (outs, _) = uni(2).run(|mpi: Mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                mpi.send(COMM_WORLD, 1, 5, Vec::new()).await;
                true
            } else {
                let (st, d) = mpi.recv(COMM_WORLD, Some(0), Some(5)).await;
                st.len == 0 && d.is_empty()
            }
        })
    });
    assert!(outs[1]);
}

#[test]
fn self_send_completes_through_matching() {
    let (outs, _) = uni(1).run(|mpi: Mpi| {
        Box::pin(async move {
            let rx = mpi.irecv(COMM_WORLD, Some(0), Some(9)).await;
            let tx = mpi.isend(COMM_WORLD, 0, 9, vec![42u8]).await;
            mpi.waitall(&[rx.clone(), tx]).await;
            rx.take_data().expect("self message").to_vec()
        })
    });
    assert_eq!(outs[0], vec![42]);
}

#[test]
fn many_concurrent_nbc_instances_complete_independently() {
    // 8 Iallreduces in flight at once; they must not cross-match (each has
    // its own internal tag context).
    let (outs, _) = uni(4).run(|mpi: Mpi| {
        Box::pin(async move {
            let mut reqs = Vec::new();
            for k in 0..8u64 {
                let mine = f64s_to_bytes(&[(mpi.rank() as u64 * 100 + k) as f64]);
                reqs.push(
                    mpi.iallreduce(COMM_WORLD, mine, Dtype::F64, ReduceOp::Sum)
                        .await,
                );
            }
            // Complete them out of order.
            for r in reqs.iter().rev() {
                mpi.wait(r).await;
            }
            reqs.iter()
                .map(|r| bytes_to_f64s(&r.take_data().expect("result").to_vec())[0])
                .collect::<Vec<_>>()
        })
    });
    for o in &outs {
        for (k, &v) in o.iter().enumerate() {
            // sum over ranks of (100r + k) = 100*(0+1+2+3) + 4k
            assert_eq!(v, 600.0 + 4.0 * k as f64, "collective {k}");
        }
    }
}

#[test]
fn p2p_and_collectives_interleave_without_cross_matching() {
    let (outs, _) = uni(4).run(|mpi: Mpi| {
        Box::pin(async move {
            let peer = (mpi.rank() + 1) % 4;
            let from = (mpi.rank() + 3) % 4;
            let rx = mpi.irecv(COMM_WORLD, Some(from), Some(1)).await;
            let coll = mpi
                .iallreduce(COMM_WORLD, f64s_to_bytes(&[1.0]), Dtype::F64, ReduceOp::Sum)
                .await;
            let tx = mpi.isend(COMM_WORLD, peer, 1, vec![mpi.rank() as u8]).await;
            mpi.waitall(&[rx.clone(), coll.clone(), tx]).await;
            let ring = rx.take_data().expect("ring").to_vec()[0];
            let sum = bytes_to_f64s(&coll.take_data().expect("sum").to_vec())[0];
            (ring, sum)
        })
    });
    for (r, &(ring, sum)) in outs.iter().enumerate() {
        assert_eq!(ring as usize, (r + 3) % 4);
        assert_eq!(sum, 4.0);
    }
}

#[test]
fn rendezvous_exactly_at_threshold_boundary() {
    let p = MachineProfile::xeon();
    let at = p.eager_threshold;
    let over = p.eager_threshold + 1;
    let (outs, _) = uni(2).run(move |mpi: Mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                // At threshold: eager — the isend completes locally.
                let r1 = mpi.isend(COMM_WORLD, 1, 1, Bytes::synthetic(at)).await;
                let eager_done = r1.is_done();
                // One past: rendezvous — parked until CTS.
                let r2 = mpi.isend(COMM_WORLD, 1, 2, Bytes::synthetic(over)).await;
                let rndv_done = r2.is_done();
                mpi.waitall(&[r1, r2]).await;
                (eager_done, rndv_done)
            } else {
                let r1 = mpi.irecv(COMM_WORLD, Some(0), Some(1)).await;
                let r2 = mpi.irecv(COMM_WORLD, Some(0), Some(2)).await;
                mpi.waitall(&[r1, r2]).await;
                (true, false)
            }
        })
    });
    assert_eq!(outs[0], (true, false));
}

#[test]
fn hundreds_of_outstanding_requests() {
    const N: usize = 400;
    let (outs, _) = uni(2).run(|mpi: Mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                let mut reqs = Vec::new();
                for i in 0..N {
                    reqs.push(
                        mpi.isend(COMM_WORLD, 1, (i % 7) as u32, vec![(i % 251) as u8])
                            .await,
                    );
                }
                mpi.waitall(&reqs).await;
                N
            } else {
                let mut reqs = Vec::new();
                for i in 0..N {
                    reqs.push(mpi.irecv(COMM_WORLD, Some(0), Some((i % 7) as u32)).await);
                }
                mpi.waitall(&reqs).await;
                // Every request delivered its payload.
                reqs.iter().filter(|r| r.take_data().is_some()).count()
            }
        })
    });
    assert_eq!(outs[0], N);
}

#[test]
fn wildcard_recv_interleaves_with_specific_recvs() {
    let (outs, _) = uni(3).run(|mpi: Mpi| {
        Box::pin(async move {
            if mpi.rank() == 0 {
                // One specific, one wildcard; both must complete.
                let specific = mpi.irecv(COMM_WORLD, Some(2), Some(1)).await;
                let wildcard = mpi.irecv(COMM_WORLD, None, None).await;
                mpi.waitall(&[specific.clone(), wildcard.clone()]).await;
                let s = specific.status().expect("specific");
                let w = wildcard.status().expect("wildcard");
                assert_eq!(s.source, 2);
                // The wildcard took whichever message the specific did not.
                assert_eq!(w.source, 1);
                true
            } else {
                mpi.env().advance(mpi.rank() as u64 * 10_000).await;
                mpi.send(COMM_WORLD, 0, 1, vec![mpi.rank() as u8]).await;
                true
            }
        })
    });
    assert!(outs.iter().all(|&b| b));
}

#[test]
fn barrier_chain_with_staggered_compute_stays_ordered() {
    let (outs, _) = uni(5).run(|mpi: Mpi| {
        Box::pin(async move {
            let env = mpi.env().clone();
            let mut exits = Vec::new();
            for round in 0..4u64 {
                env.advance((mpi.rank() as u64 * 31 + round * 17) % 5_000)
                    .await;
                mpi.barrier(COMM_WORLD).await;
                exits.push(env.now());
            }
            exits
        })
    });
    // All ranks exit each barrier round at nearly the same instant and
    // rounds are strictly increasing.
    for round in 0..4 {
        let times: Vec<u64> = outs.iter().map(|v| v[round]).collect();
        let spread = times.iter().max().unwrap() - times.iter().min().unwrap();
        assert!(spread < 50_000, "round {round} spread {spread}");
    }
    for v in &outs {
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn large_allreduce_uses_rsag_and_sums_correctly() {
    // A payload past the Rabenseifner threshold must still reduce
    // bit-correctly (reduce-scatter + allgather path).
    for p in [2usize, 4, 8] {
        let lanes = 4096; // 32 KB of f64
        let (outs, _) = uni(p).run(move |mpi: Mpi| {
            Box::pin(async move {
                let mine: Vec<f64> = (0..lanes)
                    .map(|i| (mpi.rank() + 1) as f64 * (i % 17) as f64)
                    .collect();
                let out = mpi
                    .allreduce(COMM_WORLD, f64s_to_bytes(&mine), Dtype::F64, ReduceOp::Sum)
                    .await;
                bytes_to_f64s(&out.to_vec())
            })
        });
        let rank_sum: f64 = (1..=p).map(|r| r as f64).sum();
        for o in &outs {
            for (i, &v) in o.iter().enumerate() {
                let expect = rank_sum * (i % 17) as f64;
                assert!((v - expect).abs() < 1e-9, "p={p} lane {i}: {v} vs {expect}");
            }
        }
    }
}

#[test]
fn rsag_moves_fewer_bytes_than_recursive_doubling_would() {
    // Wire accounting: at 8 ranks a 64 KB allreduce should move far less
    // than log2(8)=3 full copies per rank.
    let (outs, _) = uni(8).run(|mpi: Mpi| {
        Box::pin(async move {
            let out = mpi
                .allreduce(
                    COMM_WORLD,
                    Bytes::synthetic(64 * 1024),
                    Dtype::F64,
                    ReduceOp::Sum,
                )
                .await;
            out.len()
        })
    });
    assert!(outs.iter().all(|&n| n == 64 * 1024));
}
