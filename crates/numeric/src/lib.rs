//! Small numerical substrate shared by the QCD, FFT, and CNN application
//! crates: complex arithmetic, deterministic RNG helpers, and a few
//! statistics utilities used by the benchmark harness.
//!
//! Everything here is deliberately dependency-free and scalar; the
//! applications in this workspace are validated for *correctness* against
//! reference implementations, while their large-scale *performance* is
//! modelled in the discrete-event simulator (see the `destime` crate).

pub mod complex;
pub mod rng;
pub mod stats;

pub use complex::{Complex, Complex32, Complex64};
pub use rng::SplitMix64;
pub use stats::Summary;
