//! Deterministic, seedable RNG used to generate synthetic workloads.
//!
//! SplitMix64 is tiny, fast, and has well-understood statistical quality for
//! workload generation (it is the recommended seeder for xoshiro). We carry
//! our own implementation so that simulation results are bit-reproducible
//! regardless of `rand` version bumps.

/// SplitMix64 PRNG.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[-1, 1)`.
    #[inline]
    pub fn next_sym(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply trick (Lemire); slight modulo bias is irrelevant
        // for workload generation but this avoids it anyway for typical sizes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// deterministic, throughput is irrelevant here).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > 1e-300 {
                let u2 = self.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (core::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Derive an independent stream for a sub-component (e.g. per rank).
    pub fn fork(&mut self, stream: u64) -> Self {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Self::new(mixed)
    }

    /// Fill a slice with uniform bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = SplitMix64::new(1234);
        let n = 50_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.next_gaussian();
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Overwhelmingly unlikely to stay zero in any byte position for a
        // 13-byte buffer with a decent generator... but test only that the
        // buffer changed at all and that the call is deterministic.
        let mut r2 = SplitMix64::new(5);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SplitMix64::new(77);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
