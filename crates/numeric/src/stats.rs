//! Summary statistics over benchmark samples.

/// Order statistics and moments of a sample set.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub median: f64,
    pub p95: f64,
    pub stddev: f64,
}

impl Summary {
    /// Compute a summary; returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let n = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Some(Self {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            stddev: var.sqrt(),
        })
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&pct));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [1.0, 5.0, 9.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 9.0);
        assert_eq!(percentile_sorted(&v, 50.0), 5.0);
    }

    #[test]
    fn order_invariance() {
        let a = Summary::of(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }
}
