//! Generic complex arithmetic over `f32`/`f64`.
//!
//! A tiny, `#[repr(C)]`, `Copy` complex type. The QCD crate builds SU(3)
//! matrices and spinors from it; the FFT crate uses it for butterflies.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar abstraction so kernels can be written once for
/// `f32` and `f64`.
pub trait Real:
    Copy
    + PartialOrd
    + fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn cos(self) -> Self {
                self.cos()
            }
        }
    };
}
impl_real!(f32);
impl_real!(f64);

/// Complex number with real part `re` and imaginary part `im`.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

pub type Complex32 = Complex<f32>;
pub type Complex64 = Complex<f64>;

impl<T: Real> Complex<T> {
    pub const fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// `e^{i theta}` for a real angle `theta`.
    pub fn cis(theta: T) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiply by `i` (cheaper than a full complex multiply).
    #[inline]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Multiply by `-i`.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Self::new(self.im, -self.re)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Fused multiply-add: `self + a * b`.
    #[inline]
    pub fn madd(self, a: Self, b: Self) -> Self {
        Self::new(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// `self + conj(a) * b`.
    #[inline]
    pub fn madd_conj(self, a: Self, b: Self) -> Self {
        Self::new(
            self.re + a.re * b.re + a.im * b.im,
            self.im + a.re * b.im - a.im * b.re,
        )
    }

    /// Reciprocal `1/z`; caller must ensure `z != 0`.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    pub fn to_c64(self) -> Complex64 {
        Complex64::new(self.re.to_f64(), self.im.to_f64())
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1
    fn div(self, o: Self) -> Self {
        self * o.recip()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, s: T) -> Self {
        self.scale(s)
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: Real> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: Real> fmt::Display for Complex<T>
where
    T: fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = c(1.5, -2.0);
        let b = c(-0.25, 4.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = c(2.0, 3.0);
        let b = c(-1.0, 0.5);
        let p = a * b;
        assert!((p.re - (-2.0 - 3.0 * 0.5)).abs() < 1e-12);
        assert!((p.im - (2.0 * 0.5 + -3.0)).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let a = c(2.0, 3.0);
        assert_eq!(a.conj().conj(), a);
        let n = (a * a.conj()).re;
        assert!((n - a.norm_sqr()).abs() < 1e-12);
        assert!((a * a.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c(2.0, 3.0);
        let b = c(-1.0, 0.5);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-12);
        assert!((q.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn mul_i_is_rotation() {
        let a = c(2.0, 3.0);
        assert_eq!(a.mul_i(), a * Complex64::i());
        assert_eq!(a.mul_neg_i(), a * -Complex64::i());
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * std::f64::consts::FRAC_PI_8);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn madd_matches_composed_ops() {
        let acc = c(0.5, -0.5);
        let a = c(2.0, 3.0);
        let b = c(-1.0, 0.5);
        let r = acc.madd(a, b);
        let e = acc + a * b;
        assert!((r.re - e.re).abs() < 1e-12 && (r.im - e.im).abs() < 1e-12);
        let r = acc.madd_conj(a, b);
        let e = acc + a.conj() * b;
        assert!((r.re - e.re).abs() < 1e-12 && (r.im - e.im).abs() < 1e-12);
    }

    #[test]
    fn f32_variant_works() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        let p = a * b;
        assert!((p.re - 5.0).abs() < 1e-6);
        assert!((p.im - 5.0).abs() < 1e-6);
    }
}
