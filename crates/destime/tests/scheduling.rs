//! Integration tests of the DES executor's scheduling guarantees: the
//! properties every layer above (mpisim timing, offload modelling) relies
//! on.

use destime::sync::{SimBarrier, SimMutex};
use destime::{race, Either, Env, Sim};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn virtual_time_is_independent_of_task_count() {
    // N tasks each computing 1ms concurrently finish at t=1ms for any N —
    // tasks model threads on their own cores.
    for n in [1usize, 10, 100, 1000] {
        let t = Sim::new().run(move |env: Env| async move {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let env = env.clone();
                    env.clone()
                        .spawn(async move { env.advance(1_000_000).await })
                })
                .collect();
            for h in handles {
                h.join().await;
            }
        });
        assert_eq!(t, 1_000_000, "n={n}");
    }
}

#[test]
fn mutex_queueing_time_is_exact() {
    // k tasks each holding a mutex for h ns serialize to exactly k*h.
    for (k, h) in [(3u64, 500u64), (8, 1_000), (16, 250)] {
        let t = Sim::new().run(move |env: Env| async move {
            let m = SimMutex::new(());
            let handles: Vec<_> = (0..k)
                .map(|_| {
                    let env = env.clone();
                    let m = m.clone();
                    env.clone().spawn(async move {
                        let g = m.lock().await;
                        env.advance(h).await;
                        drop(g);
                    })
                })
                .collect();
            for hd in handles {
                hd.join().await;
            }
        });
        assert_eq!(t, k * h, "k={k} h={h}");
    }
}

#[test]
fn race_is_deterministic_under_identical_deadlines() {
    for _ in 0..5 {
        Sim::new().run(|env: Env| async move {
            let a = env.advance(100);
            let b = env.advance(100);
            assert!(matches!(race(a, b).await, Either::Left(())));
        });
    }
}

#[test]
fn repeated_runs_produce_identical_event_interleavings() {
    let trace = || {
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        Sim::new().run(move |env: Env| {
            let log = log2.clone();
            async move {
                let bar = SimBarrier::new(4);
                let handles: Vec<_> = (0..4usize)
                    .map(|i| {
                        let env2 = env.clone();
                        let log = log.clone();
                        let bar = bar.clone();
                        env.spawn(async move {
                            for round in 0..5u64 {
                                env2.advance((i as u64 * 13 + round * 7) % 40).await;
                                log.borrow_mut().push((env2.now(), i));
                                bar.wait().await;
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().await;
                }
            }
        });
        Rc::try_unwrap(log).expect("sole owner").into_inner()
    };
    assert_eq!(trace(), trace());
}

#[test]
fn deeply_nested_spawn_chains_complete() {
    // A chain of 500 tasks, each spawning the next.
    fn link(env: Env, depth: usize) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64>>> {
        Box::pin(async move {
            env.advance(1).await;
            if depth == 0 {
                env.now()
            } else {
                let env2 = env.clone();
                env.spawn(link(env2, depth - 1)).join().await
            }
        })
    }
    Sim::new().run(|env: Env| async move {
        let end = env.spawn(link(env.clone(), 500)).join().await;
        assert_eq!(end, 501);
    });
}

#[test]
fn channel_throughput_is_unbounded_in_one_instant() {
    // Channels carry any number of values without advancing the clock.
    let t = Sim::new().run(|env: Env| async move {
        let (tx, rx) = destime::channel::channel();
        let producer = env.spawn(async move {
            for i in 0..10_000u32 {
                tx.send(i);
            }
        });
        let consumer = env.spawn(async move {
            let mut sum = 0u64;
            for _ in 0..10_000 {
                sum += rx.recv().await.expect("value") as u64;
            }
            sum
        });
        producer.join().await;
        assert_eq!(consumer.join().await, 9_999 * 10_000 / 2);
    });
    assert_eq!(t, 0);
}

#[test]
fn barrier_with_thousands_of_participants() {
    let t = Sim::new().run(|env: Env| async move {
        let bar = SimBarrier::new(2_000);
        let handles: Vec<_> = (0..2_000u64)
            .map(|i| {
                let env2 = env.clone();
                let bar = bar.clone();
                env.spawn(async move {
                    env2.advance(i % 97).await;
                    bar.wait().await;
                    env2.now()
                })
            })
            .collect();
        let mut exits = Vec::new();
        for h in handles {
            exits.push(h.join().await);
        }
        // Everyone leaves at the time of the last arriver.
        assert!(exits.iter().all(|&t| t == 96));
    });
    assert_eq!(t, 96);
}
