//! Virtual-time synchronization primitives.
//!
//! All primitives are single-threaded (`Rc`-based): they synchronize
//! *simulated* threads (tasks) on the virtual clock, not OS threads. Wakes
//! take effect at the current virtual instant; any modelled cost (lock hold
//! times, wake-up latencies) is expressed by the caller with
//! [`crate::Env::advance`].

use std::cell::{Cell, RefCell, RefMut};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Flag: level-triggered one-way latch.
// ---------------------------------------------------------------------------

struct FlagInner {
    set: Cell<bool>,
    waiters: RefCell<Vec<Waker>>,
}

/// A one-shot, level-triggered latch: once [`Flag::set`] is called, all
/// current and future [`Flag::wait`]s complete immediately.
///
/// This is the DES analogue of the paper's per-request *done flag* that
/// application threads spin on while the offload thread completes their MPI
/// operation.
#[derive(Clone)]
pub struct Flag {
    inner: Rc<FlagInner>,
}

impl Default for Flag {
    fn default() -> Self {
        Self::new()
    }
}

impl Flag {
    pub fn new() -> Self {
        Self {
            inner: Rc::new(FlagInner {
                set: Cell::new(false),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Latch the flag and wake all waiters.
    pub fn set(&self) {
        if !self.inner.set.replace(true) {
            for w in self.inner.waiters.borrow_mut().drain(..) {
                w.wake();
            }
        }
    }

    pub fn is_set(&self) -> bool {
        self.inner.set.get()
    }

    /// Complete once the flag is set.
    pub fn wait(&self) -> FlagWait {
        FlagWait {
            inner: self.inner.clone(),
        }
    }
}

pub struct FlagWait {
    inner: Rc<FlagInner>,
}

impl Future for FlagWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.inner.set.get() {
            Poll::Ready(())
        } else {
            self.inner.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Signal: edge-triggered broadcast with an epoch counter.
// ---------------------------------------------------------------------------

struct SignalInner {
    epoch: Cell<u64>,
    waiters: RefCell<Vec<Waker>>,
}

/// Edge-triggered broadcast: [`Signal::wait`] completes when
/// [`Signal::notify`] is called *after* the wait future was created.
///
/// Because the executor is single-threaded, the usual check-then-wait race
/// does not exist: create the wait future, re-check your predicate, then
/// await it.
#[derive(Clone)]
pub struct Signal {
    inner: Rc<SignalInner>,
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

impl Signal {
    pub fn new() -> Self {
        Self {
            inner: Rc::new(SignalInner {
                epoch: Cell::new(0),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Wake every waiter currently registered or holding a pre-created wait
    /// future.
    pub fn notify(&self) {
        self.inner.epoch.set(self.inner.epoch.get() + 1);
        for w in self.inner.waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// Current epoch (number of notifies so far).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.get()
    }

    /// Future completing at the next `notify` after this call.
    pub fn wait(&self) -> SignalWait {
        SignalWait {
            inner: self.inner.clone(),
            seen: self.inner.epoch.get(),
        }
    }
}

pub struct SignalWait {
    inner: Rc<SignalInner>,
    seen: u64,
}

impl Future for SignalWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.inner.epoch.get() != self.seen {
            Poll::Ready(())
        } else {
            self.inner.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// SimMutex: FIFO mutex over simulated threads.
// ---------------------------------------------------------------------------

struct LockWaiter {
    granted: Rc<Cell<bool>>,
    waker: Waker,
}

struct MutexInner<T> {
    locked: Cell<bool>,
    queue: RefCell<VecDeque<LockWaiter>>,
    value: RefCell<T>,
    contended: Cell<u64>,
    acquisitions: Cell<u64>,
}

/// A FIFO mutex for simulated threads.
///
/// This is the building block for modelling the *global lock inside an MPI
/// implementation* under `MPI_THREAD_MULTIPLE`: callers hold it for the
/// modelled critical-section duration (`env.advance(cost)` while holding the
/// guard), and queueing delays under contention then emerge naturally.
pub struct SimMutex<T> {
    inner: Rc<MutexInner<T>>,
}

impl<T> Clone for SimMutex<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> SimMutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: Rc::new(MutexInner {
                locked: Cell::new(false),
                queue: RefCell::new(VecDeque::new()),
                value: RefCell::new(value),
                contended: Cell::new(0),
                acquisitions: Cell::new(0),
            }),
        }
    }

    /// Acquire the mutex, queueing FIFO behind current waiters.
    pub fn lock(&self) -> LockFuture<T> {
        LockFuture {
            inner: self.inner.clone(),
            granted: None,
        }
    }

    /// Number of acquisitions that had to queue (for contention metrics).
    pub fn contended_acquisitions(&self) -> u64 {
        self.inner.contended.get()
    }

    /// Total acquisitions.
    pub fn total_acquisitions(&self) -> u64 {
        self.inner.acquisitions.get()
    }

    /// True if currently held.
    pub fn is_locked(&self) -> bool {
        self.inner.locked.get()
    }
}

pub struct LockFuture<T> {
    inner: Rc<MutexInner<T>>,
    granted: Option<Rc<Cell<bool>>>,
}

impl<T> Future for LockFuture<T> {
    type Output = SimMutexGuard<T>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &self.granted {
            Some(flag) => {
                if flag.get() {
                    // Ownership was transferred to us by the releaser.
                    Poll::Ready(SimMutexGuard {
                        inner: self.inner.clone(),
                    })
                } else {
                    Poll::Pending
                }
            }
            None => {
                self.inner
                    .acquisitions
                    .set(self.inner.acquisitions.get() + 1);
                if !self.inner.locked.replace(true) {
                    Poll::Ready(SimMutexGuard {
                        inner: self.inner.clone(),
                    })
                } else {
                    self.inner.contended.set(self.inner.contended.get() + 1);
                    let granted = Rc::new(Cell::new(false));
                    self.inner.queue.borrow_mut().push_back(LockWaiter {
                        granted: granted.clone(),
                        waker: cx.waker().clone(),
                    });
                    self.granted = Some(granted);
                    Poll::Pending
                }
            }
        }
    }
}

/// RAII guard; dropping releases the mutex and hands it to the next waiter.
pub struct SimMutexGuard<T> {
    inner: Rc<MutexInner<T>>,
}

impl<T> SimMutexGuard<T> {
    /// Borrow the protected value mutably. The borrow must not be held
    /// across an `.await` (enforced at runtime by `RefCell`).
    pub fn get_mut(&self) -> RefMut<'_, T> {
        self.inner.value.borrow_mut()
    }
}

impl<T> Drop for SimMutexGuard<T> {
    fn drop(&mut self) {
        let next = self.inner.queue.borrow_mut().pop_front();
        match next {
            Some(w) => {
                // Transfer ownership directly (mutex stays locked).
                w.granted.set(true);
                w.waker.wake();
            }
            None => {
                self.inner.locked.set(false);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SimBarrier: reusable barrier over a fixed team size.
// ---------------------------------------------------------------------------

struct BarrierInner {
    n: usize,
    arrived: Cell<usize>,
    generation: Cell<u64>,
    waiters: RefCell<Vec<Waker>>,
}

/// A reusable barrier for `n` simulated threads (the DES analogue of
/// `#pragma omp barrier`). The last arriver is reported as the *leader*.
#[derive(Clone)]
pub struct SimBarrier {
    inner: Rc<BarrierInner>,
}

impl SimBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            inner: Rc::new(BarrierInner {
                n,
                arrived: Cell::new(0),
                generation: Cell::new(0),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    pub fn participants(&self) -> usize {
        self.inner.n
    }

    /// Wait for all `n` participants; resolves to `true` for the last
    /// arriver.
    pub fn wait(&self) -> BarrierWait {
        let arrived = self.inner.arrived.get() + 1;
        if arrived == self.inner.n {
            self.inner.arrived.set(0);
            self.inner.generation.set(self.inner.generation.get() + 1);
            for w in self.inner.waiters.borrow_mut().drain(..) {
                w.wake();
            }
            BarrierWait {
                inner: self.inner.clone(),
                gen: 0,
                leader: true,
            }
        } else {
            self.inner.arrived.set(arrived);
            BarrierWait {
                inner: self.inner.clone(),
                gen: self.inner.generation.get(),
                leader: false,
            }
        }
    }
}

pub struct BarrierWait {
    inner: Rc<BarrierInner>,
    gen: u64,
    leader: bool,
}

impl Future for BarrierWait {
    type Output = bool;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        if self.leader || self.inner.generation.get() != self.gen {
            Poll::Ready(self.leader)
        } else {
            self.inner.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore: counting permits (used to model finite resources, e.g. cores).
// ---------------------------------------------------------------------------

struct SemWaiter {
    granted: Rc<Cell<bool>>,
    waker: Waker,
}

struct SemInner {
    permits: Cell<usize>,
    queue: RefCell<VecDeque<SemWaiter>>,
}

/// FIFO counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<SemInner>,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        Self {
            inner: Rc::new(SemInner {
                permits: Cell::new(permits),
                queue: RefCell::new(VecDeque::new()),
            }),
        }
    }

    pub fn available(&self) -> usize {
        self.inner.permits.get()
    }

    /// Acquire one permit (FIFO).
    pub fn acquire(&self) -> SemAcquire {
        SemAcquire {
            inner: self.inner.clone(),
            granted: None,
        }
    }

    /// Release one permit, waking the next waiter if any.
    pub fn release(&self) {
        let next = self.inner.queue.borrow_mut().pop_front();
        match next {
            Some(w) => {
                w.granted.set(true);
                w.waker.wake();
            }
            None => self.inner.permits.set(self.inner.permits.get() + 1),
        }
    }
}

pub struct SemAcquire {
    inner: Rc<SemInner>,
    granted: Option<Rc<Cell<bool>>>,
}

impl Future for SemAcquire {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match &self.granted {
            Some(flag) => {
                if flag.get() {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
            None => {
                let p = self.inner.permits.get();
                if p > 0 {
                    self.inner.permits.set(p - 1);
                    Poll::Ready(())
                } else {
                    let granted = Rc::new(Cell::new(false));
                    self.inner.queue.borrow_mut().push_back(SemWaiter {
                        granted: granted.clone(),
                        waker: cx.waker().clone(),
                    });
                    self.granted = Some(granted);
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use std::rc::Rc;

    #[test]
    fn flag_wakes_waiters_and_stays_set() {
        Sim::new().run(|env| async move {
            let flag = Flag::new();
            let mut handles = Vec::new();
            for _ in 0..3 {
                let f = flag.clone();
                handles.push(env.spawn(async move {
                    f.wait().await;
                }));
            }
            let setter = {
                let env2 = env.clone();
                let f = flag.clone();
                env.spawn(async move {
                    env2.advance(100).await;
                    f.set();
                })
            };
            for h in handles {
                h.join().await;
            }
            setter.join().await;
            assert_eq!(env.now(), 100);
            // Late waiters complete immediately.
            flag.wait().await;
            assert_eq!(env.now(), 100);
        });
    }

    #[test]
    fn mutex_serializes_and_is_fifo() {
        Sim::new().run(|env| async move {
            let m: SimMutex<Vec<u32>> = SimMutex::new(Vec::new());
            let mut handles = Vec::new();
            for i in 0..4u32 {
                let env2 = env.clone();
                let m2 = m.clone();
                handles.push(env.spawn(async move {
                    // Stagger arrival so queue order is deterministic.
                    env2.advance(i as u64).await;
                    let g = m2.lock().await;
                    env2.advance(100).await; // critical section
                    g.get_mut().push(i);
                }));
            }
            for h in handles {
                h.join().await;
            }
            let g = m.lock().await;
            assert_eq!(&*g.get_mut(), &vec![0, 1, 2, 3]);
            drop(g);
            // 4 critical sections of 100ns serialized.
            assert_eq!(env.now(), 400);
            assert_eq!(m.contended_acquisitions(), 3);
            assert_eq!(m.total_acquisitions(), 5);
        });
    }

    #[test]
    fn mutex_handoff_keeps_lock_held() {
        Sim::new().run(|env| async move {
            let m = SimMutex::new(());
            let g = m.lock().await;
            let m2 = m.clone();
            let waiter = env.spawn(async move {
                let _g = m2.lock().await;
            });
            env.advance(10).await;
            assert!(m.is_locked());
            drop(g); // hand off
            waiter.join().await;
            assert!(!m.is_locked());
        });
    }

    #[test]
    fn barrier_releases_all_and_reuses() {
        Sim::new().run(|env| async move {
            let bar = SimBarrier::new(3);
            let hits = Rc::new(Cell::new(0u32));
            let mut handles = Vec::new();
            for i in 0..3u64 {
                let env2 = env.clone();
                let b = bar.clone();
                let hits = hits.clone();
                handles.push(env.spawn(async move {
                    for round in 0..2u64 {
                        env2.advance(10 * (i + 1) + round).await;
                        b.wait().await;
                        hits.set(hits.get() + 1);
                    }
                }));
            }
            for h in handles {
                h.join().await;
            }
            assert_eq!(hits.get(), 6);
        });
    }

    #[test]
    fn barrier_leader_is_last_arriver() {
        Sim::new().run(|env| async move {
            let bar = SimBarrier::new(2);
            let b2 = bar.clone();
            let env2 = env.clone();
            let h = env.spawn(async move {
                env2.advance(100).await;
                b2.wait().await
            });
            let early = bar.wait().await;
            assert!(!early);
            assert!(h.join().await);
        });
    }

    #[test]
    fn semaphore_limits_concurrency() {
        Sim::new().run(|env| async move {
            let sem = Semaphore::new(2);
            let peak = Rc::new(Cell::new(0usize));
            let cur = Rc::new(Cell::new(0usize));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let env2 = env.clone();
                let sem2 = sem.clone();
                let peak = peak.clone();
                let cur = cur.clone();
                handles.push(env.spawn(async move {
                    sem2.acquire().await;
                    cur.set(cur.get() + 1);
                    peak.set(peak.get().max(cur.get()));
                    env2.advance(100).await;
                    cur.set(cur.get() - 1);
                    sem2.release();
                }));
            }
            for h in handles {
                h.join().await;
            }
            assert_eq!(peak.get(), 2);
            // 6 jobs of 100ns at concurrency 2 => 300ns.
            assert_eq!(env.now(), 300);
        });
    }

    #[test]
    fn signal_is_edge_triggered() {
        Sim::new().run(|env| async move {
            let sig = Signal::new();
            let s2 = sig.clone();
            let env2 = env.clone();
            let h = env.spawn(async move {
                let w = s2.wait();
                w.await;
                env2.now()
            });
            env.advance(50).await;
            sig.notify();
            assert_eq!(h.join().await, 50);
        });
    }
}
