//! The deterministic single-threaded executor and virtual clock.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::sync::Flag;
use crate::Nanos;

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// State shared between [`Env`] handles and the executor.
pub(crate) struct Core {
    now: Cell<Nanos>,
    seq: Cell<u64>,
    /// Pending timers, earliest first.
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    /// Futures spawned while the executor is running, collected on the next
    /// scheduling step.
    spawned: RefCell<Vec<(usize, LocalFuture)>>,
    next_task_id: Cell<usize>,
    live_tasks: Cell<usize>,
    /// Tasks woken at the current instant; drained FIFO for determinism.
    ready: Arc<Mutex<Vec<usize>>>,
    /// Total events processed; guards against runaway simulations.
    events: Cell<u64>,
    max_events: Cell<u64>,
}

struct TimerEntry {
    deadline: Nanos,
    seq: u64,
    fired: Rc<Cell<bool>>,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// Waker implementation: pushes the task id onto the shared ready list.
struct TaskWaker {
    id: usize,
    ready: Arc<Mutex<Vec<usize>>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        let mut q = self.ready.lock().expect("ready list poisoned");
        if !q.contains(&self.id) {
            q.push(self.id);
        }
    }
}

/// A handle to the simulation usable from inside tasks: spawn, read the
/// clock, advance virtual time. Cheap to clone.
#[derive(Clone)]
pub struct Env {
    core: Rc<Core>,
}

impl Env {
    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.core.now.get()
    }

    /// Advance this task's virtual time by `dt` nanoseconds (models the task
    /// computing / busy for that long). `advance(0)` is a deterministic
    /// yield point: the task is re-queued at the current instant.
    pub fn advance(&self, dt: Nanos) -> Sleep {
        Sleep {
            core: self.core.clone(),
            deadline: self.core.now.get().saturating_add(dt),
            fired: None,
        }
    }

    /// Sleep until an absolute virtual deadline (no-op if in the past).
    pub fn sleep_until(&self, deadline: Nanos) -> Sleep {
        Sleep {
            core: self.core.clone(),
            deadline,
            fired: None,
        }
    }

    /// Spawn a task; returns a [`JoinHandle`] resolving to its output.
    pub fn spawn<T: 'static, F>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
    {
        let id = self.core.next_task_id.get();
        self.core.next_task_id.set(id + 1);
        self.core.live_tasks.set(self.core.live_tasks.get() + 1);
        let slot: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let done = Flag::new();
        let handle = JoinHandle {
            slot: slot.clone(),
            done: done.clone(),
        };
        let wrapped = Box::pin(async move {
            let out = fut.await;
            *slot.borrow_mut() = Some(out);
            done.set();
        });
        self.core.spawned.borrow_mut().push((id, wrapped));
        // Make the new task runnable at the current instant.
        self.core
            .ready
            .lock()
            .expect("ready list poisoned")
            .push(id);
        handle
    }

    pub(crate) fn register_timer(&self, deadline: Nanos, fired: Rc<Cell<bool>>, waker: Waker) {
        let seq = self.core.seq.get();
        self.core.seq.set(seq + 1);
        self.core.timers.borrow_mut().push(Reverse(TimerEntry {
            deadline,
            seq,
            fired,
            waker,
        }));
    }
}

/// Future returned by [`Env::advance`] / [`Env::sleep_until`].
pub struct Sleep {
    core: Rc<Core>,
    deadline: Nanos,
    fired: Option<Rc<Cell<bool>>>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match &self.fired {
            Some(flag) => {
                if flag.get() {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
            None => {
                // Even for an already-expired deadline we go through the
                // timer heap so that `advance(0)` acts as a fair yield.
                let flag = Rc::new(Cell::new(false));
                let deadline = self.deadline.max(self.core.now.get());
                let env = Env {
                    core: self.core.clone(),
                };
                env.register_timer(deadline, flag.clone(), cx.waker().clone());
                self.fired = Some(flag);
                Poll::Pending
            }
        }
    }
}

/// Handle to a spawned task's result.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<Option<T>>>,
    done: Flag,
}

impl<T> JoinHandle<T> {
    /// Wait (in virtual time) for the task to complete and take its output.
    pub async fn join(self) -> T {
        self.done.wait().await;
        self.slot
            .borrow_mut()
            .take()
            .expect("task output already taken")
    }

    /// True once the task has completed.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }
}

/// The simulation executor.
pub struct Sim {
    core: Rc<Core>,
    tasks: Vec<Option<(usize, LocalFuture)>>,
    /// Map from task id to slot in `tasks`; ids are dense so a Vec works.
    index: Vec<Option<usize>>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    pub fn new() -> Self {
        Self {
            core: Rc::new(Core {
                now: Cell::new(0),
                seq: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                spawned: RefCell::new(Vec::new()),
                next_task_id: Cell::new(0),
                live_tasks: Cell::new(0),
                ready: Arc::new(Mutex::new(Vec::new())),
                events: Cell::new(0),
                max_events: Cell::new(u64::MAX),
            }),
            tasks: Vec::new(),
            index: Vec::new(),
        }
    }

    /// Abort (panic) after this many scheduling events; a backstop against
    /// accidentally non-terminating models.
    pub fn with_max_events(self, max: u64) -> Self {
        self.core.max_events.set(max);
        self
    }

    /// Run a root task to completion together with everything it spawns.
    /// Returns the final virtual time in nanoseconds.
    ///
    /// Panics on deadlock (runnable set empty, no timers pending, tasks
    /// remaining).
    pub fn run<T: 'static, F, Fut>(mut self, root: F) -> Nanos
    where
        F: FnOnce(Env) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let env = Env {
            core: self.core.clone(),
        };
        let _root_handle = env.spawn(root(env.clone()));
        loop {
            self.adopt_spawned();
            // Drain every task runnable at the current instant.
            loop {
                let next = {
                    let mut q = self.core.ready.lock().expect("ready list poisoned");
                    if q.is_empty() {
                        None
                    } else {
                        Some(q.remove(0))
                    }
                };
                let Some(id) = next else { break };
                self.poll_task(id);
                self.adopt_spawned();
            }
            // Nothing runnable now: advance the clock to the next timer.
            let fired_any = self.fire_next_timer_batch();
            if !fired_any {
                if self.core.live_tasks.get() == 0 {
                    return self.core.now.get();
                }
                panic!(
                    "destime: deadlock at t={}ns with {} live task(s) \
                     (no runnable task, no pending timer)",
                    self.core.now.get(),
                    self.core.live_tasks.get()
                );
            }
        }
    }

    fn adopt_spawned(&mut self) {
        let new = std::mem::take(&mut *self.core.spawned.borrow_mut());
        for (id, fut) in new {
            if self.index.len() <= id {
                self.index.resize(id + 1, None);
            }
            self.index[id] = Some(self.tasks.len());
            self.tasks.push(Some((id, fut)));
        }
    }

    fn poll_task(&mut self, id: usize) {
        let Some(Some(slot)) = self.index.get(id).copied().map(Some) else {
            return;
        };
        let Some(slot) = slot else { return };
        let Some((tid, mut fut)) = self.tasks[slot].take() else {
            return; // already completed
        };
        debug_assert_eq!(tid, id);
        let ev = self.core.events.get() + 1;
        self.core.events.set(ev);
        assert!(
            ev <= self.core.max_events.get(),
            "destime: exceeded max_events={} (runaway simulation?)",
            self.core.max_events.get()
        );
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: self.core.ready.clone(),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.core.live_tasks.set(self.core.live_tasks.get() - 1);
                self.index[id] = None;
            }
            Poll::Pending => {
                self.tasks[slot] = Some((id, fut));
            }
        }
    }

    /// Pop all timers sharing the earliest deadline; returns false if none.
    fn fire_next_timer_batch(&mut self) -> bool {
        let mut timers = self.core.timers.borrow_mut();
        let Some(Reverse(first)) = timers.pop() else {
            return false;
        };
        let t = first.deadline;
        debug_assert!(t >= self.core.now.get(), "timer in the past");
        self.core.now.set(t);
        first.fired.set(true);
        first.waker.wake();
        while let Some(Reverse(entry)) = timers.peek() {
            if entry.deadline != t {
                break;
            }
            let Reverse(entry) = timers.pop().expect("peeked entry vanished");
            entry.fired.set(true);
            entry.waker.wake();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let t = Sim::new().run(|env| async move {
            assert_eq!(env.now(), 0);
            env.advance(100).await;
            assert_eq!(env.now(), 100);
            env.advance(50).await;
            assert_eq!(env.now(), 150);
        });
        assert_eq!(t, 150);
    }

    #[test]
    fn sleep_until_past_deadline_is_noop_in_time() {
        let t = Sim::new().run(|env| async move {
            env.advance(100).await;
            env.sleep_until(40).await; // in the past: wakes at 100
            assert_eq!(env.now(), 100);
        });
        assert_eq!(t, 100);
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let order = Rc::new(RefCell::new(Vec::new()));
        Sim::new().run({
            let order = order.clone();
            move |env| async move {
                let mut handles = Vec::new();
                for i in 0..3u64 {
                    let env2 = env.clone();
                    let order = order.clone();
                    handles.push(env.spawn(async move {
                        env2.advance(10 * (3 - i)).await;
                        order.borrow_mut().push(i);
                    }));
                }
                for h in handles {
                    h.join().await;
                }
            }
        });
        // Task 2 sleeps 10ns, task 1 sleeps 20ns, task 0 sleeps 30ns.
        assert_eq!(*order.borrow(), vec![2, 1, 0]);
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        Sim::new().run({
            let order = order.clone();
            move |env| async move {
                let mut handles = Vec::new();
                for i in 0..4u64 {
                    let env2 = env.clone();
                    let order = order.clone();
                    handles.push(env.spawn(async move {
                        env2.advance(100).await;
                        order.borrow_mut().push(i);
                    }));
                }
                for h in handles {
                    h.join().await;
                }
            }
        });
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_returns_value() {
        Sim::new().run(|env| async move {
            let h = env.spawn(async { "hello" });
            assert_eq!(h.join().await, "hello");
        });
    }

    #[test]
    fn join_waits_for_completion_time() {
        Sim::new().run(|env| async move {
            let env2 = env.clone();
            let h = env.spawn(async move {
                env2.advance(777).await;
                5u8
            });
            let v = h.join().await;
            assert_eq!(v, 5);
            assert_eq!(env.now(), 777);
        });
    }

    #[test]
    fn nested_spawns_complete() {
        let t = Sim::new().run(|env| async move {
            let env2 = env.clone();
            let outer = env.spawn(async move {
                let env3 = env2.clone();
                let inner = env2.spawn(async move {
                    env3.advance(10).await;
                    1u32
                });
                inner.join().await + 1
            });
            assert_eq!(outer.join().await, 2);
        });
        assert_eq!(t, 10);
    }

    #[test]
    fn advance_zero_yields_fairly() {
        // Two tasks ping-ponging with advance(0) should interleave rather
        // than one starving the other.
        let order = Rc::new(RefCell::new(Vec::new()));
        Sim::new().run({
            let order = order.clone();
            move |env| async move {
                let mut handles = Vec::new();
                for id in 0..2u64 {
                    let env2 = env.clone();
                    let order = order.clone();
                    handles.push(env.spawn(async move {
                        for _ in 0..3 {
                            order.borrow_mut().push(id);
                            env2.advance(0).await;
                        }
                    }));
                }
                for h in handles {
                    h.join().await;
                }
            }
        });
        assert_eq!(*order.borrow(), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        Sim::new().run(|env| async move {
            let flag = crate::sync::Flag::new();
            // Nobody ever sets the flag.
            let _ = env;
            flag.wait().await;
        });
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn runaway_guard_trips() {
        Sim::new().with_max_events(100).run(|env| async move {
            loop {
                env.advance(1).await;
            }
        });
    }

    #[test]
    fn runs_many_tasks() {
        let t = Sim::new().run(|env| async move {
            let mut handles = Vec::new();
            for i in 0..1000u64 {
                let env2 = env.clone();
                handles.push(env.spawn(async move {
                    env2.advance(i % 97).await;
                    i
                }));
            }
            let mut total = 0;
            for h in handles {
                total += h.join().await;
            }
            assert_eq!(total, 999 * 1000 / 2);
        });
        assert_eq!(t, 96);
    }
}
