//! Minimal future combinators needed by the simulation layers.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Outcome of [`race`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    Left(A),
    Right(B),
}

/// Run two futures concurrently; resolve with whichever finishes first
/// (left wins ties). The loser is dropped.
pub fn race<FA, FB>(a: FA, b: FB) -> Race<FA, FB> {
    Race { a, b }
}

pub struct Race<FA, FB> {
    a: FA,
    b: FB,
}

impl<FA, FB> Future for Race<FA, FB>
where
    FA: Future + Unpin,
    FB: Future + Unpin,
{
    type Output = Either<FA::Output, FB::Output>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        if let Poll::Ready(v) = Pin::new(&mut this.a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut this.b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Env, Sim};

    #[test]
    fn left_wins_tie() {
        Sim::new().run(|env: Env| async move {
            let a = env.advance(100);
            let b = env.advance(100);
            match race(a, b).await {
                Either::Left(()) => {}
                Either::Right(()) => panic!("left should win ties"),
            }
            assert_eq!(env.now(), 100);
        });
    }

    #[test]
    fn earlier_deadline_wins() {
        Sim::new().run(|env: Env| async move {
            let a = env.advance(200);
            let b = env.advance(50);
            match race(a, b).await {
                Either::Right(()) => assert_eq!(env.now(), 50),
                Either::Left(()) => panic!("right should win"),
            }
        });
    }

    #[test]
    fn signal_vs_deadline() {
        Sim::new().run(|env: Env| async move {
            let sig = crate::sync::Signal::new();
            let s2 = sig.clone();
            let env2 = env.clone();
            let notifier = env.spawn(async move {
                env2.advance(30).await;
                s2.notify();
            });
            match race(sig.wait(), env.advance(1000)).await {
                Either::Left(()) => assert_eq!(env.now(), 30),
                Either::Right(()) => panic!("signal should win"),
            }
            notifier.join().await;
        });
    }
}
