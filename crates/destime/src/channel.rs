//! Unbounded in-simulation channels (MPMC over simulated threads).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct ChanInner<T> {
    queue: RefCell<VecDeque<T>>,
    waiters: RefCell<VecDeque<Waker>>,
    senders: std::cell::Cell<usize>,
}

/// Create an unbounded channel. Any number of producers/consumers (they are
/// all tasks on the single-threaded executor).
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(ChanInner {
        queue: RefCell::new(VecDeque::new()),
        waiters: RefCell::new(VecDeque::new()),
        senders: std::cell::Cell::new(1),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Sending half. Cloning increments the sender count; when all senders drop,
/// receivers see `None` after the queue drains.
pub struct Sender<T> {
    inner: Rc<ChanInner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.set(self.inner.senders.get() + 1);
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let n = self.inner.senders.get() - 1;
        self.inner.senders.set(n);
        if n == 0 {
            // Wake receivers so they can observe disconnection.
            for w in self.inner.waiters.borrow_mut().drain(..) {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a value, waking one waiting receiver.
    pub fn send(&self, value: T) {
        self.inner.queue.borrow_mut().push_back(value);
        if let Some(w) = self.inner.waiters.borrow_mut().pop_front() {
            w.wake();
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Receiving half.
pub struct Receiver<T> {
    inner: Rc<ChanInner<T>>,
}

// Manual impl: cloning a receiver never clones values, so no `T: Clone`
// bound (a `derive` would add one).
impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Receiver<T> {
    /// Await the next value; `None` once all senders dropped and the queue
    /// is empty.
    pub fn recv(&self) -> Recv<T> {
        Recv {
            inner: self.inner.clone(),
        }
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.queue.borrow_mut().pop_front()
    }

    pub fn len(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub struct Recv<T> {
    inner: Rc<ChanInner<T>>,
}

impl<T> Future for Recv<T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        if let Some(v) = self.inner.queue.borrow_mut().pop_front() {
            return Poll::Ready(Some(v));
        }
        if self.inner.senders.get() == 0 {
            return Poll::Ready(None);
        }
        self.inner
            .waiters
            .borrow_mut()
            .push_back(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn send_then_recv() {
        Sim::new().run(|_env| async move {
            let (tx, rx) = channel();
            tx.send(1u32);
            tx.send(2);
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
        });
    }

    #[test]
    fn recv_blocks_until_send() {
        Sim::new().run(|env| async move {
            let (tx, rx) = channel();
            let env2 = env.clone();
            let producer = env.spawn(async move {
                env2.advance(250).await;
                tx.send(7u32);
            });
            assert_eq!(rx.recv().await, Some(7));
            assert_eq!(env.now(), 250);
            producer.join().await;
        });
    }

    #[test]
    fn disconnection_yields_none() {
        Sim::new().run(|env| async move {
            let (tx, rx) = channel::<u32>();
            let env2 = env.clone();
            let producer = env.spawn(async move {
                tx.send(1);
                env2.advance(10).await;
                drop(tx);
            });
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
            producer.join().await;
        });
    }

    #[test]
    fn try_recv_does_not_block() {
        Sim::new().run(|_env| async move {
            let (tx, rx) = channel();
            assert_eq!(rx.try_recv(), None);
            tx.send(3u8);
            assert_eq!(rx.try_recv(), Some(3));
        });
    }

    #[test]
    fn multiple_receivers_share_fifo() {
        Sim::new().run(|env| async move {
            let (tx, rx) = channel();
            let rx2 = rx.clone();
            let a = env.spawn(async move { rx.recv().await });
            let b = env.spawn(async move { rx2.recv().await });
            env.advance(1).await;
            tx.send(10u32);
            tx.send(20u32);
            let (x, y) = (a.join().await, b.join().await);
            let mut got = vec![x.unwrap(), y.unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![10, 20]);
        });
    }
}
