//! `destime` — a deterministic discrete-event simulation (DES) engine built
//! on single-threaded `async` tasks over a **virtual clock**.
//!
//! # Why a DES?
//!
//! The SC'15 offloading paper measures phenomena — compute/communication
//! overlap, posting latency, lock contention under `MPI_THREAD_MULTIPLE` —
//! across hundreds of cluster nodes. Reproducing those *timings* with real
//! OS threads on this machine would measure the host scheduler, not the
//! modelled system. Instead, every simulated hardware thread is an async
//! task; "computing for `t` ns" is [`Env::advance`], which schedules the
//! task's wake-up on the virtual clock. The executor runs tasks one at a
//! time in a deterministic `(time, sequence)` order, so simulated runs are
//! bit-for-bit reproducible and can model arbitrarily many nodes.
//!
//! # Model
//!
//! * Virtual time is `u64` nanoseconds ([`Nanos`]).
//! * Tasks only advance time explicitly (via [`Env::advance`] / timers).
//!   Everything executed between two awaits is logically instantaneous.
//! * Synchronization primitives ([`sync::Signal`], [`sync::Flag`],
//!   [`sync::SimMutex`], [`sync::SimBarrier`]) wake waiters at the current
//!   virtual instant; queueing delays are therefore *modelled*, emerging
//!   from who holds what when — exactly what we need to reproduce lock
//!   contention inside an MPI implementation.
//! * If no task is runnable and no timer is pending while tasks remain, the
//!   simulation is deadlocked and the executor panics with a diagnostic
//!   (this catches protocol bugs such as a rendezvous with nobody polling
//!   the progress engine — unless the model *intends* that stall and uses a
//!   timeout).
//!
//! # Example
//!
//! ```
//! use destime::Sim;
//!
//! let elapsed = Sim::new().run(|env| async move {
//!     let worker = env.spawn({
//!         let env = env.clone();
//!         async move {
//!             env.advance(500).await; // 500ns of simulated work
//!             42u32
//!         }
//!     });
//!     let value = worker.join().await;
//!     assert_eq!(value, 42);
//!     assert_eq!(env.now(), 500);
//! });
//! assert_eq!(elapsed, 500);
//! ```

pub mod channel;
pub mod executor;
pub mod futures;
pub mod sync;

pub use executor::{Env, JoinHandle, Sim};
pub use futures::{race, Either};

/// Virtual time in nanoseconds.
pub type Nanos = u64;

/// 1 microsecond in [`Nanos`].
pub const MICRO: Nanos = 1_000;
/// 1 millisecond in [`Nanos`].
pub const MILLI: Nanos = 1_000_000;
/// 1 second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;
