//! The `sync` facade: drop-in replacements for `std::sync` primitives.
//!
//! In a normal build these are the std types themselves (re-exports) or
//! `#[repr(transparent)]`-thin wrappers with identical codegen — the
//! production offload stack pays nothing for being model-checkable. Under
//! `RUSTFLAGS="--cfg offload_model"` every operation becomes a *schedule
//! point* of the deterministic scheduler in [`crate::rt`], and the ordering
//! argument (`Ordering::Release`, `Acquire`, …) drives the vector-clock
//! happens-before tracking used by the race detector.
//!
//! Model-mode types still work when used from a thread that is *not* part
//! of a model execution (e.g. other tests in the same binary): they fall
//! back to the real std primitive they embed.

#[cfg(not(offload_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(offload_model)]
pub use model_sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

pub use std::sync::{Arc, LockResult};

pub mod atomic {
    //! Facade atomics. Model mode mirrors every write through to the
    //! embedded std atomic so fallback readers (threads outside the model
    //! execution) and `static`s that outlive one execution stay coherent.

    #[cfg(not(offload_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;

    #[cfg(offload_model)]
    pub use model::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(offload_model)]
    mod model {
        use std::sync::atomic::Ordering;

        use crate::clock::VectorClock;
        use crate::rt::exec::{ctx, is_acquire, is_release, ExecInner, RegSlot, VarState};

        /// Value transport between the typed facade and the `u64`-valued
        /// model variable registry.
        pub(crate) trait AsU64: Copy {
            fn to_u64(self) -> u64;
            fn from_u64(v: u64) -> Self;
        }

        macro_rules! as_u64_int {
            ($($ty:ty),*) => {$(
                impl AsU64 for $ty {
                    fn to_u64(self) -> u64 {
                        self as u64
                    }
                    fn from_u64(v: u64) -> Self {
                        v as $ty
                    }
                }
            )*};
        }
        as_u64_int!(u32, u64, usize);

        impl AsU64 for bool {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v != 0
            }
        }

        macro_rules! model_atomic {
            ($name:ident, $ty:ty, $kind:literal) => {
                pub struct $name {
                    /// The real atomic: authoritative in fallback mode,
                    /// write-through mirror in model mode.
                    std: std::sync::atomic::$name,
                    slot: RegSlot,
                }

                impl $name {
                    pub const fn new(v: $ty) -> Self {
                        Self {
                            std: std::sync::atomic::$name::new(v),
                            slot: RegSlot::new(),
                        }
                    }

                    fn register(&self, g: &mut ExecInner) -> usize {
                        // ORDERING: Relaxed — snapshots the pre-model
                        // initial value; once registered, every access
                        // goes through the model's var table instead.
                        let init = AsU64::to_u64(self.std.load(Ordering::Relaxed));
                        self.slot.index(g, |g| {
                            g.vars.push(VarState {
                                value: init,
                                sync_clock: VectorClock::new(),
                            });
                            g.vars.len() - 1
                        })
                    }

                    pub fn load(&self, ord: Ordering) -> $ty {
                        if let Some((exec, tid)) = ctx() {
                            // ORDERING: validates the caller's ordering
                            // (std would panic too) — not a choice here.
                            assert!(
                                !matches!(ord, Ordering::Release | Ordering::AcqRel),
                                "invalid ordering for atomic load"
                            );
                            let mut g =
                                exec.schedule_point(tid, || concat!($kind, ".load").into(), false);
                            let idx = self.register(&mut g);
                            let val = g.vars[idx].value;
                            if is_acquire(ord) {
                                let sc = g.vars[idx].sync_clock.clone();
                                g.threads[tid].clock.join(&sc);
                            }
                            drop(g);
                            AsU64::from_u64(val)
                        } else {
                            self.std.load(ord)
                        }
                    }

                    pub fn store(&self, v: $ty, ord: Ordering) {
                        if let Some((exec, tid)) = ctx() {
                            // ORDERING: validates the caller's ordering —
                            // not a choice here.
                            assert!(
                                !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
                                "invalid ordering for atomic store"
                            );
                            let mut g =
                                exec.schedule_point(tid, || concat!($kind, ".store").into(), false);
                            let idx = self.register(&mut g);
                            if is_release(ord) {
                                g.vars[idx].sync_clock = g.threads[tid].clock.clone();
                                g.threads[tid].clock.tick(tid);
                            } else {
                                // A plain store breaks any release sequence
                                // headed here: later acquires get nothing.
                                g.vars[idx].sync_clock.clear();
                            }
                            g.vars[idx].value = AsU64::to_u64(v);
                            // ORDERING: write-through to the std mirror so
                            // Drop-path / outside-execution readers see the
                            // final value; SeqCst because this runs under
                            // the exec lock and is not perf-sensitive —
                            // the *modeled* ordering is `ord` above.
                            self.std.store(v, Ordering::SeqCst);
                            drop(g);
                        } else {
                            self.std.store(v, ord);
                        }
                    }

                    /// Model path of every read-modify-write: RMWs always
                    /// see the latest value; a relaxed RMW leaves the
                    /// variable's sync clock in place (it *continues* the
                    /// release sequence, per the C++ model), while a
                    /// releasing one joins its own clock in.
                    fn rmw(
                        &self,
                        exec: &crate::rt::exec::ExecShared,
                        tid: usize,
                        ord: Ordering,
                        name: &'static str,
                        f: impl FnOnce(u64) -> u64,
                    ) -> $ty {
                        let mut g =
                            exec.schedule_point(tid, || format!("{}.{}", $kind, name), false);
                        let idx = self.register(&mut g);
                        let old = g.vars[idx].value;
                        if is_acquire(ord) {
                            let sc = g.vars[idx].sync_clock.clone();
                            g.threads[tid].clock.join(&sc);
                        }
                        if is_release(ord) {
                            let c = g.threads[tid].clock.clone();
                            g.vars[idx].sync_clock.join(&c);
                            g.threads[tid].clock.tick(tid);
                        }
                        let new = f(old);
                        g.vars[idx].value = new;
                        // ORDERING: std-mirror write-through (see `store`);
                        // SeqCst for simplicity, the modeled ordering is
                        // what the RMW was called with.
                        self.std.store(AsU64::from_u64(new), Ordering::SeqCst);
                        drop(g);
                        AsU64::from_u64(old)
                    }

                    pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                        match ctx() {
                            Some((exec, tid)) => {
                                self.rmw(&exec, tid, ord, "swap", |_| AsU64::to_u64(v))
                            }
                            None => self.std.swap(v, ord),
                        }
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        match ctx() {
                            Some((exec, tid)) => {
                                // ORDERING: validates the caller's failure
                                // ordering — not a choice here.
                                assert!(
                                    !matches!(failure, Ordering::Release | Ordering::AcqRel),
                                    "invalid failure ordering for compare_exchange"
                                );
                                let mut g = exec.schedule_point(
                                    tid,
                                    || concat!($kind, ".compare_exchange").into(),
                                    false,
                                );
                                let idx = self.register(&mut g);
                                let old = g.vars[idx].value;
                                if old == AsU64::to_u64(current) {
                                    if is_acquire(success) {
                                        let sc = g.vars[idx].sync_clock.clone();
                                        g.threads[tid].clock.join(&sc);
                                    }
                                    if is_release(success) {
                                        let c = g.threads[tid].clock.clone();
                                        g.vars[idx].sync_clock.join(&c);
                                        g.threads[tid].clock.tick(tid);
                                    }
                                    g.vars[idx].value = AsU64::to_u64(new);
                                    // ORDERING: std-mirror write-through
                                    // (see `store`); the modeled ordering
                                    // is `success`.
                                    self.std.store(new, Ordering::SeqCst);
                                    drop(g);
                                    Ok(AsU64::from_u64(old))
                                } else {
                                    if is_acquire(failure) {
                                        let sc = g.vars[idx].sync_clock.clone();
                                        g.threads[tid].clock.join(&sc);
                                    }
                                    drop(g);
                                    Err(AsU64::from_u64(old))
                                }
                            }
                            None => self.std.compare_exchange(current, new, success, failure),
                        }
                    }

                    /// The model has no spurious CAS failures — `weak` is
                    /// `compare_exchange` (one fewer failure path to
                    /// explore; spurious-retry loops are already covered by
                    /// genuine interference schedules).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        match ctx() {
                            Some(_) => self.compare_exchange(current, new, success, failure),
                            None => self
                                .std
                                .compare_exchange_weak(current, new, success, failure),
                        }
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.debug_tuple(stringify!($name))
                            // ORDERING: Relaxed — racy debug formatting.
                            .field(&self.std.load(Ordering::Relaxed))
                            .finish()
                    }
                }
            };
        }

        macro_rules! model_atomic_int_ops {
            ($name:ident, $ty:ty) => {
                impl $name {
                    pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                        match ctx() {
                            Some((exec, tid)) => self.rmw(&exec, tid, ord, "fetch_add", |old| {
                                AsU64::to_u64(<$ty as AsU64>::from_u64(old).wrapping_add(v))
                            }),
                            None => self.std.fetch_add(v, ord),
                        }
                    }

                    pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                        match ctx() {
                            Some((exec, tid)) => self.rmw(&exec, tid, ord, "fetch_sub", |old| {
                                AsU64::to_u64(<$ty as AsU64>::from_u64(old).wrapping_sub(v))
                            }),
                            None => self.std.fetch_sub(v, ord),
                        }
                    }

                    pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                        match ctx() {
                            Some((exec, tid)) => self.rmw(&exec, tid, ord, "fetch_or", |old| {
                                AsU64::to_u64(<$ty as AsU64>::from_u64(old) | v)
                            }),
                            None => self.std.fetch_or(v, ord),
                        }
                    }

                    pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                        match ctx() {
                            Some((exec, tid)) => self.rmw(&exec, tid, ord, "fetch_and", |old| {
                                AsU64::to_u64(<$ty as AsU64>::from_u64(old) & v)
                            }),
                            None => self.std.fetch_and(v, ord),
                        }
                    }
                }
            };
        }

        model_atomic!(AtomicBool, bool, "AtomicBool");
        model_atomic!(AtomicU32, u32, "AtomicU32");
        model_atomic!(AtomicU64, u64, "AtomicU64");
        model_atomic!(AtomicUsize, usize, "AtomicUsize");
        model_atomic_int_ops!(AtomicU32, u32);
        model_atomic_int_ops!(AtomicU64, u64);
        model_atomic_int_ops!(AtomicUsize, usize);

        impl AtomicBool {
            pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
                match ctx() {
                    Some((exec, tid)) => self.rmw(&exec, tid, ord, "fetch_or", |old| {
                        AsU64::to_u64(bool::from_u64(old) | v)
                    }),
                    None => self.std.fetch_or(v, ord),
                }
            }

            pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
                match ctx() {
                    Some((exec, tid)) => self.rmw(&exec, tid, ord, "fetch_and", |old| {
                        AsU64::to_u64(bool::from_u64(old) & v)
                    }),
                    None => self.std.fetch_and(v, ord),
                }
            }
        }
    }
}

#[cfg(offload_model)]
mod model_sync {
    use std::time::Duration;

    use crate::clock::VectorClock;
    use crate::rt::exec::{
        ctx, current, unlock_model, BlockOn, ExecInner, MutexState, RegSlot, Status,
        UNTIMED_THRESHOLD,
    };

    /// Model-aware mutex. Inside a model execution, lock/unlock are
    /// schedule points and clock-transfer edges; outside, the embedded std
    /// mutex does the real locking.
    pub struct Mutex<T: ?Sized> {
        slot: RegSlot,
        raw: std::sync::Mutex<()>,
        cell: std::cell::UnsafeCell<T>,
    }

    // SAFETY: exclusion is guaranteed either by the model scheduler
    // (exactly one thread holds `held_by`) or by the embedded raw mutex on
    // the fallback path, so `&Mutex<T>` never hands out aliased `&mut T`.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    // SAFETY: as above — all access to the cell goes through a guard that
    // proves exclusive ownership.
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        /// Model mutex id when model-locked; `None` on the fallback path.
        mid: Option<usize>,
        raw: Option<std::sync::MutexGuard<'a, ()>>,
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Self {
                slot: RegSlot::new(),
                raw: std::sync::Mutex::new(()),
                cell: std::cell::UnsafeCell::new(value),
            }
        }

        pub fn into_inner(self) -> std::sync::LockResult<T> {
            Ok(self.cell.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn register(&self, g: &mut ExecInner) -> usize {
            self.slot.index(g, |g| {
                g.mutexes.push(MutexState {
                    held_by: None,
                    clock: VectorClock::new(),
                });
                g.mutexes.len() - 1
            })
        }

        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            if let Some((exec, tid)) = ctx() {
                let mut g = exec.schedule_point(tid, || "mutex.lock".into(), false);
                let mid = self.register(&mut g);
                loop {
                    if g.mutexes[mid].held_by.is_none() {
                        g.mutexes[mid].held_by = Some(tid);
                        let c = g.mutexes[mid].clock.clone();
                        g.threads[tid].clock.join(&c);
                        break;
                    }
                    g = exec.block_current(g, tid, BlockOn::Mutex(mid));
                }
                drop(g);
                Ok(MutexGuard {
                    lock: self,
                    mid: Some(mid),
                    raw: None,
                })
            } else {
                let raw = self.raw.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    mid: None,
                    raw: Some(raw),
                })
            }
        }

        pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
            Ok(self.cell.get_mut())
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: holding the guard means holding the mutex (model or
            // raw), so no other reference to the cell exists.
            unsafe { &*self.lock.cell.get() }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref` — the guard is the exclusion proof.
            unsafe { &mut *self.lock.cell.get() }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(mid) = self.mid {
                // During a ModelAbort unwind the execution is being torn
                // down — skip the bookkeeping (a nested panic would abort).
                if std::thread::panicking() {
                    return;
                }
                if let Some((exec, tid)) = current() {
                    let mut g = exec.schedule_point(tid, || "mutex.unlock".into(), false);
                    unlock_model(&mut g, tid, mid);
                }
            }
        }
    }

    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Model-aware condvar. Wakeups transfer no clocks — the mutex is the
    /// happens-before carrier, exactly as under POSIX. A `wait_timeout`
    /// whose duration is ≥ 1 hour is modelled as *untimed* (that is the
    /// "backstop disabled" configuration model tests use); a shorter one
    /// arms a timeout backstop that fires only when nothing else can run.
    pub struct Condvar {
        slot: RegSlot,
        raw: std::sync::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        pub const fn new() -> Self {
            Self {
                slot: RegSlot::new(),
                raw: std::sync::Condvar::new(),
            }
        }

        fn register(&self, g: &mut ExecInner) -> usize {
            self.slot.index(g, |g| {
                g.cvs.push(Default::default());
                g.cvs.len() - 1
            })
        }

        pub fn wait<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            if guard.mid.is_some() && ctx().is_some() {
                Ok(self.wait_model(guard, None).0)
            } else {
                let (lock, raw) = Self::into_raw(guard);
                let raw = self.raw.wait(raw).unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock,
                    mid: None,
                    raw: Some(raw),
                })
            }
        }

        pub fn wait_timeout<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            if guard.mid.is_some() && ctx().is_some() {
                Ok(self.wait_model(guard, Some(dur)))
            } else {
                let (lock, raw) = Self::into_raw(guard);
                let (raw, res) = self
                    .raw
                    .wait_timeout(raw, dur)
                    .unwrap_or_else(|e| e.into_inner());
                Ok((
                    MutexGuard {
                        lock,
                        mid: None,
                        raw: Some(raw),
                    },
                    WaitTimeoutResult(res.timed_out()),
                ))
            }
        }

        /// Take the raw std guard out without running our Drop.
        fn into_raw<'a, T: ?Sized>(
            guard: MutexGuard<'a, T>,
        ) -> (&'a Mutex<T>, std::sync::MutexGuard<'a, ()>) {
            let mut guard = guard;
            let raw = guard
                .raw
                .take()
                .expect("condvar wait on a model-locked mutex outside its execution");
            let lock = guard.lock;
            std::mem::forget(guard);
            (lock, raw)
        }

        fn wait_model<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Option<Duration>,
        ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
            let (exec, tid) = current().expect("model ctx");
            let mid = guard.mid.expect("model-locked guard");
            let lock = guard.lock;
            std::mem::forget(guard);
            let timed = matches!(dur, Some(d) if d < UNTIMED_THRESHOLD);
            let mut g =
                exec.schedule_point(tid, move || format!("condvar.wait(timed={timed})"), true);
            let cvid = self.register(&mut g);
            unlock_model(&mut g, tid, mid);
            g.cvs[cvid].waiters.push((tid, timed));
            g = exec.block_current(g, tid, BlockOn::Condvar { cv: cvid, timed });
            let timed_out = std::mem::replace(&mut g.threads[tid].timed_out, false);
            // Re-acquire the mutex before returning, as std does.
            loop {
                if g.mutexes[mid].held_by.is_none() {
                    g.mutexes[mid].held_by = Some(tid);
                    let c = g.mutexes[mid].clock.clone();
                    g.threads[tid].clock.join(&c);
                    break;
                }
                g = exec.block_current(g, tid, BlockOn::Mutex(mid));
            }
            drop(g);
            (
                MutexGuard {
                    lock,
                    mid: Some(mid),
                    raw: None,
                },
                WaitTimeoutResult(timed_out),
            )
        }

        pub fn notify_one(&self) {
            if let Some((exec, tid)) = ctx() {
                let mut g = exec.schedule_point(tid, || "condvar.notify_one".into(), false);
                let cvid = self.register(&mut g);
                if !g.cvs[cvid].waiters.is_empty() {
                    let (t, _) = g.cvs[cvid].waiters.remove(0);
                    if matches!(
                        g.threads[t].status,
                        Status::Blocked(BlockOn::Condvar { .. })
                    ) {
                        g.threads[t].status = Status::Runnable;
                    }
                }
                drop(g);
            }
            self.raw.notify_one();
        }

        pub fn notify_all(&self) {
            if let Some((exec, tid)) = ctx() {
                let mut g = exec.schedule_point(tid, || "condvar.notify_all".into(), false);
                let cvid = self.register(&mut g);
                let waiters = std::mem::take(&mut g.cvs[cvid].waiters);
                for (t, _) in waiters {
                    if matches!(
                        g.threads[t].status,
                        Status::Blocked(BlockOn::Condvar { .. })
                    ) {
                        g.threads[t].status = Status::Runnable;
                    }
                }
                drop(g);
            }
            self.raw.notify_all();
        }
    }
}

/// Pads and aligns a value to 128 bytes so neighbouring fields land on
/// separate cache lines (same contract as crossbeam's `CachePadded`; 128
/// covers adjacent-line prefetchers). Identical in both build modes —
/// padding needs no instrumentation.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}
