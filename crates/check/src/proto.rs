//! Protocol model checking for the wire state machines.
//!
//! `crates/check`'s main facility (the sync facade + CHESS-style
//! scheduler) proves the lock-free *core*; this module proves the *wire
//! protocol* — eager, RTS→CTS→DATA rendezvous, and the NBC round
//! schedules — under every frame interleaving the transport contract
//! allows. It exists because `wire::engine` is generic over
//! [`wire::FrameFabric`]: production runs the socket mesh, this module
//! substitutes [`ModelFabric`], a deterministic in-process fabric where
//! *frame delivery itself* is the explored nondeterminism.
//!
//! ## The model
//!
//! An N-rank world runs one real `WireComm<ModelFabric>` engine per rank,
//! each driving a scripted workload (point-to-point sends/receives and/or
//! one collective via `wire::nbcrun`). All rank-local computation is
//! deterministic, so the world is advanced to a fixpoint ("stabilize")
//! between nondeterministic choices. What is explored, per step:
//!
//! * **Deliver** the oldest in-flight frame on one directed link
//!   (per-link FIFO is preserved — the fabric contract — but *cross-link*
//!   order is free, which is exactly the reordering a real network does);
//! * **Duplicate** the oldest in-flight `Cts`/`Data` frame on a link
//!   (budgeted); `Eager`/`Rts` are never duplicated — a stream transport
//!   cannot duplicate them, and the engine's exactly-once matching is
//!   entitled to that;
//! * **Kill** a rank (budgeted): its links die abruptly, in-flight frames
//!   are dropped, already-delivered bytes remain readable — the TCP
//!   abrupt-death shape.
//!
//! Delay needs no action of its own: a frame is delayed by choosing
//! other actions first.
//!
//! ## Invariants (checked on every schedule)
//!
//! * **No panic** anywhere in the engine or schedule runner.
//! * **No lost or mis-matched message**: every scripted receive resolves
//!   with the expected source, length, and byte pattern; every collective
//!   accumulator equals the independently-computed expected result.
//! * **`wire.protocol_errors` accounting exact**: with no kills, the
//!   world-wide counter equals precisely the number of duplicate frames
//!   injected (each dup is one stray `Cts`/`Data`, nothing else counts);
//!   with kills the equality is waived — a kill drops in-flight dups and
//!   a peer vanishing mid-handshake adds engine-side counts of its own.
//! * **Completion**: every schedule either completes every rank's script
//!   or surfaces [`rtmpi::TransportError::PeerLost`] naming a killed
//!   rank. A world with no enabled actions and an unfinished, un-failed
//!   rank is a hang — reported with its schedule.
//!
//! ## Exploration, seeds, replay
//!
//! The conventions match the core model checker: seeded SplitMix64
//! random walks (`OFFLOAD_MODEL_SEED`, default [`crate::DEFAULT_SEED`];
//! `OFFLOAD_MODEL_ITERS`), schedule strings as dot-separated choice
//! indices ("3.0.1.2"), and exact replay via `OFFLOAD_MODEL_SCHEDULE` or
//! [`Strategy::Replay`]. The bounded-DFS strategy adds DPOR-style
//! pruning: two deliveries to *different destination ranks* commute (they
//! touch disjoint engine state), so of the two adjacent orders only the
//! canonical one is explored when both were enabled in the pre-state.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rtmpi::{OpOutcome, Transport, TransportError};
use wire::nbcrun::{Coll, Dtype, NbcRun, ReduceOp};
use wire::proto::{FrameKind, Header};
use wire::{FrameFabric, LinkPoll, WireComm, WireConfig, WireReq};

// ---------------------------------------------------------------- fabric

/// One directed link `src → dst` of the model network.
#[derive(Default)]
struct Link {
    /// Frames queued by `src` and not yet delivered (the "network"); the
    /// flag marks explorer-injected duplicates (counted on delivery).
    inflight: VecDeque<(Header, Vec<u8>, bool)>,
    /// Frames delivered to `dst`'s buffer and not yet read by its engine.
    inbox: VecDeque<(Header, Vec<u8>)>,
    /// Cumulative bytes ever queued (flush marks; flushing is instant in
    /// the model — *delivery* is the explored latency).
    queued_total: u64,
    /// Graceful close (src exited): no new frames, but what is already in
    /// flight still delivers; turns `dead` once drained — EOF after data.
    closing: bool,
    dead: bool,
}

/// The shared network state: `n*n` directed links.
struct ModelNet {
    n: usize,
    links: Vec<Link>,
}

impl ModelNet {
    fn new(n: usize) -> Self {
        ModelNet {
            n,
            links: (0..n * n).map(|_| Link::default()).collect(),
        }
    }

    fn link(&mut self, src: usize, dst: usize) -> &mut Link {
        &mut self.links[src * self.n + dst]
    }

    /// Abrupt death of `rank`: every link touching it dies, in-flight
    /// frames are dropped, delivered-but-unread bytes stay readable.
    fn kill(&mut self, rank: usize) {
        for other in 0..self.n {
            for (a, b) in [(rank, other), (other, rank)] {
                let l = self.link(a, b);
                l.dead = true;
                l.inflight.clear();
            }
        }
    }

    /// Graceful exit of `rank` (its script completed or failed): outbound
    /// links close — already-queued frames still deliver, then EOF;
    /// inbound links die at once (nobody reads them any more).
    fn exit(&mut self, rank: usize) {
        for other in 0..self.n {
            if other == rank {
                continue;
            }
            let out = self.link(rank, other);
            out.closing = true;
            if out.inflight.is_empty() {
                out.dead = true;
            }
            let inbound = self.link(other, rank);
            inbound.dead = true;
            inbound.inflight.clear();
        }
    }
}

/// Panic-tolerant lock: exploration catches engine panics, which poisons
/// the mutex; the world is discarded right after, so the state is fine.
fn net_lock(net: &Arc<Mutex<ModelNet>>) -> MutexGuard<'_, ModelNet> {
    net.lock().unwrap_or_else(|e| e.into_inner())
}

/// The deterministic fabric one rank's engine runs on. All engines of a
/// world share one [`ModelNet`]; the explorer moves frames from
/// `inflight` to `inbox` between stabilization rounds.
pub struct ModelFabric {
    net: Arc<Mutex<ModelNet>>,
    rank: usize,
    /// Death is reported to the engine exactly once per peer, through a
    /// poll result (like an EOF read) — before that the link still looks
    /// alive, matching how a real socket fails only when polled.
    reported: Vec<bool>,
}

impl FrameFabric for ModelFabric {
    fn size(&self) -> usize {
        net_lock(&self.net).n
    }

    fn alive(&self, peer: usize) -> bool {
        !self.reported[peer]
    }

    fn queue(&mut self, peer: usize, hdr: &Header, body: &[u8]) -> u64 {
        let mut net = net_lock(&self.net);
        let link = net.link(self.rank, peer);
        link.queued_total += (wire::proto::HEADER_LEN + body.len()) as u64;
        if !link.dead && !link.closing {
            link.inflight.push_back((*hdr, body.to_vec(), false));
        }
        link.queued_total
    }

    fn flushed(&self, peer: usize) -> u64 {
        // Flushing is instant: queued bytes are on the wire immediately.
        net_lock(&self.net).link(self.rank, peer).queued_total
    }

    fn flush(&mut self, _peer: usize) -> LinkPoll {
        LinkPoll::default()
    }

    fn recv(&mut self, peer: usize, out: &mut Vec<(Header, Vec<u8>)>) -> LinkPoll {
        let mut res = LinkPoll::default();
        let mut net = net_lock(&self.net);
        let link = net.link(peer, self.rank);
        while let Some((hdr, body)) = link.inbox.pop_front() {
            res.bytes += (wire::proto::HEADER_LEN + body.len()) as u64;
            res.moved = true;
            out.push((hdr, body));
        }
        // Both directions dead = the peer is gone; report it once, after
        // the delivered bytes above (EOF comes after the data).
        let gone = link.dead && net.link(self.rank, peer).dead;
        if gone && !self.reported[peer] {
            self.reported[peer] = true;
            res.died = true;
        }
        res
    }
}

// ---------------------------------------------------------------- worlds

/// One scripted point-to-point send.
#[derive(Clone, Debug)]
pub struct SendOp {
    pub dst: usize,
    pub tag: u32,
    pub len: usize,
}

/// One scripted receive, with the outcome the invariant checker demands.
/// `expect_from` is the rank whose payload pattern must arrive (named
/// even when `src` is the wildcard); `None` skips the content check (used
/// when several sources race for one wildcard receive).
#[derive(Clone, Debug)]
pub struct RecvOp {
    pub src: Option<usize>,
    pub tag: Option<u32>,
    pub expect_from: Option<usize>,
    pub expect_len: usize,
}

/// The collective a world runs (every rank participates).
#[derive(Clone, Copy, Debug)]
pub enum CollOp {
    Barrier,
    /// Broadcast `len` pattern bytes from `root`.
    Bcast {
        root: usize,
        len: usize,
    },
    /// f64 sum-reduce `lanes` lanes to `root`.
    Reduce {
        root: usize,
        lanes: usize,
    },
    /// f64 sum-allreduce over `lanes` lanes.
    Allreduce {
        lanes: usize,
    },
    /// Allgather `block` pattern bytes per rank.
    Allgather {
        block: usize,
    },
    /// Alltoall with `block` bytes per (src, dst) pair.
    Alltoall {
        block: usize,
    },
}

/// One rank's scripted workload. Receives are posted first, then the
/// collective starts, then sends are posted — the order that arms the
/// wildcard/reserved-tag interactions the checker exists to probe.
#[derive(Clone, Debug, Default)]
pub struct RankScript {
    pub sends: Vec<SendOp>,
    pub recvs: Vec<RecvOp>,
    pub coll: Option<CollOp>,
}

/// A world to explore: `n` ranks, engine crossover, one script per rank.
#[derive(Clone, Debug)]
pub struct WorldSpec {
    pub n: usize,
    pub eager_max: usize,
    pub scripts: Vec<RankScript>,
}

/// Deterministic payload pattern for (sender, tag, length).
fn pattern(src: usize, tag: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8) ^ (src as u8).wrapping_mul(31) ^ (tag as u8))
        .collect()
}

/// Deterministic f64 lanes for a rank's reduction contribution.
fn lanes_for(rank: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|i| ((rank + 1) as f64 * (i + 1) as f64).to_le_bytes())
        .collect()
}

impl WorldSpec {
    /// Every rank exchanges a message with its right neighbour on a ring;
    /// `len` vs `eager_max` picks eager or rendezvous.
    pub fn ring(n: usize, eager_max: usize, len: usize) -> Self {
        let scripts = (0..n)
            .map(|r| RankScript {
                sends: vec![SendOp {
                    dst: (r + 1) % n,
                    tag: 1,
                    len,
                }],
                recvs: vec![RecvOp {
                    src: Some((r + n - 1) % n),
                    tag: Some(1),
                    expect_from: Some((r + n - 1) % n),
                    expect_len: len,
                }],
                coll: None,
            })
            .collect();
        WorldSpec {
            n,
            eager_max,
            scripts,
        }
    }

    /// All ranks run one collective, rendezvous-sized where it has data.
    pub fn collective(n: usize, eager_max: usize, coll: CollOp) -> Self {
        WorldSpec {
            n,
            eager_max,
            scripts: (0..n)
                .map(|_| RankScript {
                    coll: Some(coll),
                    ..RankScript::default()
                })
                .collect(),
        }
    }

    fn expected_coll(&self, rank: usize, coll: CollOp) -> Option<Vec<u8>> {
        let n = self.n;
        match coll {
            CollOp::Barrier => Some(Vec::new()),
            CollOp::Bcast { root, len } => Some(pattern(root, 0, len)),
            CollOp::Reduce { root, lanes } => {
                // Only the root's accumulator is specified.
                (rank == root).then(|| sum_lanes(n, lanes))
            }
            CollOp::Allreduce { lanes } => Some(sum_lanes(n, lanes)),
            CollOp::Allgather { block } => {
                Some((0..n).flat_map(|s| pattern(s, 0, block)).collect())
            }
            CollOp::Alltoall { block } => Some(
                (0..n)
                    .flat_map(|s| {
                        // Rank `s`'s input block destined to `rank`.
                        pattern(s, rank as u32, block)
                    })
                    .collect(),
            ),
        }
    }
}

fn sum_lanes(n: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|i| {
            let sum: f64 = (0..n).map(|r| (r + 1) as f64 * (i + 1) as f64).sum();
            sum.to_le_bytes()
        })
        .collect()
}

fn coll_for(spec: &WorldSpec, rank: usize, coll: CollOp) -> Coll {
    let n = spec.n;
    match coll {
        CollOp::Barrier => Coll::Barrier,
        CollOp::Bcast { root, len } => Coll::Bcast {
            root,
            payload: if rank == root {
                pattern(root, 0, len)
            } else {
                Vec::new()
            },
        },
        CollOp::Reduce { root, lanes } => Coll::Reduce {
            root,
            dtype: Dtype::F64,
            op: ReduceOp::Sum,
            data: lanes_for(rank, lanes),
        },
        CollOp::Allreduce { lanes } => Coll::Allreduce {
            dtype: Dtype::F64,
            op: ReduceOp::Sum,
            data: lanes_for(rank, lanes),
        },
        CollOp::Allgather { block } => Coll::Allgather {
            mine: pattern(rank, 0, block),
        },
        CollOp::Alltoall { block } => Coll::Alltoall {
            input: (0..n)
                .flat_map(|dst| pattern(rank, dst as u32, block))
                .collect(),
            block,
        },
    }
}

// ----------------------------------------------------------------- world

enum RankPhase {
    Running,
    Done,
    /// An operation surfaced a transport error (expected iff that peer
    /// was killed).
    Failed(TransportError),
}

/// An in-flight collective plus its result buffer once finished.
type CollRun = (NbcRun<WireComm<ModelFabric>>, Option<Vec<u8>>);

struct RankState {
    comm: WireComm<ModelFabric>,
    /// Posted point-to-point ops with their expectations (`None` = send).
    pending: Vec<(WireReq, Option<RecvOp>)>,
    coll: Option<CollRun>,
    phase: RankPhase,
    /// First invariant violation observed on this rank.
    violation: Option<String>,
}

struct World {
    net: Arc<Mutex<ModelNet>>,
    ranks: Vec<RankState>,
    killed: Vec<bool>,
    /// Ranks whose script reached a terminal phase: modelled as process
    /// exit (their links close), so peers waiting on them cascade into
    /// `PeerLost` instead of wedging — exactly what the launcher worlds do.
    exited: Vec<bool>,
    dups_delivered: u64,
    kills_done: u64,
}

fn build_world(spec: &WorldSpec) -> World {
    assert_eq!(spec.scripts.len(), spec.n);
    let net = Arc::new(Mutex::new(ModelNet::new(spec.n)));
    let cfg = WireConfig {
        eager_max: spec.eager_max,
        ..WireConfig::default()
    };
    let mut ranks = Vec::with_capacity(spec.n);
    for (r, script) in spec.scripts.iter().enumerate() {
        let fabric = ModelFabric {
            net: net.clone(),
            rank: r,
            reported: vec![false; spec.n],
        };
        let mut comm = WireComm::from_fabric(r, spec.n, fabric, cfg.clone());
        let mut pending = Vec::new();
        // Receives first, then the collective, then sends (see RankScript).
        for recv in &script.recvs {
            let req = comm.irecv(recv.src, recv.tag);
            pending.push((req, Some(recv.clone())));
        }
        let coll = script.coll.map(|c| {
            let run = NbcRun::start(&mut comm, rtmpi::TAG_COLL_BASE, coll_for(spec, r, c));
            (run, spec.expected_coll(r, c))
        });
        for send in &script.sends {
            let req = comm.isend(
                send.dst,
                send.tag,
                Arc::from(pattern(r, send.tag, send.len)),
            );
            pending.push((req, None));
        }
        ranks.push(RankState {
            comm,
            pending,
            coll,
            phase: RankPhase::Running,
            violation: None,
        });
    }
    World {
        net,
        ranks,
        killed: vec![false; spec.n],
        exited: vec![false; spec.n],
        dups_delivered: 0,
        kills_done: 0,
    }
}

impl World {
    /// Advance every rank's deterministic computation to a fixpoint:
    /// engine progress (drains inboxes, queues responses) plus script
    /// polling (reaps finished ops, posts next collective rounds).
    fn stabilize(&mut self) {
        for _ in 0..100_000 {
            let mut any = false;
            for r in 0..self.ranks.len() {
                any |= self.step_rank(r);
                if !self.exited[r]
                    && !self.killed[r]
                    && !matches!(self.ranks[r].phase, RankPhase::Running)
                {
                    // The script is over: the process exits and its links
                    // close (its engine still drains what was already
                    // delivered, like a last poll before `exit()`).
                    self.exited[r] = true;
                    net_lock(&self.net).exit(r);
                    any = true;
                }
            }
            if !any {
                return;
            }
        }
        panic!("model world failed to stabilize (livelock in deterministic code)");
    }

    fn step_rank(&mut self, r: usize) -> bool {
        if self.killed[r] {
            // The process died: its engine is frozen mid-whatever, like a
            // SIGKILLed rank. Only its peers' views keep evolving.
            return false;
        }
        let rank = &mut self.ranks[r];
        if !matches!(rank.phase, RankPhase::Running) {
            // Completed/failed ranks still poll their engine so queued
            // frames (e.g. final round sends) reach the network and late
            // deliveries are absorbed rather than wedging the world.
            return rank.comm.progress();
        }
        let mut any = rank.comm.progress();
        let mut i = 0;
        while i < rank.pending.len() {
            match rank.comm.try_take(&rank.pending[i].0) {
                Some(out) => {
                    any = true;
                    let (_, expect) = rank.pending.swap_remove(i);
                    match (out, expect) {
                        (Ok(OpOutcome::Sent), None) => {}
                        (Ok(OpOutcome::Received(st, data)), Some(exp)) => {
                            check_recv(rank, r, &st, &data, &exp);
                        }
                        (Ok(out), exp) => {
                            rank.violation.get_or_insert(format!(
                                "rank {r}: op resolved as wrong kind: {out:?} for {exp:?}"
                            ));
                        }
                        (Err(e), _) => {
                            rank.phase = RankPhase::Failed(e);
                            return true;
                        }
                    }
                }
                None => i += 1,
            }
        }
        if let Some((run, expect)) = rank.coll.as_mut() {
            match run.poll(&mut rank.comm) {
                Ok(true) => {
                    any = true;
                    if let Some(exp) = expect.as_ref() {
                        if run.result() != &exp[..] {
                            rank.violation.get_or_insert(format!(
                                "rank {r}: collective result mismatch \
                                 (got {} bytes, want {} bytes)",
                                run.result().len(),
                                exp.len()
                            ));
                        }
                    }
                    rank.coll = None;
                }
                Ok(false) => {}
                Err(e) => {
                    rank.phase = RankPhase::Failed(e);
                    return true;
                }
            }
        }
        if rank.pending.is_empty() && rank.coll.is_none() {
            rank.phase = RankPhase::Done;
            any = true;
        }
        any
    }

    fn enabled_actions(&self, budget: &Budget) -> Vec<Action> {
        let mut net = net_lock(&self.net);
        let n = net.n;
        let mut actions = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let link = net.link(src, dst);
                if link.dead || link.inflight.is_empty() {
                    continue;
                }
                actions.push(Action::Deliver { src, dst });
                if budget.dups_left > 0
                    && matches!(
                        link.inflight.front().map(|(h, _, _)| h.kind),
                        Some(FrameKind::Cts) | Some(FrameKind::Data)
                    )
                {
                    actions.push(Action::Dup { src, dst });
                }
            }
        }
        if budget.kills_left > 0 {
            for &k in &budget.kill_candidates {
                if !self.killed[k] {
                    actions.push(Action::Kill { rank: k });
                }
            }
        }
        actions
    }

    fn apply(&mut self, action: Action, budget: &mut Budget) {
        let mut net = net_lock(&self.net);
        match action {
            Action::Deliver { src, dst } => {
                let link = net.link(src, dst);
                if let Some((hdr, body, is_dup)) = link.inflight.pop_front() {
                    if is_dup {
                        // Counted at delivery, not injection: a duplicate
                        // dropped by a dying/closing link never reached an
                        // engine and must not be expected in the counters.
                        self.dups_delivered += 1;
                    }
                    link.inbox.push_back((hdr, body));
                }
                if link.closing && link.inflight.is_empty() {
                    link.dead = true;
                }
            }
            Action::Dup { src, dst } => {
                let link = net.link(src, dst);
                if let Some((hdr, body, _)) = link.inflight.front() {
                    // The copy rides right behind the original, like a
                    // retransmit; per-link FIFO still holds.
                    let copy = (*hdr, body.clone(), true);
                    link.inflight.insert(1, copy);
                    budget.dups_left -= 1;
                }
            }
            Action::Kill { rank } => {
                net.kill(rank);
                self.killed[rank] = true;
                budget.kills_left -= 1;
                self.kills_done += 1;
            }
        }
    }

    /// End-of-schedule invariant sweep; `Err` carries the reason.
    fn verdict(&self) -> Result<(), String> {
        let mut protocol_errors = 0u64;
        for (r, rank) in self.ranks.iter().enumerate() {
            protocol_errors += rank.comm.obs().snapshot().counter("wire.protocol_errors");
            if self.killed[r] {
                // Whatever state the dead rank's frozen engine is in is
                // not an invariant — the real process no longer exists.
                continue;
            }
            if let Some(v) = &rank.violation {
                return Err(v.clone());
            }
            match &rank.phase {
                RankPhase::Done => {}
                RankPhase::Running => {
                    return Err(format!(
                        "hang: rank {r} still has pending operations with no \
                         enabled actions left"
                    ));
                }
                RankPhase::Failed(TransportError::PeerLost { peer }) => {
                    // Only legitimate downstream of a kill: the named peer
                    // must really be gone — killed, or exited after its own
                    // failure (the cascade a real launcher world produces).
                    // In a kill-free world a PeerLost means the engine lost
                    // a message somewhere, however it dresses it up.
                    if self.kills_done == 0 {
                        return Err(format!(
                            "rank {r}: PeerLost {{peer: {peer}}} in a world where \
                             nothing was killed"
                        ));
                    }
                    if !self.killed[*peer] && !self.exited[*peer] {
                        return Err(format!("rank {r}: spurious PeerLost for live rank {peer}"));
                    }
                }
                RankPhase::Failed(e) => {
                    return Err(format!("rank {r}: unexpected transport error {e:?}"));
                }
            }
        }
        // Exact protocol_errors accounting (see module docs): every
        // duplicate the explorer injected is exactly one stray-frame count,
        // nothing else contributes — provided nobody was killed (a kill
        // drops in-flight dups and adds vanished-peer counts of its own).
        if self.kills_done == 0 && protocol_errors != self.dups_delivered {
            return Err(format!(
                "protocol_errors accounting off: counted {protocol_errors}, \
                 injected {} duplicates",
                self.dups_delivered
            ));
        }
        Ok(())
    }
}

fn check_recv(rank: &mut RankState, r: usize, st: &rtmpi::Status, data: &[u8], exp: &RecvOp) {
    if st.len != exp.expect_len || data.len() != exp.expect_len {
        rank.violation.get_or_insert(format!(
            "rank {r}: mis-matched message: got {} bytes (status {}) from rank {} \
             tag {}, expected {} bytes",
            data.len(),
            st.len,
            st.source,
            st.tag,
            exp.expect_len
        ));
        return;
    }
    if let Some(from) = exp.expect_from {
        if st.source != from || data != &pattern(from, st.tag, exp.expect_len)[..] {
            rank.violation.get_or_insert(format!(
                "rank {r}: mis-matched message: payload/source from rank {} tag {} \
                 does not match rank {from}'s pattern",
                st.source, st.tag
            ));
        }
    }
}

// ------------------------------------------------------------- explorer

/// One explored nondeterministic step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    Deliver { src: usize, dst: usize },
    Dup { src: usize, dst: usize },
    Kill { rank: usize },
}

impl Action {
    /// Destination rank whose engine state the action touches (for the
    /// commutation check).
    fn touched(&self) -> usize {
        match self {
            Action::Deliver { dst, .. } | Action::Dup { dst, .. } => *dst,
            Action::Kill { rank } => *rank,
        }
    }
}

/// Fault budgets for one schedule.
#[derive(Clone, Debug)]
struct Budget {
    dups_left: u64,
    kills_left: u64,
    kill_candidates: Vec<usize>,
}

/// How to explore the delivery-schedule space.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Seeded random walk: `iters` schedules from a SplitMix64 stream.
    Random { seed: u64, iters: u64 },
    /// Bounded exhaustive DFS with DPOR-style pruning of commuting
    /// adjacent deliveries. `max_schedules` caps the run.
    Dfs { max_schedules: u64 },
    /// Replay exactly one schedule string ("3.0.1.2").
    Replay(String),
}

/// Exploration configuration.
#[derive(Clone, Debug)]
pub struct Config {
    pub strategy: Strategy,
    /// Max duplicate-frame injections per schedule.
    pub max_dups: u64,
    /// Max rank kills per schedule, drawn from `kill_candidates`.
    pub max_kills: u64,
    pub kill_candidates: Vec<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            strategy: Strategy::Random {
                seed: crate::DEFAULT_SEED,
                iters: 256,
            },
            max_dups: 0,
            max_kills: 0,
            kill_candidates: Vec::new(),
        }
    }
}

impl Config {
    /// Apply the `OFFLOAD_MODEL_*` environment conventions: a set
    /// `OFFLOAD_MODEL_SCHEDULE` switches to replay; `OFFLOAD_MODEL_SEED` /
    /// `OFFLOAD_MODEL_ITERS` reseed/resize a random walk.
    pub fn from_env(mut self) -> Self {
        if let Ok(s) = std::env::var("OFFLOAD_MODEL_SCHEDULE") {
            self.strategy = Strategy::Replay(s);
            return self;
        }
        if let Strategy::Random { seed, iters } = &mut self.strategy {
            if let Some(v) = env_u64("OFFLOAD_MODEL_SEED") {
                *seed = v;
            }
            if let Some(v) = env_u64("OFFLOAD_MODEL_ITERS") {
                *iters = v;
            }
        }
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Exploration outcome: how much of the space was visited.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Schedules executed to completion.
    pub schedules: u64,
    /// Distinct schedule strings among them (random walks can collide).
    pub distinct: u64,
    /// Total explored transitions (delivery/dup/kill choices).
    pub transitions: u64,
    /// DFS only: branches skipped by the commuting-deliveries rule.
    pub pruned: u64,
    /// DFS only: the bounded space was fully enumerated.
    pub complete: bool,
}

/// A failing schedule, replayable via [`Strategy::Replay`] or
/// `OFFLOAD_MODEL_SCHEDULE`.
#[derive(Clone, Debug)]
pub struct Failure {
    pub schedule: String,
    pub reason: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "protocol model check failed: {}", self.reason)?;
        writeln!(f, "failing schedule: {}", self.schedule)?;
        write!(
            f,
            "replay: OFFLOAD_MODEL_SCHEDULE=\"{}\" with the same WorldSpec \
             (cargo test -p check --features proto)",
            self.schedule
        )
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one schedule: `pick` chooses among the enabled actions at each
/// step. Returns the schedule string and the verdict.
fn run_schedule(
    spec: &WorldSpec,
    cfg: &Config,
    mut pick: impl FnMut(usize) -> usize,
) -> (String, Result<u64, String>) {
    let mut world = build_world(spec);
    let mut budget = Budget {
        dups_left: cfg.max_dups,
        kills_left: cfg.max_kills,
        kill_candidates: cfg.kill_candidates.clone(),
    };
    let mut schedule = String::new();
    let mut steps = 0u64;
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
        world.stabilize();
        let actions = world.enabled_actions(&budget);
        if actions.is_empty() {
            break;
        }
        let idx = pick(actions.len()).min(actions.len() - 1);
        if !schedule.is_empty() {
            schedule.push('.');
        }
        schedule.push_str(&idx.to_string());
        steps += 1;
        world.apply(actions[idx], &mut budget);
    }));
    let verdict = match run {
        Ok(()) => world.verdict().map(|()| steps),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("panic: {msg}"))
        }
    };
    (schedule, verdict)
}

/// Explore `spec` under `cfg`; the first invariant violation aborts the
/// exploration with its replayable schedule.
pub fn explore(spec: &WorldSpec, cfg: &Config) -> Result<Stats, Failure> {
    let mut stats = Stats::default();
    match &cfg.strategy {
        Strategy::Replay(s) => {
            let choices: Vec<usize> = s
                .split('.')
                .filter(|t| !t.is_empty())
                .map(|t| t.parse().unwrap_or(0))
                .collect();
            let mut i = 0;
            let (schedule, verdict) = run_schedule(spec, cfg, |n| {
                let c = choices.get(i).copied().unwrap_or(0).min(n - 1);
                i += 1;
                c
            });
            stats.schedules = 1;
            stats.distinct = 1;
            match verdict {
                Ok(steps) => {
                    stats.transitions = steps;
                    Ok(stats)
                }
                Err(reason) => Err(Failure { schedule, reason }),
            }
        }
        Strategy::Random { seed, iters } => {
            let mut seen = HashSet::new();
            for i in 0..*iters {
                // Decorrelated per-schedule stream, reproducible from
                // (seed, i) alone.
                let mut state = seed ^ (i.wrapping_mul(0xA076_1D64_78BD_642F));
                let (schedule, verdict) =
                    run_schedule(spec, cfg, |n| (splitmix64(&mut state) % n as u64) as usize);
                stats.schedules += 1;
                match verdict {
                    Ok(steps) => stats.transitions += steps,
                    Err(reason) => return Err(Failure { schedule, reason }),
                }
                seen.insert(schedule);
                stats.distinct = seen.len() as u64;
            }
            Ok(stats)
        }
        Strategy::Dfs { max_schedules } => {
            // Stateless-DFS over the choice prefix: rerun from the root
            // with a forced prefix (always-0 past its end), then advance
            // the deepest index with untried siblings.
            let mut prefix: Vec<usize> = Vec::new();
            loop {
                if stats.schedules >= *max_schedules {
                    return Ok(stats);
                }
                // One schedule: follow `prefix`, then always choose 0,
                // recording the action list width (and the actions) at
                // every step for pruning and backtracking.
                let mut widths: Vec<usize> = Vec::new();
                let mut taken: Vec<Action> = Vec::new();
                let mut enabled_before: Vec<Vec<Action>> = Vec::new();
                let mut world = build_world(spec);
                let mut budget = Budget {
                    dups_left: cfg.max_dups,
                    kills_left: cfg.max_kills,
                    kill_candidates: cfg.kill_candidates.clone(),
                };
                let mut schedule = String::new();
                let mut depth = 0;
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                    world.stabilize();
                    let actions = world.enabled_actions(&budget);
                    if actions.is_empty() {
                        break;
                    }
                    let idx = prefix.get(depth).copied().unwrap_or(0);
                    let idx = idx.min(actions.len() - 1);
                    widths.push(actions.len());
                    taken.push(actions[idx]);
                    enabled_before.push(actions.clone());
                    if !schedule.is_empty() {
                        schedule.push('.');
                    }
                    schedule.push_str(&idx.to_string());
                    world.apply(actions[idx], &mut budget);
                    depth += 1;
                }));
                stats.schedules += 1;
                stats.transitions += depth as u64;
                let verdict = match run {
                    Ok(()) => world.verdict(),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(format!("panic: {msg}"))
                    }
                };
                if let Err(reason) = verdict {
                    return Err(Failure { schedule, reason });
                }
                stats.distinct = stats.schedules;
                // Backtrack: find the deepest step with an untried choice.
                let frontier_widths = widths;
                prefix.truncate(depth);
                while prefix.len() < depth {
                    prefix.push(0);
                }
                loop {
                    match prefix.pop() {
                        None => {
                            stats.complete = true;
                            return Ok(stats);
                        }
                        Some(last) => {
                            let d = prefix.len();
                            let width = frontier_widths.get(d).copied().unwrap_or(0);
                            let mut next = last + 1;
                            // DPOR-style pruning: if the next candidate at
                            // depth d is a delivery commuting with the one
                            // taken at depth d-1 (different destination
                            // ranks, both enabled before step d-1), only
                            // the canonical order (lower index first at
                            // d-1) needs exploring.
                            while next < width {
                                let prev = d.checked_sub(1).and_then(|p| taken.get(p).copied());
                                let cand = enabled_before.get(d).and_then(|a| a.get(next).copied());
                                let skip = match (prev, cand) {
                                    (
                                        Some(p @ Action::Deliver { .. }),
                                        Some(c @ Action::Deliver { .. }),
                                    ) => {
                                        // Commutes if disjoint engines and
                                        // `c` was already enabled before
                                        // `p` ran (same Action value in
                                        // the pre-state of step d-1).
                                        p.touched() != c.touched()
                                            && enabled_before
                                                .get(d - 1)
                                                .is_some_and(|pre| pre.contains(&c))
                                            && pre_index(&enabled_before[d - 1], &c)
                                                < pre_index(&enabled_before[d - 1], &p)
                                    }
                                    _ => false,
                                };
                                if skip {
                                    stats.pruned += 1;
                                    next += 1;
                                } else {
                                    break;
                                }
                            }
                            if next < width {
                                prefix.push(next);
                                break;
                            }
                            // Exhausted this depth; pop further.
                        }
                    }
                }
            }
        }
    }
}

fn pre_index(actions: &[Action], a: &Action) -> usize {
    actions.iter().position(|x| x == a).unwrap_or(usize::MAX)
}

// -------------------------------------------------------------- seeding

/// Serialize access to the process-global fault flags (and the panic
/// hook) across `cargo test` threads.
pub fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Count how many schedules a quiet panic-hook window has suppressed —
/// exploration *expects* panics when a seeded fault is armed, and the
/// default hook would spam stderr for each one.
static HOOK_DEPTH: AtomicU32 = AtomicU32::new(0);

/// Run `f` with panic output suppressed (the explorer catches and
/// reports panics itself). Restores the previous hook after.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    // ORDERING: SeqCst — test harness bookkeeping, not a hot path.
    if HOOK_DEPTH.fetch_add(1, Ordering::SeqCst) == 0 {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        HOOK_DEPTH.fetch_sub(1, Ordering::SeqCst);
        return out;
    }
    let out = f();
    // ORDERING: SeqCst — test-harness bookkeeping, matches the fetch_add.
    HOOK_DEPTH.fetch_sub(1, Ordering::SeqCst);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random(iters: u64) -> Config {
        Config {
            strategy: Strategy::Random {
                seed: crate::DEFAULT_SEED,
                iters,
            },
            ..Config::default()
        }
    }

    #[test]
    fn eager_ring_random_walk_is_clean() {
        let spec = WorldSpec::ring(3, 4096, 32);
        let stats = explore(&spec, &random(150)).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(stats.schedules, 150);
        assert!(
            stats.distinct > 1,
            "a 3-rank ring must have >1 interleaving"
        );
    }

    #[test]
    fn rendezvous_ring_random_walk_is_clean() {
        // 300-byte payloads over a 64-byte eager limit: every exchange is a
        // full RTS → CTS → DATA handshake.
        let spec = WorldSpec::ring(2, 64, 300);
        explore(&spec, &random(150)).unwrap_or_else(|f| panic!("{f}"));
    }

    #[test]
    fn dfs_exhausts_two_rank_eager_exchange() {
        let spec = WorldSpec::ring(2, 4096, 16);
        let cfg = Config {
            strategy: Strategy::Dfs {
                max_schedules: 10_000,
            },
            ..Config::default()
        };
        let stats = explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            stats.complete,
            "two eager messages must be exhaustible ({} schedules explored)",
            stats.schedules
        );
    }

    #[test]
    fn dfs_prunes_commuting_deliveries_on_three_rank_ring() {
        // Three eager frames on three disjoint links: most orderings
        // commute, so DPOR must visibly cut the 3! space.
        let spec = WorldSpec::ring(3, 4096, 16);
        let cfg = Config {
            strategy: Strategy::Dfs {
                max_schedules: 50_000,
            },
            ..Config::default()
        };
        let stats = explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.complete, "3-rank eager ring not exhausted");
        assert!(
            stats.pruned > 0,
            "deliveries to different ranks commute — DPOR must prune something \
             ({} schedules, {} pruned)",
            stats.schedules,
            stats.pruned
        );
    }

    #[test]
    fn dfs_exhausts_two_rank_rendezvous() {
        let spec = WorldSpec::ring(2, 64, 300);
        let cfg = Config {
            strategy: Strategy::Dfs {
                max_schedules: 200_000,
            },
            ..Config::default()
        };
        let stats = explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            stats.complete,
            "bounded rendezvous space not exhausted in {} schedules",
            stats.schedules
        );
    }

    #[test]
    fn all_collectives_random_walks_are_clean() {
        for n in 2..=4 {
            let colls = [
                CollOp::Barrier,
                CollOp::Bcast { root: 0, len: 300 },
                CollOp::Bcast {
                    root: n - 1,
                    len: 300,
                },
                CollOp::Reduce { root: 0, lanes: 24 },
                CollOp::Allreduce { lanes: 24 },
                CollOp::Allgather { block: 300 },
                CollOp::Alltoall { block: 300 },
            ];
            for coll in colls {
                let spec = WorldSpec::collective(n, 64, coll);
                explore(&spec, &random(40)).unwrap_or_else(|f| panic!("{n}-rank {coll:?}: {f}"));
            }
        }
    }

    #[test]
    fn duplicate_frames_are_counted_exactly() {
        // The per-schedule verdict enforces protocol_errors == dups
        // injected; a random walk with a dup budget exercises it widely.
        let spec = WorldSpec::ring(2, 64, 300);
        let cfg = Config {
            max_dups: 2,
            ..random(250)
        };
        explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
    }

    #[test]
    fn kills_surface_peer_lost_and_never_hang() {
        let spec = WorldSpec::ring(3, 64, 300);
        let cfg = Config {
            max_kills: 1,
            kill_candidates: vec![1],
            ..random(250)
        };
        explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
    }

    #[test]
    fn killed_collective_participant_surfaces_peer_lost() {
        let spec = WorldSpec::collective(3, 64, CollOp::Allreduce { lanes: 24 });
        let cfg = Config {
            max_kills: 1,
            kill_candidates: vec![2],
            ..random(250)
        };
        explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
    }

    #[test]
    fn replay_is_deterministic() {
        let spec = WorldSpec::collective(3, 64, CollOp::Allreduce { lanes: 24 });
        // The empty schedule replays the first-choice walk; two runs must
        // take exactly the same number of transitions.
        let cfg = Config {
            strategy: Strategy::Replay(String::new()),
            ..Config::default()
        };
        let a = explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
        let b = explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(a.transitions, b.transitions);
        assert!(a.transitions > 0);
    }

    /// The acceptance sweep: a 3-rank rendezvous allreduce explored under
    /// the pinned default seed. The CI proto-model lane raises
    /// `OFFLOAD_MODEL_ITERS` / `OFFLOAD_PROTO_MIN_DISTINCT` to prove >=10k
    /// distinct frame interleavings; the default keeps `cargo test` quick.
    #[test]
    fn allreduce_three_rank_distinct_interleavings() {
        let iters = env_u64("OFFLOAD_MODEL_ITERS").unwrap_or(600);
        let min_distinct = env_u64("OFFLOAD_PROTO_MIN_DISTINCT").unwrap_or(iters / 2);
        let spec = WorldSpec::collective(3, 64, CollOp::Allreduce { lanes: 24 });
        let cfg = Config {
            strategy: Strategy::Random {
                seed: crate::DEFAULT_SEED,
                iters,
            },
            // Duplication is part of the explored space (and of the
            // interleaving count): it multiplies the branching of the
            // otherwise fairly sequential binomial p=3 schedule.
            max_dups: 4,
            ..Config::default()
        }
        .from_env();
        let stats = explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            stats.distinct >= min_distinct,
            "only {} distinct interleavings in {} schedules (need >= {})",
            stats.distinct,
            stats.schedules,
            min_distinct
        );
    }

    // ------------------------------------------------- seeded-bug regressions
    //
    // Two historical bugs are reintroducible behind `model-faults` runtime
    // flags; the explorer must rediscover both within a bounded budget and
    // hand back a schedule string that replays the failure exactly.

    struct Disarm(fn(bool) -> bool, bool);
    impl Drop for Disarm {
        fn drop(&mut self) {
            (self.0)(self.1);
        }
    }

    #[test]
    fn explorer_finds_seeded_stray_cts_panic() {
        let _guard = fault_lock();
        let prev = wire::faults::set_stray_cts_panic(true);
        let _disarm = Disarm(wire::faults::set_stray_cts_panic, prev);
        // A duplicated CTS is exactly a stray CTS at the sender; with the
        // historical panic reinstated the explorer must trip it.
        let spec = WorldSpec::ring(2, 64, 300);
        let cfg = Config {
            max_dups: 1,
            ..random(400)
        };
        let failure = with_quiet_panics(|| explore(&spec, &cfg))
            .expect_err("seeded stray-CTS panic not rediscovered within 400 schedules");
        assert!(
            failure.reason.contains("panic"),
            "wrong failure kind: {failure}"
        );
        assert!(!failure.schedule.is_empty());
        // The schedule string must replay to the same failure.
        let replay = Config {
            strategy: Strategy::Replay(failure.schedule.clone()),
            max_dups: 1,
            ..Config::default()
        };
        let again = with_quiet_panics(|| explore(&spec, &replay))
            .expect_err("failing schedule did not replay");
        assert!(again.reason.contains("panic"), "replay diverged: {again}");
    }

    #[test]
    fn seeded_stray_cts_fixed_tree_is_clean() {
        let _guard = fault_lock();
        // Flag off (the fixed tree): the identical exploration passes.
        let spec = WorldSpec::ring(2, 64, 300);
        let cfg = Config {
            max_dups: 1,
            ..random(400)
        };
        explore(&spec, &cfg).unwrap_or_else(|f| panic!("{f}"));
    }

    /// A wildcard receive racing a barrier: historically the wildcard could
    /// steal the reserved-tag barrier token off the unexpected queue.
    fn wildcard_vs_barrier_world() -> WorldSpec {
        WorldSpec {
            n: 2,
            eager_max: 4096,
            scripts: vec![
                RankScript {
                    recvs: vec![RecvOp {
                        src: None,
                        tag: None,
                        expect_from: Some(1),
                        expect_len: 5,
                    }],
                    coll: Some(CollOp::Barrier),
                    ..RankScript::default()
                },
                RankScript {
                    sends: vec![SendOp {
                        dst: 0,
                        tag: 5,
                        len: 5,
                    }],
                    coll: Some(CollOp::Barrier),
                    ..RankScript::default()
                },
            ],
        }
    }

    #[test]
    fn explorer_finds_seeded_wildcard_reserved_tag_leak() {
        let _guard = fault_lock();
        let prev = rtmpi::faults::set_wildcard_reserved_leak(true);
        let _disarm = Disarm(rtmpi::faults::set_wildcard_reserved_leak, prev);
        let spec = wildcard_vs_barrier_world();
        let failure = explore(&spec, &random(400))
            .expect_err("seeded wildcard leak not rediscovered within 400 schedules");
        assert!(
            failure.reason.contains("mis-matched") || failure.reason.contains("hang"),
            "wrong failure kind: {failure}"
        );
        let replay = Config {
            strategy: Strategy::Replay(failure.schedule.clone()),
            ..Config::default()
        };
        let again = explore(&spec, &replay).expect_err("failing schedule did not replay");
        assert_eq!(again.schedule, failure.schedule);
    }

    #[test]
    fn seeded_wildcard_leak_fixed_tree_is_clean() {
        let _guard = fault_lock();
        let spec = wildcard_vs_barrier_world();
        explore(&spec, &random(400)).unwrap_or_else(|f| panic!("{f}"));
    }
}
