//! Schedule choice strategies.
//!
//! A [`Picker`] is consulted at every schedule point that has more than one
//! candidate. Three implementations:
//!
//! * [`DfsPicker`] — depth-first enumeration of choice sequences under the
//!   preemption bound, with a cross-run *stale-path memo*: every decision is
//!   tagged with a full-state hash, and a `(state, choice)` pair that was
//!   already explored from another prefix is skipped (confluent paths reach
//!   identical states, so their subtrees are identical too).
//! * [`RandomPicker`] — a seeded xorshift walk for state spaces DFS cannot
//!   exhaust; every failure prints the seed that reproduces it.
//! * [`ReplayPicker`] — plays back a printed schedule string exactly, then
//!   continues with choice 0 ("keep running the current thread").

use std::collections::HashSet;

pub(crate) struct PickCtx<'a> {
    pub candidates: &'a [usize],
    /// Position-dependent state hash (see `exec::memo_hash`).
    pub memo_hash: u64,
}

pub(crate) enum PickResult {
    /// Index into `candidates`.
    Choose(usize),
    /// Every choice from this state is already explored — abandon the run.
    Prune,
}

pub(crate) trait Picker: Send {
    fn pick(&mut self, ctx: &PickCtx) -> PickResult;
    /// Hand the run's record back to the explorer (DFS: decisions + memo).
    fn finish(self: Box<Self>) -> Record;
}

/// What a run leaves behind for backtracking.
#[derive(Default)]
pub(crate) struct Record {
    pub decisions: Vec<Decision>,
    pub memo: HashSet<(u64, usize)>,
}

/// Placeholder swapped into the execution while the real picker's record
/// is extracted.
pub(crate) struct NullPicker;

impl Picker for NullPicker {
    fn pick(&mut self, _ctx: &PickCtx) -> PickResult {
        PickResult::Choose(0)
    }
    fn finish(self: Box<Self>) -> Record {
        Record::default()
    }
}

/// One recorded decision of a DFS run.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    pub n_candidates: usize,
    pub chosen: usize,
    pub memo_hash: u64,
}

pub(crate) struct DfsPicker {
    /// Choices to replay from the previous backtrack.
    prefix: Vec<usize>,
    pos: usize,
    pub decisions: Vec<Decision>,
    /// Shared across runs by move-in/move-out: explored (state, choice).
    pub memo: HashSet<(u64, usize)>,
    /// When false, the memo only records (pruning disabled).
    pub prune: bool,
}

impl DfsPicker {
    pub fn new(prefix: Vec<usize>, memo: HashSet<(u64, usize)>, prune: bool) -> Self {
        Self {
            prefix,
            pos: 0,
            decisions: Vec::new(),
            memo,
            prune,
        }
    }
}

impl Picker for DfsPicker {
    fn pick(&mut self, ctx: &PickCtx) -> PickResult {
        let n = ctx.candidates.len();
        let chosen = if self.pos < self.prefix.len() {
            self.prefix[self.pos].min(n - 1)
        } else if self.prune {
            // First unexplored choice from this state, if any.
            match (0..n).find(|&c| !self.memo.contains(&(ctx.memo_hash, c))) {
                Some(c) => c,
                None => return PickResult::Prune,
            }
        } else {
            0
        };
        self.pos += 1;
        self.memo.insert((ctx.memo_hash, chosen));
        self.decisions.push(Decision {
            n_candidates: n,
            chosen,
            memo_hash: ctx.memo_hash,
        });
        PickResult::Choose(chosen)
    }

    fn finish(self: Box<Self>) -> Record {
        Record {
            decisions: self.decisions,
            memo: self.memo,
        }
    }
}

/// SplitMix64 — tiny, seedable, good enough for schedule sampling.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub(crate) struct RandomPicker {
    rng: SplitMix64,
}

impl RandomPicker {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64(seed),
        }
    }
}

impl Picker for RandomPicker {
    fn pick(&mut self, ctx: &PickCtx) -> PickResult {
        PickResult::Choose((self.rng.next() % ctx.candidates.len() as u64) as usize)
    }
    fn finish(self: Box<Self>) -> Record {
        Record::default()
    }
}

pub(crate) struct ReplayPicker {
    schedule: Vec<usize>,
    pos: usize,
}

impl ReplayPicker {
    pub fn new(schedule: Vec<usize>) -> Self {
        Self { schedule, pos: 0 }
    }
}

impl Picker for ReplayPicker {
    fn pick(&mut self, ctx: &PickCtx) -> PickResult {
        let c = self
            .schedule
            .get(self.pos)
            .copied()
            .unwrap_or(0)
            .min(ctx.candidates.len() - 1);
        self.pos += 1;
        PickResult::Choose(c)
    }
    fn finish(self: Box<Self>) -> Record {
        Record::default()
    }
}
