//! The instrumented model runtime — compiled only under
//! `--cfg offload_model`; the plain build's facade routes straight to std.

pub(crate) mod exec;
pub(crate) mod explore;
pub(crate) mod picker;
