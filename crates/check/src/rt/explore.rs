//! The exploration driver: runs the model closure repeatedly under DFS,
//! random-walk, or exact-replay schedules and aggregates the result.

use std::collections::HashSet;
use std::sync::Arc;

use super::exec::{ExecShared, ModelAbort, Outcome, RunCfg};
use super::picker::{DfsPicker, NullPicker, Picker, RandomPicker, Record, ReplayPicker};
use crate::{Config, Failure, Stats, Strategy};

/// Install (once) a panic hook that silences the `ModelAbort` unwinds used
/// to tear down aborted runs — they are control flow, not failures.
fn install_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

fn run_cfg(cfg: &Config) -> RunCfg {
    RunCfg {
        max_ops: cfg.max_ops,
        max_threads: cfg.max_threads,
        preemption_bound: cfg.preemption_bound,
        cycle_limit: cfg.cycle_limit,
        capture_stacks: cfg.capture_stacks,
    }
}

/// One execution under `picker`. Returns the outcome, the failure (if
/// any), the choice trace, and the picker's record.
fn run_once(
    picker: Box<dyn Picker>,
    cfg: &Config,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Outcome, Option<Failure>, Vec<usize>, Record) {
    let exec = ExecShared::new(picker, run_cfg(cfg));
    let body = Arc::clone(f);
    exec.spawn_model("main".into(), Box::new(move || body()));
    let (outcome, failure, trace) = exec.wait_done();
    let picker = {
        let mut g = exec.inner.lock().unwrap();
        std::mem::replace(&mut g.picker, Box::new(NullPicker))
    };
    (outcome, failure, trace, picker.finish())
}

pub(crate) fn explore_impl(cfg: &Config, f: Arc<dyn Fn() + Send + Sync>) -> Result<Stats, Failure> {
    install_hook();
    match &cfg.strategy {
        Strategy::Replay(schedule) => {
            let picker = Box::new(ReplayPicker::new(schedule.clone()));
            let (_, failure, _, _) = run_once(picker, cfg, &f);
            match failure {
                Some(fail) => Err(fail),
                None => Ok(Stats {
                    schedules: 1,
                    pruned: 0,
                    exhausted: false,
                }),
            }
        }
        Strategy::Random { seed, iters } => {
            let mut pruned = 0;
            for i in 0..*iters {
                let run_seed = seed.wrapping_add(i);
                let picker = Box::new(RandomPicker::new(run_seed));
                let (outcome, failure, _, _) = run_once(picker, cfg, &f);
                if let Some(mut fail) = failure {
                    fail.seed = Some(run_seed);
                    return Err(fail);
                }
                if outcome == Outcome::Pruned {
                    pruned += 1;
                }
            }
            Ok(Stats {
                schedules: *iters,
                pruned,
                exhausted: false,
            })
        }
        Strategy::Dfs => {
            let mut prefix: Vec<usize> = Vec::new();
            let mut memo: HashSet<(u64, usize)> = HashSet::new();
            let mut schedules = 0u64;
            let mut pruned = 0u64;
            loop {
                let picker = Box::new(DfsPicker::new(
                    std::mem::take(&mut prefix),
                    std::mem::take(&mut memo),
                    cfg.prune,
                ));
                let (outcome, failure, _, record) = run_once(picker, cfg, &f);
                schedules += 1;
                if let Some(fail) = failure {
                    return Err(fail);
                }
                if outcome == Outcome::Pruned {
                    pruned += 1;
                }
                memo = record.memo;
                if schedules >= cfg.max_schedules {
                    return Ok(Stats {
                        schedules,
                        pruned,
                        exhausted: false,
                    });
                }
                // Backtrack: deepest decision with an unexplored sibling.
                let decisions = record.decisions;
                let mut next: Option<Vec<usize>> = None;
                for d in (0..decisions.len()).rev() {
                    let dec = &decisions[d];
                    for c in dec.chosen + 1..dec.n_candidates {
                        if cfg.prune && memo.contains(&(dec.memo_hash, c)) {
                            continue;
                        }
                        let mut p: Vec<usize> = decisions[..d].iter().map(|x| x.chosen).collect();
                        p.push(c);
                        next = Some(p);
                        break;
                    }
                    if next.is_some() {
                        break;
                    }
                }
                match next {
                    Some(p) => prefix = p,
                    None => {
                        return Ok(Stats {
                            schedules,
                            pruned,
                            exhausted: true,
                        })
                    }
                }
            }
        }
    }
}
