//! One model execution: cooperative threads, schedule points, and the
//! happens-before / race bookkeeping.
//!
//! Model "threads" are real OS threads, but exactly one ever runs: every
//! facade operation is a *schedule point* that takes the execution lock,
//! hands the baton to whichever thread the [`Picker`] chooses, and performs
//! its shared-memory effect under that same lock. The interleaving is
//! therefore sequentially consistent and fully determined by the choice
//! sequence — which is what makes failing schedules replayable from a
//! printed string.
//!
//! Synchronization semantics modelled (see DESIGN.md §11 for what is *not*):
//! * `Release` stores publish the writer's vector clock on the atomic;
//!   `Acquire` loads join it. `Relaxed` stores break the release chain
//!   (publish no clock); `Relaxed` RMWs continue it, matching C++ release
//!   sequences.
//! * Mutex unlock/lock transfer clocks the same way; `Condvar` wakeups do
//!   not (the mutex is the carrier, as in POSIX).
//! * `UnsafeCell` data accesses are checked FastTrack-style against the
//!   location's last-write epoch and read set; an unordered conflicting
//!   pair is a [`FailureKind::DataRace`].
//! * A state with no runnable thread wakes a timed condvar waiter if one
//!   exists (the timeout backstop); otherwise it is a
//!   [`FailureKind::Deadlock`] — which is how lost wakeups surface.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use super::picker::{PickCtx, PickResult, Picker};
use crate::clock::{ReadSet, VectorClock};
use crate::{Failure, FailureKind};

/// Global execution-id counter: statics holding facade atomics survive
/// across executions, so their per-execution registration is keyed on this.
static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(1);

/// Panic payload used to unwind model threads when a run is torn down.
/// Swallowed by the thread wrapper; never reported as a test failure.
pub(crate) struct ModelAbort;

/// `wait_timeout` durations at or above this are modelled as *untimed*
/// waits — the knob model tests use to "disable the 1 ms backstop"
/// (`WaitPolicy { park_timeout: Duration::MAX, .. }`).
pub(crate) const UNTIMED_THRESHOLD: std::time::Duration = std::time::Duration::from_secs(3600);

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum BlockOn {
    Mutex(usize),
    Condvar { cv: usize, timed: bool },
    Join(usize),
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

pub(crate) struct ThreadState {
    pub name: String,
    pub status: Status,
    pub clock: VectorClock,
    pub op_count: u64,
    /// Human description of the last schedule point (for deadlock reports).
    pub last_op: String,
    /// Set when a timed condvar wait was released by its timeout.
    pub timed_out: bool,
}

pub(crate) struct VarState {
    /// Mirrored value (also written through to the real std atomic by the
    /// facade, so fallback paths and cross-execution statics stay coherent).
    pub value: u64,
    /// Clock published by the head of the current release sequence; empty
    /// when the latest store was `Relaxed` (no synchronization to acquire).
    pub sync_clock: VectorClock,
}

pub(crate) struct CellState {
    pub write: Option<(usize, u32)>, // (tid, component) — last-write epoch
    pub write_stack: Option<std::backtrace::Backtrace>,
    pub write_op: String,
    pub reads: ReadSet,
    pub read_stacks: HashMap<usize, std::backtrace::Backtrace>,
}

pub(crate) struct MutexState {
    pub held_by: Option<usize>,
    pub clock: VectorClock,
}

#[derive(Default)]
pub(crate) struct CvState {
    /// FIFO waiter list: (tid, timed).
    pub waiters: Vec<(usize, bool)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    Completed,
    /// Cut short by the state-hash pruner (cycle or fully-explored state).
    Pruned,
    Failed,
}

pub(crate) struct RunCfg {
    pub max_ops: u64,
    pub max_threads: usize,
    pub preemption_bound: u32,
    pub cycle_limit: u32,
    pub capture_stacks: bool,
}

pub(crate) struct ExecInner {
    pub id: u64,
    pub cfg: RunCfg,
    pub picker: Box<dyn Picker>,
    pub threads: Vec<ThreadState>,
    pub cur: usize,
    pub live: usize,
    pub done: bool,
    pub abort: bool,
    pub outcome: Outcome,
    pub failure: Option<Failure>,
    pub ops: u64,
    pub preemptions: u32,
    pub vars: Vec<VarState>,
    pub cells: Vec<CellState>,
    pub mutexes: Vec<MutexState>,
    pub cvs: Vec<CvState>,
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Choice indices taken this run (the replayable schedule).
    pub trace: Vec<usize>,
    /// In-run cycle detector: position-independent state hash → hit count.
    cycle_seen: HashMap<u64, u32>,
}

pub(crate) struct ExecShared {
    pub inner: Mutex<ExecInner>,
    pub cv: Condvar,
}

// ---------------------------------------------------------------------------
// Thread-local: which execution (if any) the current OS thread belongs to.
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<ExecShared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The current model-thread context, or `None` on a plain OS thread (the
/// facade then falls through to std behavior).
pub(crate) fn current() -> Option<(Arc<ExecShared>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn panic_abort() -> ! {
    std::panic::panic_any(ModelAbort)
}

/// Facade entry check: the model context, unless this thread is already
/// unwinding. Facade calls from `Drop` impls during a `ModelAbort` unwind
/// must take the std fallback — a nested panic would abort the process.
pub(crate) fn ctx() -> Option<(Arc<ExecShared>, usize)> {
    if std::thread::panicking() {
        None
    } else {
        current()
    }
}

impl ExecShared {
    pub(crate) fn new(picker: Box<dyn Picker>, cfg: RunCfg) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(ExecInner {
                // ORDERING: Relaxed — unique-ID tick, nothing published.
                id: NEXT_EXEC_ID.fetch_add(1, StdOrdering::Relaxed),
                cfg,
                picker,
                threads: Vec::new(),
                cur: 0,
                live: 0,
                done: false,
                abort: false,
                outcome: Outcome::Completed,
                failure: None,
                ops: 0,
                preemptions: 0,
                vars: Vec::new(),
                cells: Vec::new(),
                mutexes: Vec::new(),
                cvs: Vec::new(),
                os_handles: Vec::new(),
                trace: Vec::new(),
                cycle_seen: HashMap::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Spawn a model thread running `f`. The thread starts Runnable but
    /// does not execute until scheduled.
    pub(crate) fn spawn_model(
        self: &Arc<Self>,
        name: String,
        f: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let mut g = self.inner.lock().unwrap();
        if g.abort {
            drop(g);
            panic_abort();
        }
        let parent = current().map(|(_, tid)| tid);
        let tid = g.threads.len();
        if tid >= g.cfg.max_threads {
            let details = format!("model thread limit ({}) exceeded", g.cfg.max_threads);
            self.fail_locked(&mut g, FailureKind::Panic, details);
            drop(g);
            panic_abort();
        }
        // Spawn happens-before everything in the child: the child inherits
        // the parent's clock *before* the parent ticks — publish, then
        // advance, so the parent's post-spawn events are not covered by
        // what the child holds. The child then ticks its own component so
        // its epochs start at 1 (epoch 0 is "before anything", which every
        // clock trivially covers).
        let mut clock = if let Some(p) = parent {
            let c = g.threads[p].clock.clone();
            g.threads[p].clock.tick(p);
            c
        } else {
            VectorClock::new()
        };
        clock.tick(tid);
        g.threads.push(ThreadState {
            name,
            status: Status::Runnable,
            clock,
            op_count: 0,
            last_op: "spawned".into(),
            timed_out: false,
        });
        g.live += 1;
        let exec = Arc::clone(self);
        let os = std::thread::Builder::new()
            .name(format!("model-{tid}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                // The initial wait must sit inside catch_unwind too: an
                // abort before first scheduling unwinds from here, and
                // thread_finished must still run or wait_done hangs.
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    {
                        let g = exec.inner.lock().unwrap();
                        let g = exec.wait_my_turn(g, tid);
                        drop(g);
                    }
                    f()
                }));
                CURRENT.with(|c| *c.borrow_mut() = None);
                exec.thread_finished(tid, result.err());
            })
            .expect("spawn model OS thread");
        g.os_handles.push(os);
        drop(g);
        tid
    }

    fn wait_my_turn<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecInner>,
        tid: usize,
    ) -> MutexGuard<'a, ExecInner> {
        loop {
            if g.abort {
                drop(g);
                panic_abort();
            }
            if g.cur == tid && g.threads[tid].status == Status::Runnable {
                return g;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// A schedule point: record the op, maybe hand the baton elsewhere, and
    /// return the guard under which the caller performs the op's effect.
    /// `voluntary` marks yield-like points where switching away costs no
    /// preemption from the bound.
    pub(crate) fn schedule_point<'a>(
        &'a self,
        tid: usize,
        op: impl FnOnce() -> String,
        voluntary: bool,
    ) -> MutexGuard<'a, ExecInner> {
        let mut g = self.inner.lock().unwrap();
        if g.abort {
            drop(g);
            panic_abort();
        }
        debug_assert_eq!(g.cur, tid, "only the scheduled thread runs");
        g.threads[tid].last_op = op();
        g.threads[tid].op_count += 1;
        g.ops += 1;
        if g.ops > g.cfg.max_ops {
            let details = format!(
                "execution exceeded {} schedule points without terminating \
                 (livelock, or raise OFFLOAD_MODEL_MAX_OPS)",
                g.cfg.max_ops
            );
            self.fail_locked(&mut g, FailureKind::OpBudget, details);
            drop(g);
            panic_abort();
        }
        // In-run cycle pruning: a shared-memory state (values + statuses,
        // position-independent) repeating many times means this branch is
        // spinning without progress under an unfair schedule — cut it.
        let cycle_hash = cycle_hash(&g);
        let hits = g.cycle_seen.entry(cycle_hash).or_insert(0);
        *hits += 1;
        if *hits > g.cfg.cycle_limit {
            g.outcome = Outcome::Pruned;
            self.abort_locked(&mut g);
            drop(g);
            panic_abort();
        }
        self.pick_next(&mut g, Some(tid), voluntary);
        if g.abort {
            drop(g);
            panic_abort();
        }
        if g.cur != tid {
            self.cv.notify_all();
            g = self.wait_my_turn(g, tid);
        }
        g
    }

    /// Block the current thread on `on` and hand the baton elsewhere.
    /// Returns once this thread is scheduled again.
    pub(crate) fn block_current<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecInner>,
        tid: usize,
        on: BlockOn,
    ) -> MutexGuard<'a, ExecInner> {
        g.threads[tid].status = Status::Blocked(on);
        self.pick_next(&mut g, None, true);
        if g.abort {
            drop(g);
            panic_abort();
        }
        self.cv.notify_all();
        self.wait_my_turn(g, tid)
    }

    /// Choose who runs next. `running` is the thread at a schedule point
    /// (still runnable), `None` when the previous thread blocked/finished.
    fn pick_next(&self, g: &mut ExecInner, running: Option<usize>, voluntary: bool) {
        // Candidate order: current-first, then by tid — so choice 0 is
        // "keep going", and DFS perturbs from the natural execution.
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(r) = running {
            candidates.push(r);
        }
        for (t, th) in g.threads.iter().enumerate() {
            if th.status == Status::Runnable && Some(t) != running {
                candidates.push(t);
            }
        }
        if candidates.is_empty() {
            // Nobody can run. Fire a timeout backstop if one is armed,
            // otherwise this is a deadlock (e.g. a lost wakeup).
            let timed: Vec<usize> = g
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, th)| match th.status {
                    Status::Blocked(BlockOn::Condvar { timed: true, .. }) => Some(t),
                    _ => None,
                })
                .collect();
            if timed.is_empty() {
                if g.live == 0 {
                    g.done = true;
                    return;
                }
                let details = self.deadlock_report(g);
                self.fail_locked(g, FailureKind::Deadlock, details);
                return;
            }
            let chosen = self.decide(g, &timed, true);
            let Some(chosen) = chosen else { return };
            // The timeout fires: leave the condvar waiter list and resume
            // (the thread re-acquires its mutex when it runs).
            if let Status::Blocked(BlockOn::Condvar { cv, .. }) = g.threads[chosen].status.clone() {
                g.cvs[cv].waiters.retain(|&(t, _)| t != chosen);
            }
            g.threads[chosen].status = Status::Runnable;
            g.threads[chosen].timed_out = true;
            g.cur = chosen;
            return;
        }
        // Enforce the preemption bound: switching away from a thread that
        // could keep running is a preemption, unless it volunteered.
        let constrained = if running.is_some()
            && !voluntary
            && g.preemptions >= g.cfg.preemption_bound
            && candidates.len() > 1
        {
            &candidates[..1]
        } else {
            &candidates[..]
        };
        let chosen = self.decide(g, constrained, false);
        let Some(chosen) = chosen else { return };
        if Some(chosen) != running && running.is_some() && !voluntary {
            g.preemptions += 1;
        }
        g.cur = chosen;
    }

    /// Ask the picker; handles pruning. Returns the chosen tid.
    fn decide(&self, g: &mut ExecInner, candidates: &[usize], timeout_fire: bool) -> Option<usize> {
        if candidates.len() == 1 {
            // No decision to make; don't burden the schedule string.
            return Some(candidates[0]);
        }
        let memo = memo_hash(g, timeout_fire);
        let ctx = PickCtx {
            candidates,
            memo_hash: memo,
        };
        match g.picker.pick(&ctx) {
            PickResult::Choose(i) => {
                g.trace.push(i);
                Some(candidates[i])
            }
            PickResult::Prune => {
                g.outcome = Outcome::Pruned;
                self.abort_locked(g);
                None
            }
        }
    }

    fn deadlock_report(&self, g: &ExecInner) -> String {
        let mut s =
            String::from("all live threads are blocked and no timeout backstop is armed:\n");
        for (t, th) in g.threads.iter().enumerate() {
            if th.status == Status::Finished {
                continue;
            }
            let on = match &th.status {
                Status::Blocked(BlockOn::Mutex(m)) => format!("mutex #{m}"),
                Status::Blocked(BlockOn::Condvar { cv, timed }) => {
                    format!(
                        "condvar #{cv} ({})",
                        if *timed { "timed" } else { "untimed" }
                    )
                }
                Status::Blocked(BlockOn::Join(j)) => format!("join of thread {j}"),
                other => format!("{other:?}"),
            };
            s.push_str(&format!(
                "  thread {t} [{}]: blocked on {on}, last op: {}\n",
                th.name, th.last_op
            ));
        }
        s
    }

    pub(crate) fn fail_locked(&self, g: &mut ExecInner, kind: FailureKind, details: String) {
        if g.failure.is_none() {
            g.failure = Some(Failure {
                kind,
                details,
                schedule: schedule_string(&g.trace),
                seed: None,
            });
            g.outcome = Outcome::Failed;
        }
        self.abort_locked(g);
    }

    fn abort_locked(&self, g: &mut ExecInner) {
        g.abort = true;
        // Release every blocked thread so it can observe the abort flag,
        // unwind via ModelAbort, and exit its OS thread.
        for th in g.threads.iter_mut() {
            if matches!(th.status, Status::Blocked(_)) {
                th.status = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    fn thread_finished(&self, tid: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut g = self.inner.lock().unwrap();
        g.threads[tid].status = Status::Finished;
        g.live -= 1;
        if let Some(payload) = panic {
            if !payload.is::<ModelAbort>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                let detail = format!(
                    "model thread {tid} [{}] panicked: {msg}",
                    g.threads[tid].name
                );
                self.fail_locked(&mut g, FailureKind::Panic, detail);
            }
        }
        if g.live == 0 {
            g.done = true;
            self.cv.notify_all();
            return;
        }
        if !g.abort {
            // Thread finish is a release point; joiners acquire its clock.
            g.threads[tid].clock.tick(tid);
            // Wake any joiners.
            let joiners: Vec<usize> = g
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, th)| {
                    (th.status == Status::Blocked(BlockOn::Join(tid))).then_some(t)
                })
                .collect();
            for j in joiners {
                g.threads[j].status = Status::Runnable;
            }
            if g.cur == tid {
                self.pick_next(&mut g, None, true);
            }
        }
        self.cv.notify_all();
    }

    /// Controller side: wait for the run to finish, then join OS threads.
    pub(crate) fn wait_done(&self) -> (Outcome, Option<Failure>, Vec<usize>) {
        let handles = {
            let mut g = self.inner.lock().unwrap();
            while !g.done {
                g = self.cv.wait(g).unwrap();
            }
            std::mem::take(&mut g.os_handles)
        };
        for h in handles {
            let _ = h.join(); // ModelAbort unwinds are expected
        }
        let mut g = self.inner.lock().unwrap();
        (g.outcome, g.failure.take(), std::mem::take(&mut g.trace))
    }
}

/// Per-object registration slot: maps a facade object (atomic, cell,
/// mutex, condvar — possibly a `static` outliving many executions) to its
/// index in the current execution's registry, keyed by execution id.
pub(crate) struct RegSlot(Mutex<(u64, usize)>);

impl RegSlot {
    pub const fn new() -> Self {
        Self(Mutex::new((0, 0)))
    }

    /// The object's index in this execution, registering via `make` on
    /// first touch. Call with the execution lock held (`g`).
    pub fn index(&self, g: &mut ExecInner, make: impl FnOnce(&mut ExecInner) -> usize) -> usize {
        let mut s = self.0.lock().unwrap();
        if s.0 != g.id {
            s.1 = make(g);
            s.0 = g.id;
        }
        s.1
    }
}

/// Is the release half of `ord` set (store side publishes its clock)?
pub(crate) fn is_release(ord: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ord, Release | AcqRel | SeqCst)
}

/// Is the acquire half of `ord` set (load side joins the var's clock)?
pub(crate) fn is_acquire(ord: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(ord, Acquire | AcqRel | SeqCst)
}

/// Release a model mutex: publish the holder's clock, free it, and wake
/// every thread blocked on acquisition.
pub(crate) fn unlock_model(g: &mut ExecInner, tid: usize, mid: usize) {
    debug_assert_eq!(g.mutexes[mid].held_by, Some(tid), "unlock by non-holder");
    g.mutexes[mid].clock = g.threads[tid].clock.clone();
    g.threads[tid].clock.tick(tid);
    g.mutexes[mid].held_by = None;
    for th in g.threads.iter_mut() {
        if th.status == Status::Blocked(BlockOn::Mutex(mid)) {
            th.status = Status::Runnable;
        }
    }
}

/// Render a choice trace as the printable, replayable schedule string.
pub(crate) fn schedule_string(trace: &[usize]) -> String {
    trace
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Position-independent hash: shared values + thread statuses. Used for
/// in-run cycle (livelock) pruning — identical states mean no progress.
fn cycle_hash(g: &ExecInner) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    g.cur.hash(&mut h);
    for th in &g.threads {
        std::mem::discriminant(&th.status).hash(&mut h);
        if let Status::Blocked(on) = &th.status {
            on.hash(&mut h);
        }
    }
    for v in &g.vars {
        v.value.hash(&mut h);
    }
    for m in &g.mutexes {
        m.held_by.hash(&mut h);
    }
    for c in &g.cvs {
        c.waiters.hash(&mut h);
    }
    h.finish()
}

/// Position-*dependent* hash for the cross-run stale-path pruner: includes
/// op counts and all detector clocks, so two equal hashes mean (modulo
/// collisions) the same continuation — exploring it twice is redundant.
fn memo_hash(g: &ExecInner, timeout_fire: bool) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cycle_hash(g).hash(&mut h);
    timeout_fire.hash(&mut h);
    for th in &g.threads {
        th.op_count.hash(&mut h);
        th.clock.hash(&mut h);
    }
    for v in &g.vars {
        v.sync_clock.hash(&mut h);
    }
    for m in &g.mutexes {
        m.clock.hash(&mut h);
    }
    for c in &g.cells {
        c.write.hash(&mut h);
        c.reads.hash(&mut h);
    }
    h.finish()
}

impl Hash for BlockOn {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            BlockOn::Mutex(m) => (0u8, m).hash(state),
            BlockOn::Condvar { cv, timed } => (1u8, cv, timed).hash(state),
            BlockOn::Join(j) => (2u8, j).hash(state),
        }
    }
}
