//! `check` — the in-tree concurrency model checker for the offload stack.
//!
//! The lock-free core of this repository (MPMC command queue, SPSC lanes,
//! request pool, spin→yield→park waiting) is exactly the kind of code where
//! a bug is a one-in-a-million interleaving. This crate makes those
//! interleavings a test target:
//!
//! * **The facade** ([`sync`], [`cell`], [`thread`], [`hint`]) mirrors the
//!   std API. A normal build compiles it away — re-exports and transparent
//!   wrappers, zero cost. Under `RUSTFLAGS="--cfg offload_model"` every
//!   operation routes through an instrumented runtime.
//! * **The scheduler** runs the model threads cooperatively — exactly one
//!   at a time, switching only at facade operations — and *explores*
//!   interleavings: bounded-preemption DFS with a stale-path pruner
//!   ([`Strategy::Dfs`]), or a seeded random walk ([`Strategy::Random`]).
//!   Any failing schedule is replayable from a printed string
//!   ([`Strategy::Replay`]).
//! * **The detector** tracks FastTrack-style vector clocks ([`clock`])
//!   across the release/acquire edges implied by the facade's ordering
//!   arguments, and flags unsynchronized conflicting data accesses, lost
//!   wakeups (deadlock with no timeout armed), and livelocks.
//!
//! What the model does and does not prove is written up in DESIGN.md §11.
//! In one line: it checks *all modelled interleavings under sequentially
//! consistent semantics of the declared orderings* — weak-memory
//! reorderings beyond the release/acquire clock edges are out of scope
//! (Miri remains the weak-memory lane).
//!
//! # Usage
//!
//! ```ignore
//! check::model(|| {
//!     let q = Arc::new(MpmcQueue::new(2));
//!     let t = check::thread::spawn({ let q = q.clone(); move || q.pop() });
//!     q.push(1).unwrap();
//!     t.join().unwrap();
//! });
//! ```
//!
//! Run with `RUSTFLAGS="--cfg offload_model" cargo test -p check`. On a
//! plain build `model` runs the closure once on real primitives, so the
//! same test doubles as a smoke test.
//!
//! # Environment knobs (model build)
//!
//! * `OFFLOAD_MODEL_SEED` — base seed for [`model_random`] walks.
//! * `OFFLOAD_MODEL_ITERS` — iteration count for [`model_random`] walks.
//! * `OFFLOAD_MODEL_SCHEDULE` — replay exactly one schedule string (use
//!   together with a single-test filter).
//! * `OFFLOAD_MODEL_MAX_OPS` — per-execution schedule-point budget.
//! * `OFFLOAD_MODEL_STACKS=0` — disable stack capture in race reports.

pub mod cell;
pub mod clock;
#[cfg(feature = "proto")]
pub mod proto;
pub mod sync;
pub mod thread;

#[cfg(offload_model)]
mod rt;

pub mod hint {
    //! Facade over `std::hint` — in model builds a spin hint is a
    //! voluntary schedule point, which is what lets the scheduler move a
    //! spinner out of the way (or prove it livelocks).

    #[cfg(not(offload_model))]
    pub use std::hint::spin_loop;

    #[cfg(offload_model)]
    pub fn spin_loop() {
        if let Some((exec, tid)) = crate::rt::exec::ctx() {
            drop(exec.schedule_point(tid, || "hint::spin_loop".into(), true));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Fixed default seed for random-walk exploration — chosen so CI runs are
/// reproducible by default; override with `OFFLOAD_MODEL_SEED`.
pub const DEFAULT_SEED: u64 = 0x5EED_2015;

/// What went wrong in a failing execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Unsynchronized conflicting accesses to a facade cell.
    DataRace,
    /// No thread can run and no timeout backstop is armed — includes lost
    /// wakeups once the backstop is disabled.
    Deadlock,
    /// A model thread panicked (assertion failure inside the test body).
    Panic,
    /// The execution exceeded its schedule-point budget (livelock that the
    /// cycle pruner could not collapse, or a genuinely huge test).
    OpBudget,
}

/// A failing execution, carrying everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub details: String,
    /// Dot-separated choice indices — feed back via
    /// `OFFLOAD_MODEL_SCHEDULE` or [`Strategy::Replay`].
    pub schedule: String,
    /// Set when a random walk found this failure: the exact run seed.
    pub seed: Option<u64>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model checker found a failure: {:?}", self.kind)?;
        writeln!(f, "{}", self.details.trim_end())?;
        writeln!(f, "failing schedule: {}", self.schedule)?;
        if let Some(seed) = self.seed {
            writeln!(f, "found by random walk, seed: {seed}")?;
            writeln!(
                f,
                "replay: OFFLOAD_MODEL_SEED={seed} OFFLOAD_MODEL_ITERS=1 (or \
                 OFFLOAD_MODEL_SCHEDULE=\"{}\") with RUSTFLAGS=\"--cfg offload_model\"",
                self.schedule
            )?;
        } else {
            writeln!(
                f,
                "replay: OFFLOAD_MODEL_SCHEDULE=\"{}\" with RUSTFLAGS=\"--cfg offload_model\" \
                 and a filter selecting this test",
                self.schedule
            )?;
        }
        Ok(())
    }
}

/// How to explore the schedule space.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Exhaustive bounded-preemption DFS with cross-run stale-path pruning.
    Dfs,
    /// Seeded random walk: `iters` executions, run `i` seeded with
    /// `seed.wrapping_add(i)` so a failure names its exact seed.
    Random { seed: u64, iters: u64 },
    /// Replay exactly one schedule (parsed from a printed failure).
    Replay(Vec<usize>),
}

/// Exploration configuration. `Default` is DFS with bounds sized so the
/// in-tree model suite completes in seconds.
#[derive(Debug, Clone)]
pub struct Config {
    pub strategy: Strategy,
    /// CHESS-style preemption bound: max non-voluntary context switches
    /// per execution. Most concurrency bugs need very few preemptions.
    pub preemption_bound: u32,
    /// Per-execution schedule-point budget (livelock backstop).
    pub max_ops: u64,
    /// DFS: stop after this many executions even if not exhausted.
    pub max_schedules: u64,
    pub max_threads: usize,
    /// In-run cycle pruner: abandon a branch after the same shared-memory
    /// state recurs this many times (an unfair schedule spinning in place).
    pub cycle_limit: u32,
    /// Capture backtraces for race reports (slow; on by default).
    pub capture_stacks: bool,
    /// Cross-run stale-path pruning for DFS (on by default).
    pub prune: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            strategy: Strategy::Dfs,
            preemption_bound: 2,
            max_ops: 20_000,
            max_schedules: 20_000,
            max_threads: 8,
            cycle_limit: 256,
            capture_stacks: true,
            prune: true,
        }
    }
}

impl Config {
    pub fn dfs() -> Self {
        Self::default()
    }

    pub fn random(seed: u64, iters: u64) -> Self {
        Self {
            strategy: Strategy::Random { seed, iters },
            ..Self::default()
        }
    }

    /// Parse a printed schedule string ("3.0.1.2") into a replay config.
    pub fn replay(schedule: &str) -> Self {
        let choices = schedule
            .split('.')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("schedule strings are dot-separated indices")
            })
            .collect();
        Self {
            strategy: Strategy::Replay(choices),
            ..Self::default()
        }
    }

    /// Apply the `OFFLOAD_MODEL_*` environment knobs (replay override,
    /// op budget, stack capture).
    pub fn apply_env(&mut self) {
        if let Ok(s) = std::env::var("OFFLOAD_MODEL_SCHEDULE") {
            if !s.is_empty() {
                self.strategy = Config::replay(&s).strategy;
            }
        }
        if let Some(v) = env_u64("OFFLOAD_MODEL_MAX_OPS") {
            self.max_ops = v;
        }
        if std::env::var("OFFLOAD_MODEL_STACKS").as_deref() == Ok("0") {
            self.capture_stacks = false;
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Exploration summary for a passing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Executions performed.
    pub schedules: u64,
    /// Executions abandoned by the pruners (cycle or stale-path).
    pub pruned: u64,
    /// DFS only: the bounded schedule space was fully enumerated.
    pub exhausted: bool,
}

/// Explore `f` under `cfg`. In a plain (non-model) build this runs `f`
/// once on the real primitives and reports one schedule.
pub fn explore(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Result<Stats, Failure> {
    #[cfg(offload_model)]
    {
        rt::explore::explore_impl(&cfg, std::sync::Arc::new(f))
    }
    #[cfg(not(offload_model))]
    {
        let _ = &cfg;
        f();
        Ok(Stats {
            schedules: 1,
            pruned: 0,
            exhausted: false,
        })
    }
}

/// Explore `f` with a custom config, panicking (with the replayable
/// schedule) on failure. Honors the environment knobs.
pub fn model_with(mut cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Stats {
    cfg.apply_env();
    match explore(cfg, f) {
        Ok(stats) => stats,
        Err(failure) => panic!("{failure}"),
    }
}

/// Exhaustively model-check `f` (bounded-preemption DFS) with default
/// bounds. This is the entry point most model tests use.
pub fn model(f: impl Fn() + Send + Sync + 'static) -> Stats {
    model_with(Config::default(), f)
}

/// Random-walk model-check `f` for `iters` seeded executions (overridable
/// via `OFFLOAD_MODEL_ITERS` / `OFFLOAD_MODEL_SEED`). For state spaces too
/// big for DFS.
pub fn model_random(iters: u64, f: impl Fn() + Send + Sync + 'static) -> Stats {
    let seed = env_u64("OFFLOAD_MODEL_SEED").unwrap_or(DEFAULT_SEED);
    let iters = env_u64("OFFLOAD_MODEL_ITERS").unwrap_or(iters);
    model_with(Config::random(seed, iters), f)
}
