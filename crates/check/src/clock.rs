//! Vector clocks for happens-before tracking (FastTrack-style epochs).
//!
//! Every model thread carries a [`VectorClock`]; component `t` counts the
//! release points thread `t` has passed. An *epoch* `(tid, count)` names a
//! single event — the representation FastTrack uses for last-write/last-read
//! summaries. Happens-before between an epoch and a thread is then a single
//! component comparison instead of a full vector scan, which is the whole
//! point of the epoch optimization.

/// A vector clock over model-thread ids. Grows on demand; a missing
/// component reads as zero.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct VectorClock {
    c: Vec<u32>,
}

impl VectorClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for thread `tid`.
    pub fn get(&self, tid: usize) -> u32 {
        self.c.get(tid).copied().unwrap_or(0)
    }

    /// Advance this thread's own component (a release point).
    pub fn tick(&mut self, tid: usize) {
        if self.c.len() <= tid {
            self.c.resize(tid + 1, 0);
        }
        self.c[tid] += 1;
    }

    /// Component-wise maximum: `self ← self ⊔ other` (an acquire edge).
    pub fn join(&mut self, other: &VectorClock) {
        if self.c.len() < other.c.len() {
            self.c.resize(other.c.len(), 0);
        }
        for (s, o) in self.c.iter_mut().zip(other.c.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Does the epoch `(tid, count)` happen-before (or equal) this clock?
    /// This is FastTrack's `epoch ⪯ clock` check: one component read.
    pub fn covers(&self, epoch: Epoch) -> bool {
        epoch.count <= self.get(epoch.tid)
    }

    /// The current epoch of thread `tid` under this clock.
    pub fn epoch(&self, tid: usize) -> Epoch {
        Epoch {
            tid,
            count: self.get(tid),
        }
    }

    pub fn clear(&mut self) {
        self.c.clear();
    }
}

/// One event: "thread `tid` at local time `count`".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Epoch {
    pub tid: usize,
    pub count: u32,
}

/// The read summary of a shared location: FastTrack keeps a single epoch
/// while reads are totally ordered and inflates to a full vector only when
/// concurrent reads appear.
#[derive(Clone, Debug, Default, Hash)]
pub enum ReadSet {
    #[default]
    Empty,
    /// All reads so far are ordered; the last one is enough.
    Epoch(Epoch),
    /// Concurrent readers seen: per-thread last-read counts.
    Vector(VectorClock),
}

impl ReadSet {
    /// Record a read at `epoch` by a thread whose clock is `clock`.
    pub fn record(&mut self, epoch: Epoch, clock: &VectorClock) {
        match self {
            ReadSet::Empty => *self = ReadSet::Epoch(epoch),
            ReadSet::Epoch(prev) => {
                if prev.tid == epoch.tid || clock.covers(*prev) {
                    *self = ReadSet::Epoch(epoch);
                } else {
                    // Two concurrent readers: inflate.
                    let mut v = VectorClock::new();
                    if v.c.len() <= prev.tid.max(epoch.tid) {
                        v.c.resize(prev.tid.max(epoch.tid) + 1, 0);
                    }
                    v.c[prev.tid] = prev.count;
                    v.c[epoch.tid] = epoch.count;
                    *self = ReadSet::Vector(v);
                }
            }
            ReadSet::Vector(v) => {
                if v.c.len() <= epoch.tid {
                    v.c.resize(epoch.tid + 1, 0);
                }
                v.c[epoch.tid] = v.c[epoch.tid].max(epoch.count);
            }
        }
    }

    /// Is every recorded read ordered before `clock`? Returns the first
    /// uncovered read epoch otherwise (the racing access).
    pub fn all_covered_by(&self, clock: &VectorClock) -> Result<(), Epoch> {
        match self {
            ReadSet::Empty => Ok(()),
            ReadSet::Epoch(e) => {
                if clock.covers(*e) {
                    Ok(())
                } else {
                    Err(*e)
                }
            }
            ReadSet::Vector(v) => {
                for (tid, &count) in v.c.iter().enumerate() {
                    if count > 0 && !clock.covers(Epoch { tid, count }) {
                        return Err(Epoch { tid, count });
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_join_order() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.tick(0); // a = [1]
        b.join(&a); // b = [1]
        b.tick(1); // b = [1,1]
        assert!(b.covers(a.epoch(0)));
        assert!(!a.covers(b.epoch(1)));
    }

    #[test]
    fn readset_inflates_on_concurrent_reads() {
        let mut rs = ReadSet::default();
        let mut t0 = VectorClock::new();
        t0.tick(0);
        let mut t1 = VectorClock::new();
        t1.tick(1);
        rs.record(t0.epoch(0), &t0);
        rs.record(t1.epoch(1), &t1); // concurrent with t0's read
        assert!(matches!(rs, ReadSet::Vector(_)));
        // A writer that has seen neither read races with both.
        let fresh = VectorClock::new();
        assert!(rs.all_covered_by(&fresh).is_err());
        // A writer that joined both is ordered after them.
        let mut sync = VectorClock::new();
        sync.join(&t0);
        sync.join(&t1);
        assert!(rs.all_covered_by(&sync).is_ok());
    }
}
