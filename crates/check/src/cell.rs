//! Facade cell for *data* (non-atomic) shared state.
//!
//! [`UnsafeCell`] wraps `std::cell::UnsafeCell` with a closure-based access
//! API (`with` / `with_mut`) so that, under `--cfg offload_model`, every
//! data access is visible to the race detector. Accesses are **not**
//! schedule points — interleaving coverage comes from the atomic/lock
//! operations around them — but each one is checked FastTrack-style against
//! the location's last-write epoch and read set. An unordered conflicting
//! pair fails the execution with both access stacks.

#[cfg(offload_model)]
use crate::clock::ReadSet;
#[cfg(offload_model)]
use crate::rt::exec::{self, CellState};

pub struct UnsafeCell<T: ?Sized> {
    #[cfg(offload_model)]
    slot: exec::RegSlot,
    inner: std::cell::UnsafeCell<T>,
}

// SAFETY: unlike `std::cell::UnsafeCell`, this cell is deliberately
// shareable across threads — that is the situation the race detector
// exists to judge. Soundness is unchanged: `with`/`with_mut` only hand out
// raw pointers, and dereferencing them is the caller's `unsafe` obligation
// (exactly as with `.get()` on the std cell behind a `Sync` wrapper).
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}
// SAFETY: as above — sharing only exposes raw pointers, never references.
unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(offload_model)]
            slot: exec::RegSlot::new(),
            inner: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Read access: runs `f` with a shared raw pointer to the contents.
    /// The caller upholds `std::cell::UnsafeCell`'s aliasing rules exactly
    /// as it would with `.get()`; in model mode the access is additionally
    /// race-checked against concurrent writers.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        #[cfg(offload_model)]
        self.record(false);
        f(self.inner.get())
    }

    /// Write access: runs `f` with an exclusive raw pointer to the
    /// contents. Model mode records it as a write for the race detector.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        #[cfg(offload_model)]
        self.record(true);
        f(self.inner.get())
    }

    /// Exclusive access through `&mut self` — statically race-free, so no
    /// instrumentation is needed even in model mode.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    #[cfg(offload_model)]
    fn record(&self, write: bool) {
        use crate::FailureKind;

        // Facade calls from Drop impls during a ModelAbort unwind must not
        // touch the (aborting) execution.
        if std::thread::panicking() {
            return;
        }
        let Some((shared, tid)) = exec::current() else {
            return;
        };
        let mut g = shared.inner.lock().unwrap();
        if g.abort {
            drop(g);
            exec::panic_abort();
        }
        let idx = self.slot.index(&mut g, |g| {
            g.cells.push(CellState {
                write: None,
                write_stack: None,
                write_op: String::new(),
                reads: ReadSet::Empty,
                read_stacks: std::collections::HashMap::new(),
            });
            g.cells.len() - 1
        });
        let clock = g.threads[tid].clock.clone();
        let epoch = clock.epoch(tid);
        let kind = if write { "write" } else { "read" };

        // Conflict checks: any write conflicts with the last write and all
        // unordered reads; a read conflicts with the last write only.
        let mut conflict: Option<(&'static str, usize)> = None;
        if let Some((wt, wc)) = g.cells[idx].write {
            if wt != tid && clock.get(wt) < wc {
                conflict = Some(("write", wt));
            }
        }
        if write && conflict.is_none() {
            if let Err(e) = g.cells[idx].reads.all_covered_by(&clock) {
                if e.tid != tid {
                    conflict = Some(("read", e.tid));
                }
            }
        }

        if let Some((prev_kind, prev_tid)) = conflict {
            let prev_stack = if prev_kind == "write" {
                g.cells[idx].write_stack.take()
            } else {
                g.cells[idx].read_stacks.remove(&prev_tid)
            };
            let mut details = format!(
                "data race on cell #{idx}: {kind} by thread {tid} [{}] is unordered with \
                 a previous {prev_kind} by thread {prev_tid} [{}]\n  current thread's last \
                 sync op: {}\n  previous writer's op at the time: {}",
                g.threads[tid].name,
                g.threads[prev_tid].name,
                g.threads[tid].last_op,
                g.cells[idx].write_op,
            );
            if g.cfg.capture_stacks {
                let cur = std::backtrace::Backtrace::force_capture();
                details.push_str(&format!("\n--- current {kind} stack ---\n{cur}"));
                match prev_stack {
                    Some(bt) => {
                        details.push_str(&format!("\n--- previous {prev_kind} stack ---\n{bt}"))
                    }
                    None => details.push_str("\n(previous access stack not captured)"),
                }
            } else {
                details.push_str("\n(stacks disabled; set OFFLOAD_MODEL_STACKS=1)");
            }
            shared.fail_locked(&mut g, FailureKind::DataRace, details);
            drop(g);
            exec::panic_abort();
        }

        let capture = g.cfg.capture_stacks;
        if write {
            g.cells[idx].write = Some((tid, epoch.count));
            g.cells[idx].write_stack = capture.then(std::backtrace::Backtrace::force_capture);
            g.cells[idx].write_op = g.threads[tid].last_op.clone();
            g.cells[idx].reads = ReadSet::Empty;
            g.cells[idx].read_stacks.clear();
        } else {
            g.cells[idx].reads.record(epoch, &clock);
            if capture {
                g.cells[idx]
                    .read_stacks
                    .insert(tid, std::backtrace::Backtrace::force_capture());
            }
        }
    }
}
