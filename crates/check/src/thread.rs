//! Facade over `std::thread`. Plain builds re-export std; model builds
//! route `spawn`/`join` through the deterministic scheduler so the spawned
//! closure becomes a model thread with its own vector clock.

#[cfg(not(offload_model))]
pub use std::thread::{sleep, spawn, yield_now, JoinHandle, Result};

/// [`spawn`] with an OS-visible thread name (shows up in debuggers and
/// panic messages). Panics if the OS refuses to spawn, like `spawn` does.
#[cfg(not(offload_model))]
pub fn spawn_named<F, T>(name: String, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("spawn named thread")
}

#[cfg(offload_model)]
pub use model::{sleep, spawn, spawn_named, yield_now, JoinHandle};
#[cfg(offload_model)]
pub use std::thread::Result;

#[cfg(offload_model)]
mod model {
    use std::sync::Arc;
    use std::time::Duration;

    use crate::rt::exec::{ctx, current, panic_abort, BlockOn, ExecShared, Status};

    pub struct JoinHandle<T>(Inner<T>);

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<ExecShared>,
            tid: usize,
            slot: Arc<std::sync::Mutex<Option<T>>>,
        },
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_inner(None, f)
    }

    /// Named spawn: the name reaches the model's thread table (so failure
    /// reports say `offload-0` instead of `spawned-by-3`) or, outside a
    /// model run, the OS thread.
    pub fn spawn_named<F, T>(name: String, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_inner(Some(name), f)
    }

    fn spawn_inner<F, T>(name: Option<String>, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some((exec, tid)) = ctx() {
            // Spawn is itself a schedule point (and a release edge — the
            // child inherits the parent's clock inside spawn_model).
            drop(exec.schedule_point(tid, || "thread::spawn".into(), false));
            let slot = Arc::new(std::sync::Mutex::new(None));
            let into = Arc::clone(&slot);
            let child = exec.spawn_model(
                name.unwrap_or_else(|| format!("spawned-by-{tid}")),
                Box::new(move || {
                    let v = f();
                    *into.lock().unwrap() = Some(v);
                }),
            );
            JoinHandle(Inner::Model {
                exec,
                tid: child,
                slot,
            })
        } else {
            let mut b = std::thread::Builder::new();
            if let Some(name) = name {
                b = b.name(name);
            }
            JoinHandle(Inner::Std(b.spawn(f).expect("spawn named thread")))
        }
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { exec, tid, slot } => {
                    let (_, me) = current().expect("join of a model thread from outside its run");
                    let mut g =
                        exec.schedule_point(me, move || format!("join(thread {tid})"), true);
                    if g.threads[tid].status != Status::Finished {
                        g = exec.block_current(g, me, BlockOn::Join(tid));
                    }
                    // Join is an acquire edge from everything the child did.
                    let c = g.threads[tid].clock.clone();
                    g.threads[me].clock.join(&c);
                    drop(g);
                    match slot.lock().unwrap().take() {
                        Some(v) => Ok(v),
                        // The child never produced a value: it panicked (the
                        // failure is already recorded) or the run is being
                        // torn down — unwind this thread too.
                        None => panic_abort(),
                    }
                }
            }
        }
    }

    /// A voluntary schedule point; outside a model run, the real yield.
    pub fn yield_now() {
        if let Some((exec, tid)) = ctx() {
            drop(exec.schedule_point(tid, || "thread::yield_now".into(), true));
        } else {
            std::thread::yield_now();
        }
    }

    /// Model time is logical: sleeping is modelled as a voluntary yield
    /// (any other thread may run an unbounded amount before we resume).
    pub fn sleep(dur: Duration) {
        if let Some((exec, tid)) = ctx() {
            drop(exec.schedule_point(tid, move || format!("thread::sleep({dur:?})"), true));
        } else {
            std::thread::sleep(dur);
        }
    }
}
