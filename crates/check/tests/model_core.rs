//! Model-checked tests for the real offload core types.
//!
//! These run the actual `offload` crate code — `MpmcQueue`, `LaneSet`,
//! `RequestPool`, `WakeSignal`, all ported onto the `check` facade — under
//! the deterministic scheduler. Under `--cfg offload_model` every
//! interleaving within the preemption bound is explored and the
//! vector-clock detector validates every slot handoff; in a plain build the
//! same closures run once against std as ordinary smoke tests.
//!
//! Every blocking wait here uses [`WaitPolicy::no_backstop`], which makes
//! the park *untimed* in the model: a lost wakeup is then a deadlock the
//! checker reports with a replayable schedule, not a 1 ms hiccup the
//! timeout backstop would paper over.

use check::sync::atomic::{AtomicBool, Ordering};
use check::thread;
use offload::{BackoffMetrics, LaneSet, MpmcQueue, RequestPool, WaitPolicy, WakeSignal};
use std::sync::Arc;

/// A DFS budget for the two queue tests, whose retry loops give them a
/// schedule space too large to exhaust: a capped deterministic prefix of
/// the bounded-preemption tree still visits thousands of distinct
/// interleavings (including the park/wake paths) and keeps the whole
/// model lane well under its time budget. `OFFLOAD_MODEL_MAX_OPS` etc.
/// still apply on top via `apply_env`.
fn capped_dfs() -> check::Config {
    let mut cfg = check::Config::dfs();
    cfg.max_schedules = 2_000;
    cfg
}

/// The paper's command-queue handoff: a producer pushes through the
/// per-slot seq protocol (including the full→park→wake path, since three
/// values go through a two-slot ring) while the consumer pops. The
/// vector-clock detector checks the Release seq store / Acquire seq load
/// handoff publishes each value; FIFO order must hold in every schedule.
#[test]
fn mpmc_seq_handoff_is_race_free_and_fifo() {
    check::model_with(capped_dfs(), || {
        let mut q = MpmcQueue::with_capacity(2);
        q.set_wait_policy(WaitPolicy::no_backstop());
        let q = Arc::new(q);
        let producer = {
            let q = q.clone();
            thread::spawn(move || {
                for v in 1..=3u64 {
                    q.push_blocking(v);
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 3 {
            match q.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2, 3], "single-producer FIFO violated");
    });
}

/// Two producers against a one-lane set: whichever thread claims second
/// must spill to the shared MPMC overflow ring, and the consumer's drain
/// sweep must still deliver both commands exactly once.
#[test]
fn lane_claim_and_overflow_spill_deliver_everything() {
    check::model_with(capped_dfs(), || {
        let mut set = LaneSet::new(1, 2, 2);
        set.set_wait_policy(WaitPolicy::no_backstop());
        let set = Arc::new(set);
        let producers: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|v| {
                let set = set.clone();
                thread::spawn(move || set.push(v).expect("ring has room"))
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 2 {
            if set.drain(4, |v| got.push(v)) == 0 {
                thread::yield_now();
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "a command was lost or duplicated");
        assert!(set.is_empty());
    });
}

/// The full `MPI_Wait` path: alloc → (offload thread) complete →
/// wait_take → free, then the recycled slot must come back under a bumped
/// generation so the stale handle is dead. `wait_take` parks *untimed* on
/// the completion signal, so a lost completion wakeup would be reported as
/// a deadlock.
#[test]
fn pool_lifecycle_completes_and_recycles_with_generation_bump() {
    check::model(|| {
        let mut pool: RequestPool<u32> = RequestPool::with_capacity(1);
        pool.set_wait_policy(WaitPolicy::no_backstop());
        let pool = Arc::new(pool);
        let h = pool.alloc().expect("slot");
        let completer = {
            let pool = pool.clone();
            thread::spawn(move || pool.complete(h, 7))
        };
        assert_eq!(pool.wait_take(h), Some(7));
        completer.join().unwrap();
        let h2 = pool.alloc().expect("recycled slot");
        assert_eq!(h2.index(), h.index(), "slot must actually be recycled");
        assert_eq!(
            h2.generation(),
            h.generation() + 1,
            "free must bump the generation"
        );
        assert!(!pool.is_done(h), "stale handle must not read as done");
        pool.free(h2);
        assert_eq!(pool.outstanding(), 0);
    });
}

/// An exhausted pool: `alloc_blocking` parks untimed on the vacancy signal
/// until the owner frees the only slot. Proves `free`'s notify cannot be
/// lost against the allocator's register-then-recheck.
#[test]
fn pool_alloc_blocking_wakes_on_vacancy() {
    check::model(|| {
        let mut pool: RequestPool<u32> = RequestPool::with_capacity(1);
        pool.set_wait_policy(WaitPolicy::no_backstop());
        let pool = Arc::new(pool);
        let h = pool.alloc().expect("only slot");
        let allocator = {
            let pool = pool.clone();
            thread::spawn(move || {
                let h2 = pool.alloc_blocking();
                pool.free(h2);
            })
        };
        pool.free(h);
        allocator.join().unwrap();
        assert_eq!(pool.outstanding(), 0);
    });
}

/// The seeded ordering bug the detector must catch: the queue's slot
/// publication protocol — write the value cell, then publish the slot's
/// seq counter — with the `Release` seq store weakened to `Relaxed`. A
/// faithful replica of `MpmcQueue::push`'s publication edge, inlined here
/// because the real queue's orderings are (correctly) not configurable.
/// The failure must carry a replayable schedule.
#[cfg(offload_model)]
#[test]
fn relaxed_seq_publication_is_a_data_race() {
    use check::cell::UnsafeCell as ModelCell;
    use check::sync::atomic::AtomicUsize;
    let cfg = check::Config {
        capture_stacks: false,
        ..check::Config::default()
    };
    let failure = check::explore(cfg, || {
        // One slot of the ring: value cell + seq counter, as in queue.rs.
        let slot = Arc::new((ModelCell::new(0u64), AtomicUsize::new(0)));
        let producer = {
            let slot = slot.clone();
            thread::spawn(move || {
                slot.0.with_mut(|p| unsafe { *p = 42 });
                // BUG under test: queue.rs uses Release here, which is what
                // publishes the cell write to the consumer's Acquire load.
                slot.1.store(1, Ordering::Relaxed);
            })
        };
        let consumer = {
            let slot = slot.clone();
            thread::spawn(move || {
                if slot.1.load(Ordering::Acquire) == 1 {
                    slot.0.with(|p| assert_eq!(unsafe { *p }, 42));
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    })
    .expect_err("the detector must catch the unpublished slot write");
    assert_eq!(failure.kind, check::FailureKind::DataRace);
    assert!(
        !failure.schedule.is_empty(),
        "data-race failures must carry a replayable schedule: {failure}"
    );
}

/// The WakeSignal waiter-count fast path itself, with the timeout backstop
/// disabled: the notifier publishes the condition, then loads `waiters`
/// (SeqCst) and only takes the mutex when someone registered; the waiter
/// registers, then re-checks the condition under the mutex before parking
/// untimed. The checker must prove no interleaving loses the wakeup —
/// compare `model_self.rs::lost_wakeup_without_backstop_deadlocks`, where
/// removing the under-lock re-check makes this exact shape deadlock.
#[test]
fn wake_signal_fast_path_has_no_lost_wakeup() {
    check::model(|| {
        let sig = Arc::new(WakeSignal::new());
        let flag = Arc::new(AtomicBool::new(false));
        let notifier = {
            let (sig, flag) = (sig.clone(), flag.clone());
            thread::spawn(move || {
                flag.store(true, Ordering::Release);
                sig.notify();
            })
        };
        let m = BackoffMetrics::default();
        sig.wait_until(&WaitPolicy::no_backstop(), &m, || {
            flag.load(Ordering::Acquire).then_some(())
        });
        notifier.join().unwrap();
    });
}
