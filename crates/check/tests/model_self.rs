//! Self-tests for the model checker: known-good programs must pass, known
//! seeded bugs must be found, and failures must be replayable.
//!
//! Tests that *expect* a failure only make sense in the model build (a
//! plain build runs the closure once on real primitives), so they are
//! gated on `cfg(offload_model)`. Passing programs run in both modes.

use std::sync::Arc;

use check::cell::UnsafeCell;
use check::sync::atomic::{AtomicUsize, Ordering};
use check::sync::Mutex;
use check::{Config, Strategy};

#[cfg(offload_model)]
use check::sync::atomic::AtomicBool;
#[cfg(offload_model)]
use check::sync::Condvar;
#[cfg(offload_model)]
use check::FailureKind;

/// DFS must find the failure in `f` and report `kind`. Returns it.
#[cfg(offload_model)]
fn expect_failure(kind: FailureKind, f: impl Fn() + Send + Sync + 'static) -> check::Failure {
    let cfg = Config {
        capture_stacks: false, // keep expected-failure tests fast
        ..Config::default()
    };
    match check::explore(cfg, f) {
        Ok(stats) => panic!(
            "expected {kind:?}, but {} schedules passed",
            stats.schedules
        ),
        Err(failure) => {
            assert_eq!(failure.kind, kind, "wrong failure kind: {failure}");
            failure
        }
    }
}

#[test]
fn mutex_counter_is_race_free() {
    let stats = check::model(|| {
        let n = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            handles.push(check::thread::spawn(move || {
                *n.lock().unwrap() += 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(stats.schedules >= 1);
}

#[test]
fn release_acquire_message_passing_is_race_free() {
    check::model(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let consumer = {
            let data = Arc::clone(&data);
            let flag = Arc::clone(&flag);
            check::thread::spawn(move || {
                if flag.load(Ordering::Acquire) == 1 {
                    // SAFETY: the acquire load saw the producer's release
                    // store, so the write to `data` happens-before us.
                    let v = data.with(|p| unsafe { *p });
                    assert_eq!(v, 42);
                }
            })
        };
        // SAFETY: no other thread accesses `data` until the release store
        // below publishes it.
        data.with_mut(|p| unsafe { *p = 42 });
        flag.store(1, Ordering::Release);
        consumer.join().unwrap();
    });
}

/// The seeded ordering bug the issue calls for: the exact message-passing
/// pattern above, but the publishing store is `Relaxed` — no release edge,
/// so the consumer's data read races with the producer's write.
#[cfg(offload_model)]
#[test]
fn relaxed_publish_is_a_data_race() {
    let failure = expect_failure(FailureKind::DataRace, || {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let consumer = {
            let data = Arc::clone(&data);
            let flag = Arc::clone(&flag);
            check::thread::spawn(move || {
                if flag.load(Ordering::Acquire) == 1 {
                    // Racy: the relaxed store below published no clock.
                    let _ = data.with(|p| unsafe { *p });
                }
            })
        };
        data.with_mut(|p| unsafe { *p = 42 });
        flag.store(1, Ordering::Relaxed); // BUG: should be Release
        consumer.join().unwrap();
    });
    // Failure output must carry a replayable schedule string.
    assert!(!failure.schedule.is_empty());
}

/// Two plain (unsynchronized) writers: the most basic race.
#[cfg(offload_model)]
#[test]
fn unsynchronized_writers_race() {
    expect_failure(FailureKind::DataRace, || {
        let data = Arc::new(UnsafeCell::new(0u64));
        let other = {
            let data = Arc::clone(&data);
            check::thread::spawn(move || {
                data.with_mut(|p| unsafe { *p += 1 });
            })
        };
        data.with_mut(|p| unsafe { *p += 1 });
        other.join().unwrap();
    });
}

/// Classic ABBA deadlock — found and reported as Deadlock.
#[cfg(offload_model)]
#[test]
fn abba_deadlock_is_found() {
    expect_failure(FailureKind::Deadlock, || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            check::thread::spawn(move || {
                let _b = b.lock().unwrap();
                let _a = a.lock().unwrap();
            })
        };
        let _a = a.lock().unwrap();
        let _b = b.lock().unwrap();
        drop(_b);
        drop(_a);
        t.join().unwrap();
    });
}

/// Lost wakeup, WakeSignal-shaped: the readiness flag lives *outside* the
/// condvar's mutex, and the waiter does not re-check it after taking the
/// lock. The notify can then land between the flag check and the wait
/// registration — and is lost. An untimed wait deadlocks; the bounded-park
/// backstop re-checks and masks the bug.
#[cfg(offload_model)]
fn lost_wakeup_body(timed: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let flag = Arc::new(AtomicBool::new(false));
        let sync = Arc::new((Mutex::new(()), Condvar::new()));
        let notifier = {
            let flag = Arc::clone(&flag);
            let sync = Arc::clone(&sync);
            check::thread::spawn(move || {
                flag.store(true, Ordering::Release);
                // BUG (for the untimed variant): notify without holding
                // the mutex, so it can race the waiter's registration.
                sync.1.notify_all();
            })
        };
        while !flag.load(Ordering::Acquire) {
            let (lock, cv) = &*sync;
            let guard = lock.lock().unwrap();
            // BUG: no flag re-check under the lock before waiting.
            let dur = if timed {
                // The production backstop: a bounded park re-checks.
                std::time::Duration::from_millis(1)
            } else {
                // Backstop disabled (`park_timeout: Duration::MAX`):
                // a lost wakeup now blocks forever.
                std::time::Duration::MAX
            };
            let _ = cv.wait_timeout(guard, dur).unwrap();
        }
        notifier.join().unwrap();
    }
}

#[cfg(offload_model)]
#[test]
fn lost_wakeup_without_backstop_deadlocks() {
    expect_failure(FailureKind::Deadlock, lost_wakeup_body(false));
}

#[cfg(offload_model)]
#[test]
fn lost_wakeup_with_backstop_passes() {
    check::model(lost_wakeup_body(true));
}

/// A failing schedule string replays to the identical failure.
#[cfg(offload_model)]
#[test]
fn failing_schedule_replays() {
    fn body() -> impl Fn() + Send + Sync + 'static {
        || {
            let data = Arc::new(UnsafeCell::new(0u64));
            let other = {
                let data = Arc::clone(&data);
                check::thread::spawn(move || {
                    data.with_mut(|p| unsafe { *p = 1 });
                })
            };
            data.with_mut(|p| unsafe { *p = 2 });
            other.join().unwrap();
        }
    }
    let failure = expect_failure(FailureKind::DataRace, body());
    let mut cfg = Config::replay(&failure.schedule);
    cfg.capture_stacks = false;
    let replayed = check::explore(cfg, body()).expect_err("replay must reproduce the failure");
    assert_eq!(replayed.kind, FailureKind::DataRace);
}

/// A random walk reports the run seed that failed, and replaying exactly
/// that seed for one iteration reproduces the failure.
#[cfg(offload_model)]
#[test]
fn random_walk_seed_reproduces() {
    fn body() -> impl Fn() + Send + Sync + 'static {
        || {
            let data = Arc::new(UnsafeCell::new(0u64));
            let other = {
                let data = Arc::clone(&data);
                check::thread::spawn(move || {
                    data.with_mut(|p| unsafe { *p = 1 });
                })
            };
            data.with_mut(|p| unsafe { *p = 2 });
            other.join().unwrap();
        }
    }
    let mut cfg = Config::random(check::DEFAULT_SEED, 64);
    cfg.capture_stacks = false;
    let failure = check::explore(cfg, body()).expect_err("random walk must find the race");
    let seed = failure.seed.expect("random failures carry their seed");
    let mut cfg = Config::random(seed, 1);
    cfg.capture_stacks = false;
    let again = check::explore(cfg, body()).expect_err("seed must reproduce");
    assert_eq!(again.kind, FailureKind::DataRace);
}

/// DFS on a passing program terminates and (at these sizes) exhausts the
/// bounded schedule space.
#[test]
fn dfs_exhausts_small_programs() {
    let stats = check::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let t = {
            let n = Arc::clone(&n);
            check::thread::spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
            })
        };
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    #[cfg(offload_model)]
    assert!(
        stats.exhausted,
        "tiny program must be exhaustible: {stats:?}"
    );
    let _ = stats;
}

/// The strategies are part of the public API surface; keep them
/// constructible in both build modes.
#[test]
fn config_constructors() {
    let c = Config::replay("0.1.2");
    assert!(matches!(c.strategy, Strategy::Replay(ref v) if v == &[0, 1, 2]));
    let c = Config::random(7, 3);
    assert!(matches!(c.strategy, Strategy::Random { seed: 7, iters: 3 }));
}
