//! Real-threads stress tests of the live offload infrastructure: many
//! application threads per rank hammering the lock-free command queue and
//! request pool concurrently with the offload thread's processing. On any
//! host — including a single-core one, where preemption supplies the
//! interleavings — these exercise the atomics under contention.

use offload::{offload_world_sized, Completion, OffloadHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn mixed_p2p_and_collective_storm() {
    const APP_THREADS: usize = 3;
    const MSGS: usize = 150;
    let ranks = offload_world_sized(3, 64, 64); // small queue/pool: forces recycling
    let total = Arc::new(AtomicU64::new(0));
    let mut join = Vec::new();
    for r in &ranks {
        for t in 0..APP_THREADS {
            let h: OffloadHandle = r.handle();
            let total = total.clone();
            join.push(thread::spawn(move || {
                let me = h.rank();
                let right = (me + 1) % h.size();
                let left = (me + h.size() - 1) % h.size();
                let tag = t as u32;
                for i in 0..MSGS {
                    // Every thread both sends and receives with its twin on
                    // the neighbor ranks.
                    let rx = h.irecv(Some(left), Some(tag));
                    h.send(right, tag, Arc::from(vec![(i % 251) as u8; 64]));
                    match h.wait(rx) {
                        Completion::Received(st, data) => {
                            assert_eq!(st.source, left);
                            assert_eq!(data.len(), 64);
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected completion {other:?}"),
                    }
                }
            }));
        }
    }
    for j in join {
        j.join().expect("app thread");
    }
    assert_eq!(
        total.load(Ordering::Relaxed),
        (3 * APP_THREADS * MSGS) as u64
    );
    for r in ranks {
        r.finalize();
    }
}

#[test]
fn collectives_from_one_thread_while_others_send() {
    // One thread per rank runs repeated allreduces while others stream
    // point-to-point traffic: the offload thread's nonblocking conversion
    // must keep both flowing.
    let ranks = offload_world_sized(2, 128, 128);
    let mut join = Vec::new();
    for r in &ranks {
        let h = r.handle();
        join.push(thread::spawn(move || {
            let mut acc = 0.0;
            for i in 0..40 {
                let s = h.allreduce_f64_sum(&[(h.rank() + i) as f64]);
                acc += s[0];
            }
            acc
        }));
        let h = r.handle();
        join.push(thread::spawn(move || {
            let peer = 1 - h.rank();
            let mut got = 0.0;
            for i in 0..200u32 {
                let rx = h.irecv(Some(peer), Some(7));
                h.send(peer, 7, Arc::from(vec![(i % 200) as u8]));
                if let Completion::Received(_, d) = h.wait(rx) {
                    got += d[0] as f64;
                }
            }
            got
        }));
    }
    let outs: Vec<f64> = join
        .into_iter()
        .map(|j| j.join().expect("thread"))
        .collect();
    // Collective results: sum over i of (0+i)+(1+i) = sum (1+2i) for i in 0..40
    let expect_coll: f64 = (0..40).map(|i| 1.0 + 2.0 * i as f64).sum();
    assert_eq!(outs[0], expect_coll);
    assert_eq!(outs[2], expect_coll);
    // P2P payload sums are equal in both directions.
    assert_eq!(outs[1], outs[3]);
    for r in ranks {
        r.finalize();
    }
}

#[test]
fn tiny_pool_forces_backpressure_not_corruption() {
    // Pool of 2 slots, hundreds of ops: alloc_blocking must spin-wait
    // rather than alias slots.
    let ranks = offload_world_sized(2, 4, 2);
    let h0 = ranks[0].handle();
    let h1 = ranks[1].handle();
    let sender = thread::spawn(move || {
        for i in 0..300u32 {
            h0.send(1, 1, Arc::from(vec![(i % 256) as u8]));
        }
    });
    let receiver = thread::spawn(move || {
        let mut sum = 0u64;
        for _ in 0..300 {
            let (_, d) = h1.recv(Some(0), Some(1));
            sum += d[0] as u64;
        }
        sum
    });
    sender.join().expect("sender");
    let sum = receiver.join().expect("receiver");
    let expect: u64 = (0..300u64).map(|i| i % 256).sum();
    assert_eq!(sum, expect);
    for r in ranks {
        r.finalize();
    }
}

#[cfg(feature = "obs-enabled")]
#[test]
fn pool_occupancy_high_water_stays_within_capacity() {
    // The occupancy gauge's high-water mark must never exceed the pool
    // capacity, even with several app threads racing alloc/free, and the
    // alloc/free counters must balance once every wait has returned.
    const POOL_CAP: usize = 8;
    const APP_THREADS: usize = 3;
    const MSGS: usize = 100;
    let ranks = offload_world_sized(2, 16, POOL_CAP);
    let h0 = ranks[0].handle();
    let h1 = ranks[1].handle();
    let senders: Vec<_> = (0..APP_THREADS as u32)
        .map(|t| {
            let h = h0.clone();
            thread::spawn(move || {
                for i in 0..MSGS {
                    h.send(1, t, Arc::from(vec![(i % 256) as u8]));
                }
            })
        })
        .collect();
    let receiver = thread::spawn(move || {
        for _ in 0..APP_THREADS * MSGS {
            let _ = h1.recv(Some(0), None);
        }
    });
    for s in senders {
        s.join().expect("sender");
    }
    receiver.join().expect("receiver");

    let snap = h0.obs().snapshot();
    let occ = snap.gauge("pool.occupancy");
    assert!(
        occ.high_water as usize <= POOL_CAP,
        "occupancy HWM {} exceeds pool capacity {POOL_CAP}",
        occ.high_water
    );
    assert!(occ.high_water >= 1, "the pool was actually used");
    assert_eq!(
        snap.counter("pool.allocs"),
        snap.counter("pool.frees"),
        "every slot allocated was freed by a wait"
    );
    // The default command path is the sharded lane set.
    assert!(snap.counter("lanes.push_ok") >= (APP_THREADS * MSGS) as u64);
    assert!(
        snap.histogram("offload.drained_per_wakeup").count > 0,
        "the service loop recorded its wakeups"
    );
    for r in ranks {
        r.finalize();
    }
}

#[test]
fn finalize_drains_outstanding_work() {
    // Queue up work and finalize immediately: the offload thread must
    // complete everything before exiting.
    let ranks = offload_world_sized(2, 256, 256);
    let h0 = ranks[0].handle();
    let h1 = ranks[1].handle();
    let reqs: Vec<_> = (0..100u32)
        .map(|i| h0.isend(1, i % 4, Arc::from(vec![i as u8])))
        .collect();
    let receiver = thread::spawn(move || {
        let mut n = 0;
        for i in 0..100u32 {
            let (_, _) = h1.recv(Some(0), Some(i % 4));
            n += 1;
        }
        n
    });
    for r in reqs {
        let _ = h0.wait(r);
    }
    assert_eq!(receiver.join().expect("receiver"), 100);
    for r in ranks {
        r.finalize(); // must not hang or panic
    }
}
