//! Property-based tests of the lock-free structures against reference
//! models: any interleaving of operations must behave like the sequential
//! model (single-threaded linearization), and pool handles must never
//! alias live slots.

use offload::{MpmcQueue, RequestPool};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum QueueOp {
    Push(u32),
    Pop,
}

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![any::<u32>().prop_map(QueueOp::Push), Just(QueueOp::Pop)],
        0..200,
    )
}

proptest! {
    /// Single-threaded, the lock-free queue is exactly a bounded FIFO.
    #[test]
    fn queue_matches_fifo_model(ops in queue_ops(), cap in 1usize..32) {
        let q: MpmcQueue<u32> = MpmcQueue::with_capacity(cap);
        let real_cap = q.capacity();
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    let got = q.push(v);
                    if model.len() < real_cap {
                        prop_assert!(got.is_ok(), "push rejected below capacity");
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(got, Err(v), "push accepted beyond capacity");
                    }
                }
                QueueOp::Pop => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
        }
        // Drain and compare the tails.
        while let Some(v) = q.pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    /// The pool never hands out two live handles to the same slot, and
    /// free slots always come back.
    #[test]
    fn pool_never_aliases_live_slots(script in prop::collection::vec(any::<bool>(), 1..300), cap in 1usize..16) {
        let pool: RequestPool<u32> = RequestPool::with_capacity(cap);
        let mut live: Vec<offload::Handle> = Vec::new();
        for alloc in script {
            if alloc {
                match pool.alloc() {
                    Some(h) => {
                        prop_assert!(live.len() < cap, "alloc past capacity");
                        for other in &live {
                            prop_assert!(
                                other.index() != h.index(),
                                "slot {} aliased",
                                h.index()
                            );
                        }
                        live.push(h);
                    }
                    None => prop_assert_eq!(live.len(), cap, "spurious exhaustion"),
                }
            } else if let Some(h) = live.pop() {
                pool.free(h);
            }
        }
        prop_assert_eq!(pool.outstanding(), live.len());
        // Everything can be released and reacquired.
        for h in live.drain(..) {
            pool.free(h);
        }
        let all: Vec<_> = (0..cap).map(|_| pool.alloc().expect("full capacity")).collect();
        prop_assert!(pool.alloc().is_none());
        for h in all {
            pool.free(h);
        }
    }

    /// Completion values round-trip exactly, and stale (freed) handles
    /// never read as done.
    #[test]
    fn pool_completion_roundtrip(values in prop::collection::vec(any::<u32>(), 1..64)) {
        let pool: RequestPool<u32> = RequestPool::with_capacity(8);
        let mut stale: Vec<offload::Handle> = Vec::new();
        for v in values {
            let h = pool.alloc_blocking();
            prop_assert!(!pool.is_done(h));
            pool.complete(h, v);
            prop_assert!(pool.is_done(h));
            prop_assert_eq!(pool.take(h), Some(v));
            pool.free(h);
            for s in &stale {
                prop_assert!(!pool.is_done(*s), "stale handle reads done");
            }
            stale.push(h);
        }
    }
}
