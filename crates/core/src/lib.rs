//! `offload` — the paper's core contribution: software MPI offloading.
//!
//! > *"We address all these challenges by dedicating a processor thread in
//! > each MPI rank to which all MPI communication operations are offloaded.
//! > The remaining threads, used by the application, may issue MPI calls in
//! > any manner — serialized, funneled, or concurrently. These are routed
//! > to the MPI offload thread via a lock-free command queue."*
//! > — Vaidyanathan et al., SC '15, §1
//!
//! The crate has two faces over one design:
//!
//! * **Real data structures + real threads** ([`queue`], [`lane`],
//!   [`pool`], [`live`]): per-application-thread SPSC submission lanes
//!   (with a Vyukov MPMC ring as overflow and as the comparison baseline),
//!   the generation-tagged request pool with done flags, the shared
//!   adaptive spin→yield→park wait policy ([`backoff`]), and a real
//!   dedicated offload thread per rank over the in-process [`rtmpi`]
//!   message layer. This is the artifact itself — stress-tested with
//!   actual concurrent threads.
//! * **The calibrated simulation model** ([`sim`]): the identical main
//!   loop as a discrete-event task, charging per-operation costs from a
//!   [`simnet::MachineProfile`], so the paper's cluster-scale experiments
//!   (up to 1152 nodes) can be reproduced deterministically. Queue/pool
//!   cost parameters can be calibrated from the real implementations via
//!   the criterion benches in `crates/bench`.
//!
//! Key properties delivered (and asserted by tests):
//!
//! 1. **Constant, size-independent posting cost** for nonblocking calls —
//!    one pool allocation plus one queue push (paper Fig 4).
//! 2. **Asynchronous progress**: the offload thread sweeps in-flight
//!    requests with `MPI_Test*` whenever its queue is empty, so rendezvous
//!    handshakes and nonblocking collectives progress during application
//!    compute (paper §3.2, Fig 2/3).
//! 3. **Scalable `MPI_THREAD_MULTIPLE`**: application threads synchronize
//!    only on the lock-free queue/pool; MPI itself runs single-threaded
//!    with zero internal locking (paper §3.3, Fig 6).
//! 4. **No head-of-line blocking**: blocking operations are converted to
//!    their nonblocking equivalents inside the offload thread.

pub mod backoff;
pub mod lane;
pub mod live;
pub mod pool;
pub mod queue;
pub mod sim;

pub use backoff::{BackoffMetrics, WaitPolicy, WakeSignal};
pub use lane::{LaneMetrics, LaneSet, SpscRing};
pub use live::{
    nbc_apply, nbc_plan, nbc_resolve, offload_rank, offload_rank_configured, offload_world,
    offload_world_configured, offload_world_sized, CollKind, Command, CommandPath, Completion,
    OffloadHandle, OffloadRank,
};
pub use pool::{Handle, RequestPool};
// Collective element types/operators appear in this crate's public API
// (`CollKind`, `OffloadHandle::allreduce`); re-export them so
// transport-level consumers need no direct `mpisim` dependency.
pub use mpisim::types::{Dtype, ReduceOp};
pub use queue::MpmcQueue;
pub use sim::{OffReq, SimColl, SimOffload};
