//! Simulation mode: the offload infrastructure inside the discrete-event
//! model, used for every performance experiment.
//!
//! The logic is the same as [`crate::live`] — a dedicated per-rank thread
//! services a command queue, issues the real MPI calls, and sweeps
//! in-flight requests for completion whenever the queue is empty — but the
//! "thread" is a DES task pinned to one core of the rank, and every step
//! charges the calibrated costs from the [`simnet::MachineProfile`]:
//! command enqueue/dequeue, request-pool slot management, done-flag checks,
//! and the per-request `MPI_Test` sweep.
//!
//! The application-visible cost of a nonblocking call is
//! `pool_alloc_ns + cmd_enqueue_ns` — a constant independent of message
//! size (paper Fig 4, ~140 ns). Blocking calls from application threads
//! reduce to a done-flag wait; the offload thread itself *never blocks*:
//! blocking operations are issued in their nonblocking form and completed
//! through the sweep (paper §3.2–3.3).

use std::cell::RefCell;
use std::rc::Rc;

use destime::channel::{channel, Receiver, Sender};
use destime::futures::{race, Either};
use destime::sync::Flag;
use destime::{Env, Nanos};
use mpisim::{Bytes, CommId, Dtype, Mpi, Rank, ReduceOp, Request, Status, Tag};

/// Completion payload written into the (modelled) request-pool slot.
type OutSlot = Rc<RefCell<Option<(Option<Status>, Option<Bytes>)>>>;

/// Handle into the modelled request pool: slot index plus the generation
/// it was allocated under, mirroring [`crate::pool::Handle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimHandle {
    idx: u32,
    generation: u32,
}

/// The modelled request pool: the DES twin of [`crate::pool::RequestPool`]'s
/// slot lifecycle. It tracks *which* slots are live (occupancy, with
/// high-water mark) and tags each with a generation so a double-`wait` or
/// use-after-free fails the same generation check as the live pool —
/// simulated runs must surface the same application bugs the real
/// infrastructure panics on. Single-threaded (DES), so plain `RefCell`s.
/// The slab grows on demand: a leaked (never-waited) request costs one
/// slot of modelled occupancy, never a hang.
struct SimSlab {
    generations: RefCell<Vec<u32>>,
    free: RefCell<Vec<u32>>,
    allocs: obs::Counter,
    frees: obs::Counter,
    occupancy: obs::Gauge,
}

impl SimSlab {
    fn new(reg: &obs::Registry) -> Self {
        Self {
            generations: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            allocs: reg.counter("pool.allocs"),
            frees: reg.counter("pool.frees"),
            occupancy: reg.gauge("pool.occupancy"),
        }
    }

    fn alloc(&self) -> SimHandle {
        let idx = self.free.borrow_mut().pop().unwrap_or_else(|| {
            let mut gens = self.generations.borrow_mut();
            gens.push(0);
            (gens.len() - 1) as u32
        });
        self.allocs.inc();
        self.occupancy.add(1);
        SimHandle {
            idx,
            generation: self.generations.borrow()[idx as usize],
        }
    }

    fn free(&self, h: SimHandle) {
        let mut gens = self.generations.borrow_mut();
        let current = gens[h.idx as usize];
        assert_eq!(
            current, h.generation,
            "stale request handle: slot {} is at generation {} but the handle \
             was allocated under generation {} (double wait or use-after-free)",
            h.idx, current, h.generation
        );
        gens[h.idx as usize] = current.wrapping_add(1);
        drop(gens);
        self.free.borrow_mut().push(h.idx);
        self.frees.inc();
        self.occupancy.sub(1);
    }
}

/// The offloaded request handle the application holds: a pool slot (with
/// generation tag) plus, in the model, its done flag and result cell.
#[derive(Clone)]
pub struct OffReq {
    done: Flag,
    out: OutSlot,
    slot: SimHandle,
}

impl OffReq {
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }

    /// Completion status (receives). Keeps working after `wait` freed the
    /// pool slot: status/data live in the result cell the handle owns.
    pub fn status(&self) -> Option<Status> {
        self.out.borrow().as_ref().and_then(|(s, _)| *s)
    }

    /// Take the received/collective payload.
    pub fn take_data(&self) -> Option<Bytes> {
        self.out.borrow_mut().as_mut().and_then(|(_, d)| d.take())
    }

    /// The modelled pool slot (diagnostics).
    pub fn slot_index(&self) -> u32 {
        self.slot.idx
    }
}

/// Offloadable collectives (simulation mode mirrors the live [`crate::live::CollKind`]).
pub enum SimColl {
    Barrier,
    Allreduce {
        payload: Bytes,
        dtype: Dtype,
        op: ReduceOp,
    },
    Reduce {
        root: Rank,
        payload: Bytes,
        dtype: Dtype,
        op: ReduceOp,
    },
    Bcast {
        root: Rank,
        payload: Bytes,
    },
    Allgather {
        mine: Bytes,
    },
    Alltoall {
        input: Bytes,
        block: usize,
    },
    Gather {
        root: Rank,
        mine: Bytes,
    },
    Scatter {
        root: Rank,
        input: Option<Bytes>,
        block: usize,
    },
}

enum SimCmd {
    Isend {
        comm: CommId,
        dst: Rank,
        tag: Tag,
        payload: Bytes,
        done: Flag,
        out: OutSlot,
    },
    Irecv {
        comm: CommId,
        src: Option<Rank>,
        tag: Option<Tag>,
        done: Flag,
        out: OutSlot,
    },
    Coll {
        comm: CommId,
        op: SimColl,
        done: Flag,
        out: OutSlot,
    },
    Shutdown,
}

struct Costs {
    enqueue: Nanos,
    pool_alloc: Nanos,
    done_check: Nanos,
}

struct Inner {
    mpi: Mpi,
    env: Env,
    tx: Sender<SimCmd>,
    costs: Costs,
    registry: obs::Registry,
    slab: Rc<SimSlab>,
    task: RefCell<Option<Vec<destime::JoinHandle<()>>>>,
}

/// Metric handles for the offload service loop, resolved once at startup.
/// Names match the live service loop (`crate::live`) so fig reports can
/// show the same obs columns for both modes: `offload.parks` /
/// `offload.wakes` count deep-idle parking (here: awaiting the channel),
/// `lanes.occupancy` is the modelled submission-lane depth at each drain.
struct LoopObs {
    drained: obs::Histogram,
    sweeps: obs::Counter,
    converted: obs::Counter,
    retired: obs::Counter,
    parks: obs::Counter,
    wakes: obs::Counter,
    occupancy: obs::Gauge,
}

impl LoopObs {
    fn new(reg: &obs::Registry) -> Self {
        Self {
            drained: reg.histogram("offload.drained_per_wakeup"),
            sweeps: reg.counter("offload.testany_sweeps"),
            converted: reg.counter("offload.coll_converted"),
            retired: reg.counter("offload.reqs_retired"),
            parks: reg.counter("offload.parks"),
            wakes: reg.counter("offload.wakes"),
            occupancy: reg.gauge("lanes.occupancy"),
        }
    }
}

/// Per-rank offload service handle (simulation mode). Clone freely across
/// the rank's simulated application threads — enqueueing is modelled as
/// the lock-free queue's flat per-op cost, so concurrent callers scale.
#[derive(Clone)]
pub struct SimOffload {
    inner: Rc<Inner>,
}

impl SimOffload {
    /// Start the offload thread for this rank. The `Mpi` handle should
    /// belong to a `Funneled`-level universe: only the offload thread
    /// enters MPI, which is the whole point (paper §3.3).
    pub fn start(mpi: Mpi) -> Self {
        Self::start_multi(mpi, 1)
    }

    /// Start `n` offload threads sharing one command queue — the paper's
    /// stated future work (§7): replacing MPI with endpoint-capable
    /// low-level APIs (OFI/verbs/uGNI) "will allow us to use multiple
    /// threads for software offload". Each extra thread costs one more
    /// dedicated core but parallelizes the per-message software work
    /// (eager copies above all). The model assumes independent
    /// communication endpoints, i.e. no library-level lock between the
    /// offload threads.
    pub fn start_multi(mpi: Mpi, n: usize) -> Self {
        Self::start_multi_traced(mpi, n, &obs::Recorder::disabled())
    }

    /// As [`start`] with a trace recorder: the offload thread emits
    /// virtual-clock (DES time) events onto a per-rank track.
    ///
    /// [`start`]: SimOffload::start
    pub fn start_traced(mpi: Mpi, recorder: &obs::Recorder) -> Self {
        Self::start_multi_traced(mpi, 1, recorder)
    }

    /// As [`start_multi`] with a trace recorder.
    ///
    /// [`start_multi`]: SimOffload::start_multi
    pub fn start_multi_traced(mpi: Mpi, n: usize, recorder: &obs::Recorder) -> Self {
        assert!(n >= 1, "at least one offload thread");
        let env = mpi.env().clone();
        let (tx, rx) = channel();
        let p = profile_of(&mpi);
        let costs = Costs {
            enqueue: p.cmd_enqueue_ns,
            pool_alloc: p.pool_alloc_ns,
            done_check: p.done_check_ns,
        };
        let registry = obs::Registry::default();
        let rank = mpi.rank();
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let track =
                recorder.track(rank as u32, 1 + i as u32, &format!("rank{rank}/offload{i}"));
            tasks.push(env.spawn(offload_task(
                mpi.clone(),
                rx.clone(),
                registry.clone(),
                track,
            )));
        }
        let slab = Rc::new(SimSlab::new(&registry));
        Self {
            inner: Rc::new(Inner {
                mpi,
                env,
                tx,
                costs,
                registry,
                slab,
                task: RefCell::new(Some(tasks)),
            }),
        }
    }

    pub fn rank(&self) -> Rank {
        self.inner.mpi.rank()
    }

    pub fn size(&self) -> usize {
        self.inner.mpi.size()
    }

    pub fn env(&self) -> &Env {
        &self.inner.env
    }

    /// The underlying MPI handle (for communicator management).
    pub fn mpi(&self) -> &Mpi {
        &self.inner.mpi
    }

    /// This rank's offload-service metrics registry.
    pub fn obs(&self) -> &obs::Registry {
        &self.inner.registry
    }

    fn fresh_req(&self) -> OffReq {
        OffReq {
            done: Flag::new(),
            out: Rc::new(RefCell::new(None)),
            slot: self.inner.slab.alloc(),
        }
    }

    async fn post(&self, mk: impl FnOnce(Flag, OutSlot) -> SimCmd) -> OffReq {
        let c = &self.inner.costs;
        self.inner.env.advance(c.pool_alloc + c.enqueue).await;
        let req = self.fresh_req();
        self.inner.tx.send(mk(req.done.clone(), req.out.clone()));
        req
    }

    /// Offloaded `MPI_Isend`: constant-cost posting.
    pub async fn isend(&self, comm: CommId, dst: Rank, tag: Tag, payload: Bytes) -> OffReq {
        self.post(|done, out| SimCmd::Isend {
            comm,
            dst,
            tag,
            payload,
            done,
            out,
        })
        .await
    }

    /// Offloaded `MPI_Irecv`.
    pub async fn irecv(&self, comm: CommId, src: Option<Rank>, tag: Option<Tag>) -> OffReq {
        self.post(|done, out| SimCmd::Irecv {
            comm,
            src,
            tag,
            done,
            out,
        })
        .await
    }

    /// Offloaded nonblocking collective.
    pub async fn icoll(&self, comm: CommId, op: SimColl) -> OffReq {
        self.post(|done, out| SimCmd::Coll {
            comm,
            op,
            done,
            out,
        })
        .await
    }

    /// `MPI_Test` equivalent: a single done-flag check.
    pub async fn test(&self, req: &OffReq) -> bool {
        self.inner.env.advance(self.inner.costs.done_check).await;
        req.is_done()
    }

    /// `MPI_Wait` equivalent: check the done flag, park until set, free
    /// the modelled pool slot. As in the live pool, waiting the same
    /// request twice fails the generation check with a "stale request
    /// handle" panic — `status`/`take_data`/`test` remain valid after the
    /// wait (they read the handle's own result cell, not the slot).
    pub async fn wait(&self, req: &OffReq) -> Option<Status> {
        self.inner.env.advance(self.inner.costs.done_check).await;
        req.done.wait().await;
        self.inner.slab.free(req.slot);
        req.status()
    }

    /// `MPI_Waitall`.
    pub async fn waitall(&self, reqs: &[OffReq]) {
        for r in reqs {
            self.wait(r).await;
        }
    }

    /// Blocking offloaded send.
    pub async fn send(&self, comm: CommId, dst: Rank, tag: Tag, payload: Bytes) {
        let r = self.isend(comm, dst, tag, payload).await;
        self.wait(&r).await;
    }

    /// Blocking offloaded receive.
    pub async fn recv(&self, comm: CommId, src: Option<Rank>, tag: Option<Tag>) -> (Status, Bytes) {
        let r = self.irecv(comm, src, tag).await;
        let st = self.wait(&r).await.expect("recv has status");
        (st, r.take_data().expect("recv has data"))
    }

    /// Offloaded barrier.
    pub async fn barrier(&self, comm: CommId) {
        let r = self.icoll(comm, SimColl::Barrier).await;
        self.wait(&r).await;
    }

    /// Offloaded allreduce.
    pub async fn allreduce(
        &self,
        comm: CommId,
        payload: Bytes,
        dtype: Dtype,
        op: ReduceOp,
    ) -> Bytes {
        let r = self
            .icoll(comm, SimColl::Allreduce { payload, dtype, op })
            .await;
        self.wait(&r).await;
        r.take_data().expect("allreduce result")
    }

    /// Offloaded all-to-all.
    pub async fn alltoall(&self, comm: CommId, input: Bytes, block: usize) -> Bytes {
        let r = self.icoll(comm, SimColl::Alltoall { input, block }).await;
        self.wait(&r).await;
        r.take_data().expect("alltoall result")
    }

    /// Offloaded broadcast.
    pub async fn bcast(&self, comm: CommId, root: Rank, payload: Bytes) -> Bytes {
        let r = self.icoll(comm, SimColl::Bcast { root, payload }).await;
        self.wait(&r).await;
        r.take_data().expect("bcast result")
    }

    /// Offloaded allgather.
    pub async fn allgather(&self, comm: CommId, mine: Bytes) -> Bytes {
        let r = self.icoll(comm, SimColl::Allgather { mine }).await;
        self.wait(&r).await;
        r.take_data().expect("allgather result")
    }

    /// Stop the offload thread(s) once outstanding work drains (the
    /// `MPI_Finalize` point). Must be called exactly once per rank.
    pub async fn shutdown(&self) {
        let tasks = self.inner.task.borrow_mut().take();
        if let Some(tasks) = tasks {
            for _ in 0..tasks.len() {
                self.inner.tx.send(SimCmd::Shutdown);
            }
            for task in tasks {
                task.join().await;
            }
        }
    }
}

fn profile_of(mpi: &Mpi) -> simnet::MachineProfile {
    // The profile travels with the universe; expose via a world barrier-free
    // accessor. (Clone is cheap; called once at startup.)
    mpi.profile()
}

struct InFlight {
    req: Request,
    done: Flag,
    out: OutSlot,
}

/// The offload thread's main loop (DES task).
async fn offload_task(mpi: Mpi, rx: Receiver<SimCmd>, reg: obs::Registry, track: obs::Track) {
    let env = mpi.env().clone();
    let p = mpi.profile();
    let lo = LoopObs::new(&reg);
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut open = true;
    loop {
        // 1. Service queued commands first (application responsiveness).
        // Stop draining once this thread saw its shutdown token so sibling
        // offload threads (multi-threaded offload) get theirs.
        let t_service = env.now();
        lo.occupancy.set(rx.len() as u64);
        let mut drained = 0u64;
        while open {
            let Some(cmd) = rx.try_recv() else { break };
            env.advance(p.cmd_dequeue_ns).await;
            drained += 1;
            if !issue(&mpi, cmd, &mut inflight, &lo).await {
                open = false;
            }
        }
        if drained > 0 {
            lo.drained.record(drained);
            track.complete_at("drain", t_service, env.now());
        }
        // 2. Completion sweep over in-flight requests (MPI_Testany) plus a
        // progress poll — this is what guarantees asynchronous progress.
        // Testany short-circuits at completions: charge one probe plus one
        // per request retired, not a full-list scan per wake.
        if !inflight.is_empty() {
            lo.sweeps.inc();
            mpi.progress_once().await;
            let before = inflight.len();
            inflight.retain(|f| {
                if f.req.is_done() {
                    *f.out.borrow_mut() = Some((f.req.status(), f.req.take_data()));
                    f.done.set();
                    false
                } else {
                    true
                }
            });
            let retired = (before - inflight.len()) as u64;
            if retired > 0 {
                lo.retired.add(retired);
                track.instant_at("retire", env.now());
            }
            env.advance(p.test_sweep_ns * (retired + 1)).await;
        }
        // 3. Park or exit.
        if inflight.is_empty() {
            if !open {
                return;
            }
            // Deep idle: only a new command can create work.
            lo.parks.inc();
            match rx.recv().await {
                Some(cmd) => {
                    lo.wakes.inc();
                    env.advance(p.cmd_dequeue_ns).await;
                    lo.drained.record(1);
                    if !issue(&mpi, cmd, &mut inflight, &lo).await {
                        open = false;
                    }
                }
                None => return,
            }
        } else if rx.is_empty() {
            // Busy but nothing actionable: behave like a spinning poller
            // without simulating each empty iteration — wake on the next
            // arrival or command.
            let activity = Box::pin(mpi.park_until_activity());
            match race(rx.recv(), activity).await {
                Either::Left(Some(cmd)) => {
                    env.advance(p.cmd_dequeue_ns).await;
                    lo.drained.record(1);
                    if !issue(&mpi, cmd, &mut inflight, &lo).await {
                        open = false;
                    }
                }
                Either::Left(None) => return,
                Either::Right(()) => {}
            }
        }
    }
}

/// Issue one command into MPI; returns false for `Shutdown`.
async fn issue(mpi: &Mpi, cmd: SimCmd, inflight: &mut Vec<InFlight>, lo: &LoopObs) -> bool {
    match cmd {
        SimCmd::Isend {
            comm,
            dst,
            tag,
            payload,
            done,
            out,
        } => {
            let req = mpi.isend(comm, dst, tag, payload).await;
            inflight.push(InFlight { req, done, out });
        }
        SimCmd::Irecv {
            comm,
            src,
            tag,
            done,
            out,
        } => {
            let req = mpi.irecv(comm, src, tag).await;
            inflight.push(InFlight { req, done, out });
        }
        SimCmd::Coll {
            comm,
            op,
            done,
            out,
        } => {
            // Blocking collectives become their nonblocking equivalents so
            // the offload thread never stalls (paper §3.3).
            lo.converted.inc();
            let req = match op {
                SimColl::Barrier => mpi.ibarrier(comm).await,
                SimColl::Allreduce { payload, dtype, op } => {
                    mpi.iallreduce(comm, payload, dtype, op).await
                }
                SimColl::Reduce {
                    root,
                    payload,
                    dtype,
                    op,
                } => mpi.ireduce(comm, root, payload, dtype, op).await,
                SimColl::Bcast { root, payload } => mpi.ibcast(comm, root, payload).await,
                SimColl::Allgather { mine } => mpi.iallgather(comm, mine).await,
                SimColl::Alltoall { input, block } => mpi.ialltoall(comm, input, block).await,
                SimColl::Gather { root, mine } => mpi.igather(comm, root, mine).await,
                SimColl::Scatter { root, input, block } => {
                    mpi.iscatter(comm, root, input, block).await
                }
            };
            inflight.push(InFlight { req, done, out });
        }
        SimCmd::Shutdown => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{bytes_to_f64s, f64s_to_bytes, ThreadLevel, Universe, COMM_WORLD};
    use simnet::MachineProfile;

    fn run_offloaded<T: 'static>(
        n: usize,
        f: impl Fn(SimOffload) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>> + 'static,
    ) -> (Vec<T>, destime::Nanos) {
        Universe::new(n, MachineProfile::xeon(), ThreadLevel::Funneled).run(move |mpi| {
            let off = SimOffload::start(mpi);
            let fut = f(off.clone());
            Box::pin(async move {
                let out = fut.await;
                off.shutdown().await;
                out
            })
        })
    }

    #[test]
    fn offloaded_ping_pong_roundtrip() {
        let (outs, _) = run_offloaded(2, |off| {
            Box::pin(async move {
                if off.rank() == 0 {
                    off.send(COMM_WORLD, 1, 7, Bytes::real(vec![1, 2, 3])).await;
                    let (_, d) = off.recv(COMM_WORLD, Some(1), Some(8)).await;
                    d.to_vec()
                } else {
                    let (_, d) = off.recv(COMM_WORLD, Some(0), Some(7)).await;
                    let mut back = d.to_vec();
                    back.reverse();
                    off.send(COMM_WORLD, 0, 8, Bytes::real(back)).await;
                    Vec::new()
                }
            })
        });
        assert_eq!(outs[0], vec![3, 2, 1]);
    }

    /// Double-waiting a simulated request must fail the generation check
    /// exactly like the live pool — the DES executor is single-threaded,
    /// so the panic propagates straight to the test.
    #[test]
    #[should_panic(expected = "stale request handle")]
    fn sim_double_wait_panics_on_generation_check() {
        let _ = run_offloaded(2, |off| {
            Box::pin(async move {
                if off.rank() == 0 {
                    let r = off.isend(COMM_WORLD, 1, 1, Bytes::synthetic(8)).await;
                    off.wait(&r).await; // frees the modelled slot
                    off.wait(&r).await; // stale generation: panics
                } else {
                    let r = off.irecv(COMM_WORLD, Some(0), Some(1)).await;
                    off.wait(&r).await;
                }
            })
        });
    }

    /// A recycled slot must not let an old handle alias the new request:
    /// waiting a stale clone after the slot was reused panics.
    #[test]
    #[should_panic(expected = "stale request handle")]
    fn sim_recycled_slot_rejects_stale_handle() {
        let _ = run_offloaded(2, |off| {
            Box::pin(async move {
                if off.rank() == 0 {
                    let r1 = off.isend(COMM_WORLD, 1, 1, Bytes::synthetic(8)).await;
                    let stale = r1.clone();
                    off.wait(&r1).await;
                    // The freed slot is recycled by the next allocation.
                    let r2 = off.isend(COMM_WORLD, 1, 2, Bytes::synthetic(8)).await;
                    assert_eq!(r2.slot_index(), stale.slot_index());
                    off.wait(&stale).await; // would alias r2's slot: panics
                } else {
                    let a = off.irecv(COMM_WORLD, Some(0), Some(1)).await;
                    let b = off.irecv(COMM_WORLD, Some(0), Some(2)).await;
                    off.waitall(&[a, b]).await;
                }
            })
        });
    }

    /// `test`/`status`/`take_data` stay valid after `wait` freed the slot
    /// (the Comm matrix relies on test-after-wait), and the modelled pool
    /// occupancy returns to zero when every request is waited.
    #[test]
    fn sim_pool_tracks_occupancy_and_tolerates_test_after_wait() {
        let (outs, _) = run_offloaded(2, |off| {
            Box::pin(async move {
                let reg = off.obs().clone();
                if off.rank() == 0 {
                    let r = off.isend(COMM_WORLD, 1, 1, Bytes::real(vec![7])).await;
                    off.wait(&r).await;
                    let still_done = r.is_done();
                    #[cfg(feature = "obs-enabled")]
                    {
                        let s = reg.snapshot();
                        assert!(s.counter("pool.allocs") >= 1);
                        assert_eq!(s.counter("pool.allocs"), s.counter("pool.frees"));
                        assert_eq!(s.gauge("pool.occupancy").value, 0);
                        assert!(s.gauge("pool.occupancy").high_water >= 1);
                    }
                    let _ = &reg;
                    still_done
                } else {
                    let r = off.irecv(COMM_WORLD, Some(0), Some(1)).await;
                    off.wait(&r).await;
                    let d = r.take_data().expect("data readable after wait");
                    d.to_vec() == vec![7]
                }
            })
        });
        assert!(outs[0] && outs[1]);
    }

    #[test]
    fn posting_cost_is_constant_and_small() {
        // Post a tiny and a huge nonblocking send; the application-visible
        // cost must be identical (pool_alloc + enqueue), unlike the direct
        // path whose eager copy scales with size.
        let (outs, _) = run_offloaded(2, |off| {
            Box::pin(async move {
                let env = off.env().clone();
                if off.rank() == 0 {
                    let t0 = env.now();
                    let r1 = off.isend(COMM_WORLD, 1, 1, Bytes::synthetic(8)).await;
                    let small = env.now() - t0;
                    let t1 = env.now();
                    let r2 = off
                        .isend(COMM_WORLD, 1, 2, Bytes::synthetic(64 * 1024))
                        .await;
                    let large = env.now() - t1;
                    off.waitall(&[r1, r2]).await;
                    (small, large)
                } else {
                    let r1 = off.irecv(COMM_WORLD, Some(0), Some(1)).await;
                    let r2 = off.irecv(COMM_WORLD, Some(0), Some(2)).await;
                    off.waitall(&[r1, r2]).await;
                    (0, 0)
                }
            })
        });
        let (small, large) = outs[0];
        assert_eq!(small, large, "posting cost must not depend on size");
        let p = MachineProfile::xeon();
        assert_eq!(small, p.pool_alloc_ns + p.cmd_enqueue_ns);
    }

    #[test]
    fn offload_provides_async_progress_for_rendezvous() {
        // Same scenario as mpisim's stall test, but with offload: the
        // transfer completes during the compute phase.
        let n = 1 << 20;
        let compute: destime::Nanos = 10_000_000;
        let (outs, _) = run_offloaded(2, move |off| {
            Box::pin(async move {
                let env = off.env().clone();
                if off.rank() == 0 {
                    let r = off.isend(COMM_WORLD, 1, 3, Bytes::synthetic(n)).await;
                    env.advance(compute).await;
                    let t = env.now();
                    off.wait(&r).await;
                    env.now() - t
                } else {
                    let r = off.irecv(COMM_WORLD, Some(0), Some(3)).await;
                    env.advance(compute).await;
                    let t = env.now();
                    off.wait(&r).await;
                    env.now() - t
                }
            })
        });
        let wire = MachineProfile::transfer_ns(n, 6.0);
        assert!(
            outs[1] < wire / 10,
            "receiver wait {}ns must be tiny vs wire {}ns — the offload thread \
             progressed the rendezvous during compute",
            outs[1],
            wire
        );
    }

    #[test]
    fn offloaded_collectives_compute_correctly() {
        let (outs, _) = run_offloaded(4, |off| {
            Box::pin(async move {
                let mine = f64s_to_bytes(&[off.rank() as f64, 2.0]);
                let sum = off
                    .allreduce(COMM_WORLD, Bytes::real(mine), Dtype::F64, ReduceOp::Sum)
                    .await;
                off.barrier(COMM_WORLD).await;
                let g = off
                    .allgather(COMM_WORLD, Bytes::real(vec![off.rank() as u8]))
                    .await;
                (bytes_to_f64s(&sum.to_vec()), g.to_vec())
            })
        });
        for (sum, g) in &outs {
            assert_eq!(sum, &vec![6.0, 8.0]);
            assert_eq!(g, &vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn multi_threaded_offload_parallelizes_eager_copies() {
        // Future work (§7): with two offload threads, the serialized eager
        // copies of a many-message burst are split across two cores, so the
        // burst completes sooner.
        let total_wait = |threads: usize| {
            let (outs, _) =
                Universe::new(2, MachineProfile::xeon(), ThreadLevel::Funneled).run(move |mpi| {
                    let off = SimOffload::start_multi(mpi, threads);
                    Box::pin(async move {
                        let env = off.env().clone();
                        let out = if off.rank() == 0 {
                            let mut reqs = Vec::new();
                            for i in 0..16u32 {
                                reqs.push(
                                    off.isend(COMM_WORLD, 1, i, Bytes::synthetic(100 * 1024))
                                        .await,
                                );
                            }
                            let t0 = env.now();
                            off.waitall(&reqs).await;
                            env.now() - t0
                        } else {
                            let mut reqs = Vec::new();
                            for i in 0..16u32 {
                                reqs.push(off.irecv(COMM_WORLD, Some(0), Some(i)).await);
                            }
                            off.waitall(&reqs).await;
                            0
                        };
                        off.shutdown().await;
                        out
                    })
                });
            outs[0]
        };
        let one = total_wait(1);
        let two = total_wait(2);
        assert!(
            two < one,
            "two offload threads ({two}ns) should beat one ({one}ns) on an eager burst"
        );
    }

    #[test]
    fn blocking_call_does_not_stall_other_threads_ops() {
        // Two "application threads" on rank 0: one sits in a blocking
        // barrier-like wait (receive that completes late), the other keeps
        // doing sends. Because the offload thread converts everything to
        // nonblocking internally, the second thread's traffic flows.
        let (outs, _) =
            Universe::new(2, MachineProfile::xeon(), ThreadLevel::Funneled).run(|mpi| {
                let off = SimOffload::start(mpi);
                Box::pin(async move {
                    let env = off.env().clone();
                    if off.rank() == 0 {
                        let off_a = off.clone();
                        let blocker = env.spawn(async move {
                            // Completes only at t >= 5ms (peer sends late).
                            let (_, d) = off_a.recv(COMM_WORLD, Some(1), Some(9)).await;
                            d.len()
                        });
                        let off_b = off.clone();
                        let worker = env.spawn(async move {
                            let mut sent = 0;
                            for i in 0..50u32 {
                                off_b
                                    .send(COMM_WORLD, 1, i % 8, Bytes::real(vec![0u8; 64]))
                                    .await;
                                sent += 1;
                            }
                            (off_b.env().now(), sent)
                        });
                        let (t_worker_done, sent) = worker.join().await;
                        let blocked_len = blocker.join().await;
                        off.shutdown().await;
                        assert!(
                            t_worker_done < 5_000_000,
                            "worker finished at {t_worker_done}ns, before the blocker's 5ms recv"
                        );
                        (sent, blocked_len)
                    } else {
                        let mut got = 0;
                        for _ in 0..50 {
                            let _ = off.recv(COMM_WORLD, Some(0), None).await;
                            got += 1;
                        }
                        env.advance(5_000_000).await;
                        off.send(COMM_WORLD, 0, 9, Bytes::real(vec![1u8; 16])).await;
                        off.shutdown().await;
                        (got, 0)
                    }
                })
            });
        assert_eq!(outs[0], (50, 16));
        assert_eq!(outs[1].0, 50);
    }
}
