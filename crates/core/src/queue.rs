//! The lock-free bounded MPMC command queue (paper §3.1, §3.3).
//!
//! Application threads (any number, concurrently — this is what makes the
//! infrastructure's `MPI_THREAD_MULTIPLE` support scale) enqueue serialized
//! MPI commands; the single offload thread dequeues them. The design is the
//! classic Dmitry Vyukov bounded MPMC ring: each slot carries a sequence
//! number that encodes both *which lap* of the ring it belongs to and
//! whether it currently holds a value, so producers and consumers
//! synchronize per-slot with one CAS on the shared cursor and
//! acquire/release accesses on the slot sequence — no locks anywhere.
//!
//! Memory ordering notes (see *Rust Atomics and Locks*, ch. 3):
//! * A producer publishes its value with `seq.store(pos + 1, Release)`;
//!   the consumer's `seq.load(Acquire)` then happens-after the value write.
//! * Symmetrically the consumer releases the emptied slot with
//!   `seq.store(pos + mask + 1, Release)` for the producer's next lap.
//!
//! All cursor/sequence arithmetic is `wrapping_*`: the positions are free-
//! running counters that are *expected* to wrap `usize` on long-lived
//! queues, and the lap comparisons below are written as wrapping
//! differences so they stay correct across the wrap (see the
//! `seq_counters_survive_usize_wraparound` test).
//!
//! Synchronization primitives come from the `check` facade: identical to
//! std in a normal build, model-checked under `--cfg offload_model`
//! (DESIGN.md §11).

use std::mem::MaybeUninit;

use check::cell::UnsafeCell;
use check::sync::atomic::{AtomicUsize, Ordering};
use check::sync::CachePadded;

use crate::backoff::{BackoffMetrics, WaitPolicy, WakeSignal};

struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Flight-recorder signals of one queue: push/pop outcomes (full/empty
/// retries are the back-pressure signals of paper §3.3) and the depth
/// high-water mark. Every recording site is a couple of `Relaxed` atomics;
/// with `obs`'s `enabled` feature off the whole struct is zero-sized and
/// the sites compile out.
#[derive(Clone, Default)]
pub struct QueueMetrics {
    pub push_ok: obs::Counter,
    pub push_full: obs::Counter,
    pub pop_ok: obs::Counter,
    pub pop_empty: obs::Counter,
    pub depth: obs::Gauge,
    /// How blocked producers escalated (spin/yield/park) on a full queue.
    pub producer: BackoffMetrics,
}

impl QueueMetrics {
    /// Register the queue's metrics under `prefix` in `registry`.
    pub fn registered(registry: &obs::Registry, prefix: &str) -> Self {
        Self {
            push_ok: registry.counter(&format!("{prefix}.push_ok")),
            push_full: registry.counter(&format!("{prefix}.push_full")),
            pop_ok: registry.counter(&format!("{prefix}.pop_ok")),
            pop_empty: registry.counter(&format!("{prefix}.pop_empty")),
            depth: registry.gauge(&format!("{prefix}.depth")),
            producer: BackoffMetrics::registered(registry, &format!("{prefix}.producer")),
        }
    }
}

/// Bounded lock-free multi-producer/multi-consumer queue.
pub struct MpmcQueue<T> {
    buffer: Box<[Slot<T>]>,
    mask: usize,
    metrics: QueueMetrics,
    /// Consumers ring this after each pop; producers blocked on a full
    /// queue park on it (see [`MpmcQueue::push_blocking`]).
    not_full: WakeSignal,
    policy: WaitPolicy,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: values are transferred between threads through the queue with
// release/acquire handoff on each slot's sequence number; a slot's value is
// accessed only by the unique thread that won the corresponding CAS.
unsafe impl<T: Send> Send for MpmcQueue<T> {}
// SAFETY: as above — the per-slot seq handoff partitions value accesses.
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// Create a queue with capacity `cap` (rounded up to a power of two,
    /// minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_metrics(cap, QueueMetrics::default())
    }

    /// Create a queue whose signals feed pre-registered metric handles
    /// (see [`QueueMetrics::registered`]).
    pub fn with_metrics(cap: usize, metrics: QueueMetrics) -> Self {
        Self::with_start_pos(cap, metrics, 0)
    }

    /// As [`MpmcQueue::with_metrics`], but with both cursors starting at
    /// `start` — lets tests begin a hair below `usize::MAX` and prove the
    /// ring survives counter wraparound. Not part of the public API.
    #[doc(hidden)]
    pub fn with_start_pos(cap: usize, metrics: QueueMetrics, start: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        let mask = cap - 1;
        let buffer: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                // Invariant: the slot at index `(start + i) & mask` is free
                // for the enqueue at position `start + i`.
                seq: AtomicUsize::new(start.wrapping_add(i)),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        // `start` must be slot-aligned or the per-slot seq assignment above
        // would belong to different slots than the cursors expect.
        debug_assert_eq!(start & mask, 0, "start_pos must be a multiple of capacity");
        Self {
            buffer,
            mask,
            metrics,
            not_full: WakeSignal::new(),
            policy: WaitPolicy::default(),
            enqueue_pos: CachePadded::new(AtomicUsize::new(start)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(start)),
        }
    }

    /// Replace the producer-side wait policy (spin/yield budgets and park
    /// backstop). Model tests shrink the budgets so the schedule space
    /// stays explorable; production code keeps the default.
    pub fn set_wait_policy(&mut self, policy: WaitPolicy) {
        self.policy = policy;
    }

    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    pub fn metrics(&self) -> &QueueMetrics {
        &self.metrics
    }

    /// Try to enqueue; returns the value back if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        // ORDERING: Relaxed — the cursor load is only a starting hint for
        // the CAS loop; the Acquire on `seq` below carries the real edge.
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            // ORDERING: Acquire — pairs with the consumer's Release that
            // recycled this slot, so its previous occupant is dead here.
            let seq = slot.seq.load(Ordering::Acquire);
            // Wrapping difference, then signed: correct even when `pos`
            // wraps usize::MAX (plain `seq - pos` would see a huge gap).
            match seq.wrapping_sub(pos) as isize {
                0 => {
                    // Slot free for this lap: claim it.
                    // ORDERING: Relaxed/Relaxed — winning the cursor CAS
                    // publishes nothing by itself; the value only becomes
                    // visible through the Release store on `seq` below.
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the CAS gives exclusive write
                            // access to this slot until we bump `seq`.
                            slot.value.with_mut(|p| unsafe { (*p).write(value) });
                            // ORDERING: Release — publishes the slot write
                            // to the consumer's Acquire load of `seq`.
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            self.metrics.push_ok.inc();
                            self.metrics.depth.set(self.approx_len() as u64);
                            return Ok(());
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => {
                    // full (lap behind): the producer must retry or block
                    self.metrics.push_full.inc();
                    return Err(value);
                }
                // ORDERING: Relaxed — refreshed hint; any value is
                // immediately re-validated by the Acquire `seq` load.
                _ => pos = self.enqueue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Try to dequeue; `None` when empty.
    pub fn pop(&self) -> Option<T> {
        // ORDERING: Relaxed — starting hint for the CAS loop, as in `push`.
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            // ORDERING: Acquire — pairs with the producer's Release on
            // `seq`, making the written value visible before we read it.
            let seq = slot.seq.load(Ordering::Acquire);
            // Wrapping difference, as in `push` — survives pos wraparound.
            match seq.wrapping_sub(pos.wrapping_add(1)) as isize {
                0 => {
                    // ORDERING: Relaxed/Relaxed — claiming the cursor needs
                    // no edge of its own; visibility of the value came from
                    // the Acquire `seq` load that qualified this slot.
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: winning the CAS gives exclusive read
                            // access; the producer's Release store on `seq`
                            // made the value visible.
                            let value = slot.value.with(|p| unsafe { (*p).assume_init_read() });
                            // ORDERING: Release — hands the emptied slot
                            // back to producers' Acquire loads of `seq`.
                            slot.seq
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            self.metrics.pop_ok.inc();
                            // One load when no producer is parked; see the
                            // backoff module for the lost-wakeup analysis.
                            self.not_full.notify();
                            return Some(value);
                        }
                        Err(actual) => pos = actual,
                    }
                }
                d if d < 0 => {
                    self.metrics.pop_empty.inc();
                    return None; // empty
                }
                // ORDERING: Relaxed — refreshed hint, re-validated above.
                _ => pos = self.dequeue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Enqueue, adaptively waiting while the queue is full: bounded spin,
    /// bounded `yield_now`, then park until a consumer pops. The old
    /// implementation never escalated past `yield_now`, so a full queue
    /// with a descheduled consumer livelocked at 100% CPU — on a single
    /// core the spinning producer actively kept the consumer off the CPU
    /// it needed to drain.
    pub fn push_blocking(&self, value: T) {
        let mut slot = Some(value);
        self.not_full
            .wait_until(&self.policy, &self.metrics.producer, || {
                match self.push(slot.take().expect("value still pending")) {
                    Ok(()) => Some(()),
                    Err(v) => {
                        slot = Some(v);
                        None
                    }
                }
            });
    }

    /// Approximate number of queued items — a *racy estimate*, for
    /// diagnostics only. The two cursors are read independently (no
    /// snapshot), so concurrent pushes/pops between the two loads can make
    /// the raw difference negative or larger than `capacity()`; the result
    /// is clamped to `[0, capacity]` so the depth gauge never records an
    /// impossible high-water mark. The wrapping subtraction keeps the
    /// estimate correct across counter wraparound.
    pub fn approx_len(&self) -> usize {
        // ORDERING: Relaxed — racy-by-design diagnostic (see above); no
        // ordering would turn two independent loads into a snapshot.
        let e = self.enqueue_pos.load(Ordering::Relaxed);
        let d = self.dequeue_pos.load(Ordering::Relaxed);
        let diff = e.wrapping_sub(d);
        if (diff as isize) < 0 {
            0
        } else {
            diff.min(self.capacity())
        }
    }

    pub fn is_empty(&self) -> bool {
        self.approx_len() == 0
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        // Drain any remaining values so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::sync::atomic::AtomicU64;
    use check::thread;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = MpmcQueue::with_capacity(8);
        for i in 0..8 {
            q.push(i).expect("has room");
        }
        assert!(q.push(99).is_err(), "queue is full");
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[cfg(feature = "obs-enabled")]
    #[test]
    fn full_and_empty_paths_hit_counters() {
        let reg = obs::Registry::default();
        let q = MpmcQueue::with_metrics(2, QueueMetrics::registered(&reg, "q"));
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.push(3).is_err(), "capacity exceeded");
        let s = reg.snapshot();
        assert_eq!(s.counter("q.push_ok"), 2);
        assert_eq!(s.counter("q.push_full"), 1, "full retry must be counted");
        assert_eq!(s.gauge("q.depth").high_water, 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        let s = reg.snapshot();
        assert_eq!(s.counter("q.pop_ok"), 2);
        assert_eq!(s.counter("q.pop_empty"), 1);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(MpmcQueue::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(MpmcQueue::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(MpmcQueue::<u8>::with_capacity(8).capacity(), 8);
        assert_eq!(MpmcQueue::<u8>::with_capacity(9).capacity(), 16);
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = MpmcQueue::with_capacity(4);
        for lap in 0..100 {
            for i in 0..4 {
                q.push(lap * 4 + i).expect("room");
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(lap * 4 + i));
            }
        }
    }

    /// Regression: the lap comparisons used to be computed as
    /// `seq as isize - pos as isize`, which breaks when the free-running
    /// cursors cross `usize::MAX` — the difference of the raw casts is
    /// nowhere near the true (wrapping) lap distance, so a healthy queue
    /// reported itself full/empty forever. Start both cursors one lap
    /// short of the wrap and push/pop across it.
    #[test]
    fn seq_counters_survive_usize_wraparound() {
        let cap = 4usize;
        // Highest capacity-aligned start: the cursors wrap after `cap`
        // pushes.
        let start = usize::MAX - (cap - 1);
        let q = MpmcQueue::with_start_pos(cap, QueueMetrics::default(), start);
        // Fill the lap that straddles the wrap.
        for i in 0..cap {
            q.push(i).expect("room before wrap");
            assert_eq!(q.approx_len(), i + 1, "len across the wrap");
        }
        assert!(q.push(99).is_err(), "full exactly at capacity");
        // Drain across the wrap: FIFO preserved, len counts down.
        for i in 0..cap {
            assert_eq!(q.pop(), Some(i));
            assert_eq!(q.approx_len(), cap - i - 1);
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        // Several more post-wrap laps for good measure.
        for lap in 0..3 {
            for i in 0..cap {
                q.push(lap * 10 + i).expect("room");
            }
            for i in 0..cap {
                assert_eq!(q.pop(), Some(lap * 10 + i));
            }
        }
    }

    /// The length estimate is clamped: whatever the interleaving, it never
    /// exceeds capacity (it used to, transiently, when the two cursor
    /// loads straddled concurrent pops — poisoning the depth gauge's
    /// high-water mark).
    #[test]
    fn approx_len_is_clamped_to_capacity() {
        let q = Arc::new(MpmcQueue::with_capacity(4));
        let stop = Arc::new(AtomicU64::new(0));
        let observer = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut max_seen = 0;
                while stop.load(Ordering::Relaxed) == 0 {
                    max_seen = max_seen.max(q.approx_len());
                }
                max_seen
            })
        };
        for _ in 0..10_000 {
            if q.push(1u32).is_ok() {
                q.pop();
            }
        }
        stop.store(1, Ordering::Relaxed);
        let max_seen = observer.join().expect("observer");
        assert!(
            max_seen <= q.capacity(),
            "approx_len leaked past capacity: {max_seen}"
        );
    }

    #[test]
    fn values_are_dropped_on_queue_drop() {
        let counter = Arc::new(AtomicU64::new(0));
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = MpmcQueue::with_capacity(8);
            for _ in 0..5 {
                q.push(Tracked(counter.clone())).map_err(|_| ()).unwrap();
            }
            let _ = q.pop(); // 1 dropped here
        }
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    /// MPSC stress: many producers, one consumer (the offload pattern).
    /// On a single-core host this still exercises the atomics via
    /// preemption.
    #[test]
    fn mpsc_stress_preserves_all_items() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 2_000;
        let q = Arc::new(MpmcQueue::with_capacity(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..PER {
                    q.push_blocking(p * PER + i);
                }
            }));
        }
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut seen = vec![Vec::new(); PRODUCERS as usize];
                let mut got = 0;
                while got < PRODUCERS * PER {
                    if let Some(v) = q.pop() {
                        seen[(v / PER) as usize].push(v % PER);
                        got += 1;
                    } else {
                        thread::yield_now();
                    }
                }
                seen
            })
        };
        for h in handles {
            h.join().expect("producer");
        }
        let seen = consumer.join().expect("consumer");
        for (p, items) in seen.iter().enumerate() {
            assert_eq!(items.len() as u64, PER, "producer {p} count");
            // Per-producer FIFO must be preserved.
            assert!(
                items.windows(2).all(|w| w[0] < w[1]),
                "producer {p} order violated"
            );
        }
    }

    /// Regression for the busy-wait bug: a producer against a *stalled*
    /// consumer must escalate to parking (visible in the backoff
    /// counters), then complete once the consumer pops. The old
    /// `push_blocking` yielded forever and never parked.
    #[cfg(feature = "obs-enabled")]
    #[test]
    fn blocked_producer_parks_against_stalled_consumer() {
        let reg = obs::Registry::default();
        let q = Arc::new(MpmcQueue::with_metrics(
            2,
            QueueMetrics::registered(&reg, "q"),
        ));
        q.push(0u32).unwrap();
        q.push(1u32).unwrap();
        let producer = {
            let q = q.clone();
            thread::spawn(move || q.push_blocking(2u32))
        };
        // The consumer is stalled (this thread does not pop). The producer
        // must burn through its spin/yield budget and park.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while reg.snapshot().counter("q.producer.parks") == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "producer never parked; counters: yields={} spins={}",
                reg.snapshot().counter("q.producer.yields"),
                reg.snapshot().counter("q.producer.spins"),
            );
            thread::yield_now();
        }
        // Unstall: one pop frees a slot and wakes the producer.
        assert_eq!(q.pop(), Some(0));
        producer.join().expect("producer completes after wake");
        let s = reg.snapshot();
        assert!(s.counter("q.producer.wakes") >= 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    /// MPMC stress: concurrent producers and consumers; total multiset of
    /// items must be preserved exactly.
    #[test]
    fn mpmc_stress_no_loss_no_duplication() {
        const N: u64 = 4_000;
        let q = Arc::new(MpmcQueue::with_capacity(32));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..N {
                        q.push_blocking(p * N + i + 1);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                let sum = sum.clone();
                let count = count.clone();
                thread::spawn(move || loop {
                    if count.load(Ordering::SeqCst) >= 2 * N {
                        break;
                    }
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::SeqCst);
                        count.fetch_add(1, Ordering::SeqCst);
                    } else {
                        thread::yield_now();
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().expect("producer");
        }
        for h in consumers {
            h.join().expect("consumer");
        }
        let expect: u64 = (1..=N).sum::<u64>() + (N + 1..=2 * N).sum::<u64>();
        assert_eq!(count.load(Ordering::SeqCst), 2 * N);
        assert_eq!(sum.load(Ordering::SeqCst), expect);
    }
}
