//! Live mode: the offload infrastructure on real OS threads (paper §3).
//!
//! One dedicated offload thread per rank services the lock-free command
//! queue and is the only thread that touches the message layer. The
//! message layer is any [`rtmpi::Transport`]: the in-process mailboxes
//! (`rtmpi::RtMpi`, push-style, nothing to poll) or the socket wire
//! backend (`crates/wire`, a real pending protocol that advances only
//! when the owner polls it — which is exactly what this thread does, and
//! exactly what the paper's asynchronous-progress argument is about).
//! Application threads — any number, concurrently, i.e. full
//! `MPI_THREAD_MULTIPLE` semantics — serialize their calls into
//! [`Command`]s, allocate a request-pool slot for the reply, and either
//! return immediately (nonblocking) or spin on the slot's done flag
//! (blocking), never entering the message layer themselves.
//!
//! Blocking collectives are *converted to nonblocking schedules* inside the
//! offload thread (paper §3.3): a barrier or allreduce issued by one
//! application thread never prevents the offload thread from servicing
//! other threads' commands. The schedules are the same round-based
//! constructions used by the simulated MPI (`mpisim::nbc`) — one
//! implementation of the algorithms, two executors.

use check::thread::JoinHandle;
use std::sync::Arc;
use std::time::Instant;

use mpisim::nbc::{self, DataSrc, RecvAction, Round};
use mpisim::types::{combine, Bytes, Dtype, ReduceOp};
use rtmpi::{OpOutcome, Transport, TransportError};

use crate::backoff::{BackoffMetrics, WaitPolicy, WakeSignal};
use crate::lane::{LaneMetrics, LaneSet};
use crate::pool::{Handle, PoolMetrics, RequestPool};
use crate::queue::{MpmcQueue, QueueMetrics};

/// Application tags must stay below this (internal collective tag space).
/// The offload thread's schedules tag their rounds inside
/// `[rtmpi::TAG_COLL_BASE, TAG_COLL_BASE + TAG_COLL_SPAN)`; direct-mode
/// schedules (`approaches::live`) use the sibling range above it. Wildcard
/// receives never match either (see `rtmpi::matchq`).
pub const TAG_INTERNAL_BASE: u32 = rtmpi::TAG_COLL_BASE;

/// Result of a completed offloaded operation.
#[derive(Clone, Debug)]
pub enum Completion {
    /// A send was handed to the message layer.
    Sent,
    /// A receive completed.
    Received(rtmpi::Status, Arc<[u8]>),
    /// A collective completed; payload is its result buffer (empty for
    /// barrier).
    Collective(Arc<[u8]>),
    /// The transport could not complete the operation: the peer died or
    /// the configured per-op timeout expired. Surfaced instead of hanging.
    Failed(TransportError),
}

/// A serialized MPI call (what travels on the command queue).
pub enum Command {
    Isend {
        dst: usize,
        tag: u32,
        data: Arc<[u8]>,
        slot: Handle,
    },
    Irecv {
        src: Option<usize>,
        tag: Option<u32>,
        slot: Handle,
    },
    Collective {
        kind: CollKind,
        slot: Handle,
    },
    /// Finish outstanding work, then exit the offload thread.
    Shutdown,
}

/// Offloadable collective operations — the full `Comm` collective surface.
/// Each maps onto a round-based nonblocking schedule from [`mpisim::nbc`]
/// (see [`nbc_plan`]); the same plans drive the direct-mode inline executor
/// in `approaches::live`.
pub enum CollKind {
    Barrier,
    /// Element-wise allreduce of `data` (raw little-endian lanes of
    /// `dtype`). Rabenseifner reduce-scatter + allgather kicks in for large
    /// payloads on power-of-two worlds (`mpisim::nbc::allreduce_rounds_sized`).
    Allreduce {
        dtype: Dtype,
        op: ReduceOp,
        data: Vec<u8>,
    },
    /// Element-wise reduce to `root`; the result buffer is meaningful on
    /// the root only (other ranks get their partial back).
    Reduce {
        root: usize,
        dtype: Dtype,
        op: ReduceOp,
        data: Vec<u8>,
    },
    /// Personalized all-to-all of `block`-byte blocks.
    Alltoall {
        input: Vec<u8>,
        block: usize,
    },
    /// Broadcast from `root` (payload on root only).
    Bcast {
        root: usize,
        payload: Vec<u8>,
    },
    /// Allgather of equal contributions.
    Allgather {
        mine: Vec<u8>,
    },
    /// Gather of equal `mine` blocks to `root` (root gets `size × block`
    /// bytes; other ranks get their own block back).
    Gather {
        root: usize,
        mine: Vec<u8>,
    },
    /// Scatter of `block`-byte blocks from `root`'s `input` (empty on
    /// non-roots); every rank gets its block.
    Scatter {
        root: usize,
        input: Vec<u8>,
        block: usize,
    },
}

/// Which command path carries commands from application threads to the
/// offload thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommandPath {
    /// One shared Vyukov MPMC ring — every producer CASes the same cursor.
    /// Kept as the comparison baseline for the fig04 contention study.
    SharedQueue,
    /// Per-application-thread SPSC lanes with an MPMC overflow ring — the
    /// sharded path (default). See [`crate::lane`].
    Lanes,
}

/// Per-lane drain budget of the offload thread's sweep (the fairness rule:
/// no lane hands over more than this many commands before every other lane
/// has been offered service).
const DRAIN_BUDGET: usize = 64;

/// How many SPSC lanes each rank provisions before the overflow ring
/// catches further producer threads.
const DEFAULT_LANES: usize = 8;

/// The command channel behind [`OffloadHandle`]: either path, plus the
/// doorbell the idle offload thread parks on.
enum CmdChannel {
    Shared {
        queue: Box<MpmcQueue<Command>>,
        doorbell: WakeSignal,
    },
    Lanes(Box<LaneSet<Command>>),
}

impl CmdChannel {
    fn push_blocking(&self, cmd: Command) {
        match self {
            CmdChannel::Shared { queue, doorbell } => {
                queue.push_blocking(cmd);
                doorbell.notify();
            }
            CmdChannel::Lanes(lanes) => lanes.push_blocking(cmd),
        }
    }

    /// Drain up to `budget` commands per lane (or `budget` total for the
    /// shared queue) into `f`; returns how many were taken.
    fn drain(&self, budget: usize, mut f: impl FnMut(Command)) -> usize {
        match self {
            CmdChannel::Shared { queue, .. } => {
                let mut n = 0;
                while n < budget {
                    match queue.pop() {
                        Some(cmd) => {
                            f(cmd);
                            n += 1;
                        }
                        None => break,
                    }
                }
                n
            }
            CmdChannel::Lanes(lanes) => lanes.drain(budget, f),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            CmdChannel::Shared { queue, .. } => queue.is_empty(),
            CmdChannel::Lanes(lanes) => lanes.is_empty(),
        }
    }

    fn approx_len(&self) -> usize {
        match self {
            CmdChannel::Shared { queue, .. } => queue.approx_len(),
            CmdChannel::Lanes(lanes) => lanes.approx_len(),
        }
    }

    /// Park the (fully idle) offload thread until a producer pushes.
    fn wait_nonempty(&self, policy: &WaitPolicy, metrics: &BackoffMetrics) {
        match self {
            CmdChannel::Shared { queue, doorbell } => {
                doorbell.wait_until(policy, metrics, || (!queue.is_empty()).then_some(()));
            }
            CmdChannel::Lanes(lanes) => lanes.wait_nonempty(metrics),
        }
    }
}

/// Cloneable per-rank handle used by application threads.
#[derive(Clone)]
pub struct OffloadHandle {
    chan: Arc<CmdChannel>,
    pool: Arc<RequestPool<Completion>>,
    registry: obs::Registry,
    transport_obs: Option<obs::Registry>,
    rank: usize,
    size: usize,
}

/// Owner object for one rank: join the offload thread via [`finalize`], or
/// take the transport back via [`finalize_reclaim`] (e.g. to run several
/// approaches sequentially over one socket mesh).
///
/// [`finalize`]: OffloadRank::finalize
/// [`finalize_reclaim`]: OffloadRank::finalize_reclaim
pub struct OffloadRank<T: Transport = rtmpi::RtMpi> {
    handle: OffloadHandle,
    thread: Option<JoinHandle<T>>,
}

/// Build an `n`-rank live world: spawns one offload thread per rank over a
/// fresh `rtmpi` world. This is the `MPI_Init` interposition point of the
/// paper's `LD_PRELOAD` library.
pub fn offload_world(n: usize) -> Vec<OffloadRank> {
    offload_world_sized(n, 1024, 1024)
}

/// As [`offload_world`] with explicit command-queue and request-pool sizes.
pub fn offload_world_sized(n: usize, queue_cap: usize, pool_cap: usize) -> Vec<OffloadRank> {
    offload_world_configured(n, queue_cap, pool_cap, CommandPath::Lanes)
}

/// As [`offload_world_sized`] with an explicit [`CommandPath`] — the knob
/// the fig04 contention study flips to compare the sharded lanes against
/// the single shared MPMC ring. For `Lanes`, `queue_cap` sizes each SPSC
/// lane and the overflow ring.
pub fn offload_world_configured(
    n: usize,
    queue_cap: usize,
    pool_cap: usize,
    path: CommandPath,
) -> Vec<OffloadRank> {
    rtmpi::world(n)
        .into_iter()
        .map(|mpi| offload_rank_configured(mpi, queue_cap, pool_cap, path))
        .collect()
}

/// Put one offload thread in front of an owned transport (the per-process
/// entry point for the wire backend, where each rank builds exactly one
/// transport from its environment).
pub fn offload_rank<T: Transport>(transport: T) -> OffloadRank<T> {
    offload_rank_configured(transport, 1024, 1024, CommandPath::Lanes)
}

/// As [`offload_rank`] with explicit sizes and [`CommandPath`].
pub fn offload_rank_configured<T: Transport>(
    transport: T,
    queue_cap: usize,
    pool_cap: usize,
    path: CommandPath,
) -> OffloadRank<T> {
    let registry = obs::Registry::default();
    let chan = Arc::new(match path {
        CommandPath::SharedQueue => CmdChannel::Shared {
            queue: Box::new(MpmcQueue::with_metrics(
                queue_cap,
                QueueMetrics::registered(&registry, "queue"),
            )),
            doorbell: WakeSignal::new(),
        },
        CommandPath::Lanes => CmdChannel::Lanes(Box::new(LaneSet::with_metrics(
            DEFAULT_LANES,
            queue_cap,
            queue_cap,
            LaneMetrics::registered(&registry, "lanes"),
        ))),
    });
    let pool = Arc::new(RequestPool::with_metrics(
        pool_cap,
        PoolMetrics::registered(&registry, "pool"),
    ));
    let handle = OffloadHandle {
        chan: chan.clone(),
        pool: pool.clone(),
        registry: registry.clone(),
        transport_obs: transport.obs_registry(),
        rank: transport.rank(),
        size: transport.size(),
    };
    let thread = check::thread::spawn_named(format!("offload-{}", transport.rank()), move || {
        offload_main(transport, chan, pool, registry)
    });
    OffloadRank {
        handle,
        thread: Some(thread),
    }
}

impl<T: Transport> OffloadRank<T> {
    pub fn handle(&self) -> OffloadHandle {
        self.handle.clone()
    }

    /// Shut the offload thread down after it drains outstanding work
    /// (the `MPI_Finalize` interposition point).
    pub fn finalize(mut self) {
        let _ = self.shutdown_join();
    }

    /// As [`finalize`], but hand the transport back to the caller — so a
    /// process can run baseline, iprobe and offload sequentially over the
    /// same socket mesh.
    ///
    /// [`finalize`]: OffloadRank::finalize
    pub fn finalize_reclaim(mut self) -> T {
        self.shutdown_join().expect("offload thread joined once")
    }

    fn shutdown_join(&mut self) -> Option<T> {
        let t = self.thread.take()?;
        self.handle.chan.push_blocking(Command::Shutdown);
        Some(t.join().expect("offload thread exits cleanly"))
    }
}

impl<T: Transport> Drop for OffloadRank<T> {
    fn drop(&mut self) {
        let _ = self.shutdown_join();
    }
}

impl OffloadHandle {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Nonblocking send: serialize, enqueue, return. The visible cost is
    /// one pool allocation plus one queue push — independent of message
    /// size (paper Fig 4).
    pub fn isend(&self, dst: usize, tag: u32, data: Arc<[u8]>) -> Handle {
        assert!(tag < TAG_INTERNAL_BASE, "application tag too large");
        let slot = self.pool.alloc_blocking();
        self.chan.push_blocking(Command::Isend {
            dst,
            tag,
            data,
            slot,
        });
        slot
    }

    /// Nonblocking receive.
    pub fn irecv(&self, src: Option<usize>, tag: Option<u32>) -> Handle {
        let slot = self.pool.alloc_blocking();
        self.chan.push_blocking(Command::Irecv { src, tag, slot });
        slot
    }

    /// `MPI_Test`: a single done-flag check — no MPI entry at all.
    pub fn test(&self, h: Handle) -> bool {
        self.pool.is_done(h)
    }

    /// `MPI_Wait`: spin on the done flag, take the completion, free the
    /// slot.
    pub fn wait(&self, h: Handle) -> Completion {
        self.pool.wait_take(h).expect("completion value present")
    }

    /// As [`wait`], mapping transport failures (peer death, op timeout)
    /// to `Err` instead of a [`Completion::Failed`] variant.
    ///
    /// [`wait`]: OffloadHandle::wait
    pub fn wait_result(&self, h: Handle) -> Result<Completion, TransportError> {
        match self.wait(h) {
            Completion::Failed(e) => Err(e),
            c => Ok(c),
        }
    }

    /// Blocking send.
    pub fn send(&self, dst: usize, tag: u32, data: Arc<[u8]>) {
        let h = self.isend(dst, tag, data);
        match self.wait(h) {
            Completion::Sent => {}
            other => panic!("send completed as {other:?}"),
        }
    }

    /// Blocking receive.
    pub fn recv(&self, src: Option<usize>, tag: Option<u32>) -> (rtmpi::Status, Arc<[u8]>) {
        let h = self.irecv(src, tag);
        match self.wait(h) {
            Completion::Received(st, data) => (st, data),
            other => panic!("recv completed as {other:?}"),
        }
    }

    /// Begin an offloaded collective and return its request handle — the
    /// `MPI_Iallreduce`-family entry point. The offload thread converts it
    /// to a round schedule and drives it asynchronously; complete it with
    /// [`wait`] / [`wait_result`] (a [`Completion::Collective`] carries the
    /// result buffer, [`Completion::Failed`] surfaces peer death mid-
    /// schedule instead of hanging).
    ///
    /// [`wait`]: OffloadHandle::wait
    /// [`wait_result`]: OffloadHandle::wait_result
    pub fn start_collective(&self, kind: CollKind) -> Handle {
        let slot = self.pool.alloc_blocking();
        self.chan.push_blocking(Command::Collective { kind, slot });
        slot
    }

    fn collective(&self, kind: CollKind) -> Arc<[u8]> {
        let slot = self.start_collective(kind);
        match self.wait(slot) {
            Completion::Collective(out) => out,
            other => panic!("collective completed as {other:?}"),
        }
    }

    /// Offloaded barrier.
    pub fn barrier(&self) {
        let _ = self.collective(CollKind::Barrier);
    }

    /// Offloaded allreduce over raw `dtype` lanes.
    pub fn allreduce(&self, dtype: Dtype, op: ReduceOp, data: Vec<u8>) -> Vec<u8> {
        self.collective(CollKind::Allreduce { dtype, op, data })
            .to_vec()
    }

    /// Offloaded f64 sum allreduce.
    pub fn allreduce_f64_sum(&self, mine: &[f64]) -> Vec<f64> {
        let bytes: Vec<u8> = mine.iter().flat_map(|x| x.to_le_bytes()).collect();
        let out = self.allreduce(Dtype::F64, ReduceOp::Sum, bytes);
        out.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte lane")))
            .collect()
    }

    /// Offloaded reduce to `root` (result meaningful on the root only).
    pub fn reduce(&self, root: usize, dtype: Dtype, op: ReduceOp, data: Vec<u8>) -> Vec<u8> {
        self.collective(CollKind::Reduce {
            root,
            dtype,
            op,
            data,
        })
        .to_vec()
    }

    /// Offloaded all-to-all.
    pub fn alltoall(&self, input: Vec<u8>, block: usize) -> Vec<u8> {
        assert_eq!(input.len(), self.size * block);
        let out = self.collective(CollKind::Alltoall { input, block });
        out.to_vec()
    }

    /// Offloaded broadcast.
    pub fn bcast(&self, root: usize, payload: Vec<u8>) -> Vec<u8> {
        let out = self.collective(CollKind::Bcast { root, payload });
        out.to_vec()
    }

    /// Offloaded allgather.
    pub fn allgather(&self, mine: Vec<u8>) -> Vec<u8> {
        let out = self.collective(CollKind::Allgather { mine });
        out.to_vec()
    }

    /// Offloaded gather to `root` (root gets `size × block` bytes).
    pub fn gather(&self, root: usize, mine: Vec<u8>) -> Vec<u8> {
        let out = self.collective(CollKind::Gather { root, mine });
        out.to_vec()
    }

    /// Offloaded scatter from `root` (`input` empty on non-roots; `block`
    /// must agree on every rank).
    pub fn scatter(&self, root: usize, input: Vec<u8>, block: usize) -> Vec<u8> {
        if self.rank == root {
            assert_eq!(input.len(), self.size * block);
        }
        let out = self.collective(CollKind::Scatter { root, input, block });
        out.to_vec()
    }

    /// Queue depth (diagnostics).
    pub fn queued_commands(&self) -> usize {
        self.chan.approx_len()
    }

    /// This rank's metrics registry (queue/pool/offload-loop metrics).
    ///
    /// Snapshots taken here observe the offload thread live; take one
    /// before and one after a phase and [`obs::Snapshot::diff`] them.
    pub fn obs(&self) -> &obs::Registry {
        &self.registry
    }

    /// The transport's own metrics registry, when it keeps one (the wire
    /// backend's protocol counters — bytes on wire, rendezvous handshake
    /// attribution). `None` for the in-process substrate.
    pub fn transport_obs(&self) -> Option<&obs::Registry> {
        self.transport_obs.as_ref()
    }
}

// ---------------------------------------------------------------------------
// The offload thread.
// ---------------------------------------------------------------------------

/// An application-issued operation the transport has not completed yet.
struct InflightOp<R> {
    slot: Handle,
    req: R,
    /// Set only when the transport has an op timeout configured (keeps
    /// clock reads out of the in-process fast path entirely).
    issued: Option<Instant>,
}

/// One in-flight receive of a collective round: the transport request,
/// what to do with the payload, and the payload once it has arrived.
type NbcRecv<R> = (R, RecvAction, Option<Arc<[u8]>>);

struct LiveNbc<R> {
    rounds: Vec<Round>,
    cur: usize,
    /// Receives of the current round; the payload is filled in as each
    /// completes so round actions can be applied once all are present.
    inflight: Vec<NbcRecv<R>>,
    acc: Vec<u8>,
    input: Option<Vec<u8>>,
    tag: u32,
    slot: Handle,
}

fn completion_of(out: Result<OpOutcome, TransportError>) -> Completion {
    match out {
        Ok(OpOutcome::Sent) => Completion::Sent,
        Ok(OpOutcome::Received(st, d)) => Completion::Received(st, d),
        Err(e) => Completion::Failed(e),
    }
}

fn offload_main<T: Transport>(
    mut mpi: T,
    chan: Arc<CmdChannel>,
    pool: Arc<RequestPool<Completion>>,
    reg: obs::Registry,
) -> T {
    // Metric handles are resolved once; per-iteration cost is a couple of
    // relaxed atomic ops (and nothing at all in no-op builds).
    let drained_hist = reg.histogram("offload.drained_per_wakeup");
    let sweeps = reg.counter("offload.testany_sweeps");
    let converted = reg.counter("offload.coll_converted");
    let service_iters = reg.counter("offload.service_iters");
    let progress_polls = reg.counter("offload.progress_polls");
    let op_timeouts = reg.counter("offload.op_timeouts");
    // Consecutive service iterations with work in flight but no
    // advancement; the high-water mark is this loop's stall evidence
    // (the offload-side complement of the engine's stall watchdog).
    let no_advance_streak = reg.gauge("offload.no_advance_streak");
    let idle_backoff = BackoffMetrics {
        spins: reg.counter("offload.idle_spins"),
        yields: reg.counter("offload.idle_yields"),
        parks: reg.counter("offload.parks"),
        wakes: reg.counter("offload.wakes"),
    };
    let policy = WaitPolicy::default();

    let needs_progress = mpi.needs_progress();
    let op_timeout = mpi.op_timeout();
    let mut inflight: Vec<InflightOp<T::Req>> = Vec::new();
    // Collective-round sends whose outcomes nobody waits on; swept so the
    // transport can retire their state.
    let mut loose_sends: Vec<T::Req> = Vec::new();
    let mut nbcs: Vec<LiveNbc<T::Req>> = Vec::new();
    let mut coll_seq: u32 = 0;
    let mut open = true;
    let mut streak: u64 = 0;
    loop {
        let mut advanced = false;
        // Clock reads only happen on transports with a configured timeout
        // (i.e. never for the in-process substrate, incl. under Miri).
        let issued_at = op_timeout.map(|_| Instant::now());
        // 1. Drain the command channel (round-robin, budgeted per lane).
        let drained = chan.drain(DRAIN_BUDGET, |cmd| match cmd {
            Command::Isend {
                dst,
                tag,
                data,
                slot,
            } => {
                let req = mpi.isend(dst, tag, data);
                // In-process sends complete at hand-off; wire sends stay
                // pending until flushed and (rendezvous) acknowledged.
                match mpi.try_take(&req) {
                    Some(out) => pool.complete(slot, completion_of(out)),
                    None => inflight.push(InflightOp {
                        slot,
                        req,
                        issued: issued_at,
                    }),
                }
            }
            Command::Irecv { src, tag, slot } => {
                let req = mpi.irecv(src, tag);
                match mpi.try_take(&req) {
                    Some(out) => pool.complete(slot, completion_of(out)),
                    None => inflight.push(InflightOp {
                        slot,
                        req,
                        issued: issued_at,
                    }),
                }
            }
            Command::Collective { kind, slot } => {
                // Blocking collective converted to a nonblocking
                // schedule (paper §3.3).
                converted.inc();
                coll_seq = coll_seq.wrapping_add(1);
                let tag = TAG_INTERNAL_BASE + (coll_seq % rtmpi::TAG_COLL_SPAN);
                nbcs.push(start_live_nbc(&mut mpi, kind, tag, slot, &mut loose_sends));
            }
            Command::Shutdown => open = false,
        });
        if drained > 0 {
            advanced = true;
            drained_hist.record(drained as u64);
        }
        // 2. Drive the transport's pending protocol state. For the wire
        // backend this *is* the paper's asynchronous progress: rendezvous
        // handshakes complete here, during application compute, instead of
        // inside MPI_Wait.
        if needs_progress {
            progress_polls.inc();
            if mpi.progress() {
                advanced = true;
            }
        }
        // 3. Sweep in-flight operations (the MPI_Testany analogue).
        if !inflight.is_empty() {
            sweeps.inc();
        }
        let mut i = 0;
        while i < inflight.len() {
            let op = &inflight[i];
            let completed = match mpi.try_take(&op.req) {
                Some(out) => {
                    pool.complete(op.slot, completion_of(out));
                    true
                }
                None => match (op_timeout, op.issued) {
                    (Some(limit), Some(t0)) if t0.elapsed() >= limit => {
                        mpi.cancel(&op.req);
                        op_timeouts.inc();
                        pool.complete(
                            op.slot,
                            Completion::Failed(TransportError::Timeout {
                                waited_ms: limit.as_millis() as u64,
                            }),
                        );
                        true
                    }
                    _ => false,
                },
            };
            if completed {
                inflight.swap_remove(i);
                advanced = true;
            } else {
                i += 1;
            }
        }
        loose_sends.retain(|req| mpi.try_take(req).is_none());
        // 4. Advance collective schedules.
        let mut i = 0;
        while i < nbcs.len() {
            match advance_live_nbc(&mut mpi, &mut nbcs[i], &mut loose_sends) {
                Ok(true) => {
                    let done = nbcs.swap_remove(i);
                    pool.complete(done.slot, Completion::Collective(Arc::from(done.acc)));
                    advanced = true;
                }
                Ok(false) => i += 1,
                Err(e) => {
                    let dead = nbcs.swap_remove(i);
                    pool.complete(dead.slot, Completion::Failed(e));
                    advanced = true;
                }
            }
        }
        // 5. Exit or idle.
        if !open && inflight.is_empty() && nbcs.is_empty() && chan.is_empty() {
            // Flush loose collective sends so the transport comes back
            // with no dangling protocol state.
            while !loose_sends.is_empty() {
                if needs_progress {
                    mpi.progress();
                }
                loose_sends.retain(|req| mpi.try_take(req).is_none());
                check::thread::yield_now();
            }
            return mpi;
        }
        if advanced {
            service_iters.inc();
            if streak != 0 {
                streak = 0;
                no_advance_streak.set(0);
            }
        } else if inflight.is_empty() && nbcs.is_empty() && loose_sends.is_empty() {
            // Fully idle: nothing in flight needs polling, so the only
            // possible wake source is a new command — park on the doorbell
            // (spin → yield → park). Safe for the wire backend too: sends
            // complete only after their bytes are flushed, so an empty
            // in-flight set means no outbox bytes are stuck, and inbound
            // traffic waits in kernel buffers until a receive command
            // arrives (which rings the doorbell).
            chan.wait_nonempty(&policy, &idle_backoff);
        } else {
            // Work is in flight but did not advance: completion depends on
            // peers (push-style mailboxes) or on polling the sockets, so
            // this thread must keep polling — bounded yield, never park.
            streak += 1;
            no_advance_streak.set(streak);
            idle_backoff.yields.inc();
            check::thread::yield_now();
        }
    }
}

/// Compile a collective into its initial accumulator, retained input
/// buffer, and round schedule. This is the one mapping from the `Comm`
/// collective surface onto the [`mpisim::nbc`] round generators — shared by
/// the offload thread's executor here and the direct-mode inline executor
/// in `approaches::live`, so the two live paths cannot drift apart on
/// algorithm selection (e.g. when Rabenseifner kicks in).
pub fn nbc_plan(p: usize, r: usize, kind: CollKind) -> (Vec<u8>, Option<Vec<u8>>, Vec<Round>) {
    match kind {
        CollKind::Barrier => (Vec::new(), None, nbc::barrier_rounds(p, r)),
        CollKind::Allreduce { dtype, op, data } => {
            let rounds = nbc::allreduce_rounds_sized(p, r, dtype, op, data.len());
            (data, None, rounds)
        }
        CollKind::Reduce {
            root,
            dtype,
            op,
            data,
        } => {
            let rounds = nbc::reduce_rounds(p, r, root, dtype, op);
            (data, None, rounds)
        }
        CollKind::Alltoall { input, block } => {
            assert_eq!(input.len(), p * block);
            let mut acc = vec![0u8; p * block];
            acc[r * block..(r + 1) * block].copy_from_slice(&input[r * block..(r + 1) * block]);
            (acc, Some(input), nbc::alltoall_rounds(p, r, block))
        }
        CollKind::Bcast { root, payload } => {
            let acc = if r == root { payload } else { Vec::new() };
            (acc, None, nbc::bcast_rounds(p, r, root))
        }
        CollKind::Allgather { mine } => {
            let block = mine.len();
            let mut acc = vec![0u8; p * block];
            acc[r * block..(r + 1) * block].copy_from_slice(&mine);
            (acc, None, nbc::allgather_rounds(p, r, block))
        }
        CollKind::Gather { root, mine } => {
            let block = mine.len();
            let acc = if r == root {
                let mut acc = vec![0u8; p * block];
                acc[r * block..(r + 1) * block].copy_from_slice(&mine);
                acc
            } else {
                // Non-roots send their accumulator up and keep it.
                mine
            };
            (acc, None, nbc::gather_rounds(p, r, root, block))
        }
        CollKind::Scatter { root, input, block } => {
            if r == root {
                assert_eq!(input.len(), p * block);
                let acc = input[r * block..(r + 1) * block].to_vec();
                (acc, Some(input), nbc::scatter_rounds(p, r, root, block))
            } else {
                // Replaced by the root's block on arrival.
                (Vec::new(), None, nbc::scatter_rounds(p, r, root, block))
            }
        }
    }
}

/// Apply one completed round receive to the accumulator — the reduction /
/// placement step of the schedule, shared with the direct-mode executor.
pub fn nbc_apply(acc: &mut Vec<u8>, action: &RecvAction, data: &[u8]) {
    match action {
        RecvAction::Discard => {}
        RecvAction::ReplaceAcc => *acc = data.to_vec(),
        RecvAction::CombineAcc { dtype, op } => combine(*dtype, *op, acc, data),
        RecvAction::CombineAt { offset, dtype, op } => {
            let end = offset + data.len();
            combine(*dtype, *op, &mut acc[*offset..end], data);
        }
        RecvAction::StoreAt(off) => acc[*off..off + data.len()].copy_from_slice(data),
    }
}

/// Materialize a round send's payload from the schedule state, shared with
/// the direct-mode executor.
pub fn nbc_resolve(acc: &[u8], input: Option<&Vec<u8>>, src: &DataSrc) -> Vec<u8> {
    match src {
        DataSrc::Acc => acc.to_vec(),
        DataSrc::AccChunk(r) => acc[r.clone()].to_vec(),
        DataSrc::InputChunk(r) => input.expect("input buffer")[r.clone()].to_vec(),
        DataSrc::Fixed(b) => match b {
            Bytes::Real(v) => v.as_ref().clone(),
            Bytes::Synthetic(n) => vec![0; *n],
        },
    }
}

fn start_live_nbc<T: Transport>(
    mpi: &mut T,
    kind: CollKind,
    tag: u32,
    slot: Handle,
    loose_sends: &mut Vec<T::Req>,
) -> LiveNbc<T::Req> {
    let (acc, input, rounds) = nbc_plan(mpi.size(), mpi.rank(), kind);
    let mut inst = LiveNbc {
        rounds,
        cur: 0,
        inflight: Vec::new(),
        acc,
        input,
        tag,
        slot,
    };
    post_live_round(mpi, &mut inst, loose_sends);
    inst
}

/// Post the sends and receives of round `cur` (no-op past the end).
fn post_live_round<T: Transport>(
    mpi: &mut T,
    inst: &mut LiveNbc<T::Req>,
    loose_sends: &mut Vec<T::Req>,
) {
    if inst.cur >= inst.rounds.len() {
        return;
    }
    let round = inst.rounds[inst.cur].clone();
    for send in &round.sends {
        let data = resolve_live(inst, &send.data);
        let req = mpi.isend(send.peer, inst.tag, Arc::from(data));
        if mpi.try_take(&req).is_none() {
            loose_sends.push(req);
        }
    }
    for recv in &round.recvs {
        let req = mpi.irecv(Some(recv.peer), Some(inst.tag));
        inst.inflight.push((req, recv.action.clone(), None));
    }
}

/// Returns `Ok(true)` when the schedule has fully completed, cascading
/// through as many rounds as complete immediately.
fn advance_live_nbc<T: Transport>(
    mpi: &mut T,
    inst: &mut LiveNbc<T::Req>,
    loose_sends: &mut Vec<T::Req>,
) -> Result<bool, TransportError> {
    loop {
        if inst.cur >= inst.rounds.len() {
            return Ok(true);
        }
        if !poll_nbc_inflight(mpi, inst)? {
            return Ok(false);
        }
        apply_live_actions(inst);
        inst.cur += 1;
        post_live_round(mpi, inst, loose_sends);
    }
}

/// Poll this round's receives, stashing payloads as they complete.
/// `Ok(true)` when every receive has its payload.
fn poll_nbc_inflight<T: Transport>(
    mpi: &mut T,
    inst: &mut LiveNbc<T::Req>,
) -> Result<bool, TransportError> {
    let mut all = true;
    for (req, _, data) in inst.inflight.iter_mut() {
        if data.is_some() {
            continue;
        }
        match mpi.try_take(req) {
            Some(Ok(OpOutcome::Received(_, d))) => *data = Some(d),
            Some(Ok(OpOutcome::Sent)) => unreachable!("receive completed as a send"),
            Some(Err(e)) => return Err(e),
            None => all = false,
        }
    }
    Ok(all)
}

fn apply_live_actions<R>(inst: &mut LiveNbc<R>) {
    for (_, action, data) in std::mem::take(&mut inst.inflight) {
        let data = data.expect("completed recv has data");
        nbc_apply(&mut inst.acc, &action, &data);
    }
}

fn resolve_live<R>(inst: &LiveNbc<R>, src: &DataSrc) -> Vec<u8> {
    nbc_resolve(&inst.acc, inst.input.as_ref(), src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_live<T: Send + 'static>(
        n: usize,
        f: impl Fn(OffloadHandle) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let ranks = offload_world(n);
        let handles: Vec<_> = ranks
            .iter()
            .map(|r| {
                let h = r.handle();
                let f = f.clone();
                thread::spawn(move || f(h))
            })
            .collect();
        let outs = handles
            .into_iter()
            .map(|h| h.join().expect("app thread"))
            .collect();
        for r in ranks {
            r.finalize();
        }
        outs
    }

    #[test]
    fn offloaded_ping_pong() {
        let outs = run_live(2, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 5, Arc::from(vec![1, 2, 3]));
                let (_, d) = mpi.recv(Some(1), Some(6));
                d.to_vec()
            } else {
                let (st, d) = mpi.recv(Some(0), Some(5));
                assert_eq!(st.source, 0);
                let mut back = d.to_vec();
                back.reverse();
                mpi.send(0, 6, Arc::from(back));
                Vec::new()
            }
        });
        assert_eq!(outs[0], vec![3, 2, 1]);
    }

    #[test]
    fn isend_returns_before_receiver_posts() {
        // Deterministic ordering: the receiver is gated on a barrier the
        // sender passes only after its isend has already *completed* — no
        // timing window, unlike the previous sleep-based version.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let outs = run_live(2, move |mpi| {
            if mpi.rank() == 0 {
                let h = mpi.isend(1, 1, Arc::from(vec![7u8; 100]));
                // The handle is usable immediately.
                let c = mpi.wait(h);
                gate.wait(); // release the receiver only now
                matches!(c, Completion::Sent)
            } else {
                gate.wait(); // guaranteed: sender's isend+wait already done
                let (_, d) = mpi.recv(Some(0), Some(1));
                d.len() == 100
            }
        });
        assert!(outs[0] && outs[1]);
    }

    #[test]
    fn test_polls_done_flag_only() {
        // Deterministic ordering: the receiver records its first test()
        // result *before* the barrier that releases the sender, so the
        // first poll is guaranteed to find the flag unset — the previous
        // version relied on a 3 ms sleep losing the race.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let outs = run_live(2, move |mpi| {
            if mpi.rank() == 0 {
                gate.wait(); // receiver has posted and polled once already
                mpi.send(1, 2, Arc::from(vec![1]));
                true
            } else {
                let h = mpi.irecv(Some(0), Some(2));
                let mut polls = 0u64;
                if !mpi.test(h) {
                    polls += 1;
                }
                gate.wait(); // only now may the sender send
                while !mpi.test(h) {
                    polls += 1;
                    thread::yield_now();
                }
                let _ = mpi.wait(h);
                polls > 0
            }
        });
        assert!(outs[1], "receiver actually had to poll");
    }

    /// Waiting the same handle twice is use-after-free of the pool slot:
    /// the generation check must kill it loudly (the old spin-wait hung
    /// forever on `is_done(stale) == false`).
    #[test]
    #[should_panic(expected = "stale request handle")]
    fn double_wait_on_live_handle_panics() {
        let ranks = offload_world(2);
        let h = ranks[0].handle();
        let r = h.isend(1, 1, Arc::from(vec![1, 2, 3]));
        let _ = h.wait(r); // first wait: takes the completion, frees the slot
        let _ = h.wait(r); // second wait: stale generation
    }

    /// Both command paths run the same traffic correctly — the fig04
    /// comparison knob must not change semantics.
    #[test]
    fn shared_queue_path_still_works() {
        let ranks = offload_world_configured(2, 64, 64, CommandPath::SharedQueue);
        let h0 = ranks[0].handle();
        let h1 = ranks[1].handle();
        let a = thread::spawn(move || {
            for i in 0..100u8 {
                h0.send(1, 1, Arc::from(vec![i]));
            }
        });
        let b = thread::spawn(move || {
            (0..100)
                .map(|_| h1.recv(Some(0), Some(1)).1[0])
                .collect::<Vec<_>>()
        });
        a.join().expect("sender");
        let got = b.join().expect("receiver");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        for r in ranks {
            r.finalize();
        }
    }

    /// The offload thread parks when fully idle instead of burning a core,
    /// and wakes on the doorbell when traffic resumes.
    #[cfg(feature = "obs-enabled")]
    #[test]
    fn idle_offload_thread_parks_and_wakes() {
        let ranks = offload_world(2);
        let h0 = ranks[0].handle();
        let h1 = ranks[1].handle();
        // Idle long enough for the offload threads to escalate to parking.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while h0.obs().snapshot().counter("offload.parks") == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "idle offload thread never parked"
            );
            thread::yield_now();
        }
        // Traffic still flows after parking (the doorbell wakes it).
        let sender = thread::spawn(move || h0.send(1, 7, Arc::from(vec![42])));
        let (_, d) = h1.recv(Some(0), Some(7));
        sender.join().expect("sender");
        assert_eq!(d[0], 42);
        for r in ranks {
            r.finalize();
        }
    }

    #[test]
    fn offloaded_barrier_synchronizes() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        let outs = run_live(4, move |mpi| {
            c2.fetch_add(1, Ordering::SeqCst);
            mpi.barrier();
            // Everyone must have incremented before anyone passes.
            c2.load(Ordering::SeqCst)
        });
        for o in outs {
            assert_eq!(o, 4);
        }
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn offloaded_allreduce_sums() {
        let outs = run_live(4, |mpi| mpi.allreduce_f64_sum(&[mpi.rank() as f64, 1.0]));
        for o in outs {
            assert_eq!(o, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn offloaded_alltoall_transposes() {
        let outs = run_live(3, |mpi| {
            let input: Vec<u8> = (0..3).map(|d| (mpi.rank() * 3 + d) as u8).collect();
            mpi.alltoall(input, 1)
        });
        for (r, o) in outs.iter().enumerate() {
            let expect: Vec<u8> = (0..3).map(|s| (s * 3 + r) as u8).collect();
            assert_eq!(o, &expect);
        }
    }

    #[test]
    fn offloaded_reduce_gather_scatter() {
        let outs = run_live(4, |mpi| {
            let r = mpi.rank();
            // Reduce to root 2: lanes are rank-tagged so the sum is checkable.
            let mine: Vec<u8> = [r as f64, 1.0]
                .iter()
                .flat_map(|x| x.to_le_bytes())
                .collect();
            let red = mpi.reduce(2, Dtype::F64, ReduceOp::Sum, mine);
            // Gather rank bytes to root 1.
            let g = mpi.gather(1, vec![r as u8; 2]);
            // Scatter distinct blocks from root 0.
            let input = if r == 0 {
                (0..8).map(|i| 10 + i as u8).collect()
            } else {
                Vec::new()
            };
            let s = mpi.scatter(0, input, 2);
            (red, g, s)
        });
        for (r, (red, g, s)) in outs.into_iter().enumerate() {
            if r == 2 {
                let lanes: Vec<f64> = red
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                assert_eq!(lanes, vec![6.0, 4.0]);
            }
            if r == 1 {
                assert_eq!(g, vec![0, 0, 1, 1, 2, 2, 3, 3]);
            }
            assert_eq!(s, vec![10 + 2 * r as u8, 11 + 2 * r as u8]);
        }
    }

    /// Large power-of-two allreduce takes the Rabenseifner reduce-scatter +
    /// allgather schedule (chunked CombineAt/StoreAt actions) and still
    /// sums correctly through the offload executor.
    #[test]
    fn offloaded_allreduce_takes_rsag_path() {
        let lanes = 4096; // 32 KiB ≥ the RSAG threshold, divisible by 4·8
        let outs = run_live(4, move |mpi| {
            let mine: Vec<f64> = (0..lanes).map(|l| (mpi.rank() + l) as f64).collect();
            mpi.allreduce_f64_sum(&mine)
        });
        for o in outs {
            for (l, &v) in o.iter().enumerate() {
                let expect: f64 = (0..4).map(|r| (r + l) as f64).sum();
                assert_eq!(v, expect, "lane {l}");
            }
        }
    }

    #[test]
    fn offloaded_bcast_and_allgather() {
        let outs = run_live(3, |mpi| {
            let payload = if mpi.rank() == 1 {
                vec![5u8, 6]
            } else {
                vec![]
            };
            let b = mpi.bcast(1, payload);
            let g = mpi.allgather(vec![mpi.rank() as u8]);
            (b, g)
        });
        for (b, g) in outs {
            assert_eq!(b, vec![5, 6]);
            assert_eq!(g, vec![0, 1, 2]);
        }
    }

    #[test]
    fn concurrent_app_threads_share_one_rank() {
        // THREAD_MULTIPLE: several app threads of the same rank issue
        // concurrently; the single offload thread serializes into rtmpi.
        let ranks = offload_world(2);
        let h0 = ranks[0].handle();
        let h1 = ranks[1].handle();
        let senders: Vec<_> = (0..4u32)
            .map(|t| {
                let h = h0.clone();
                thread::spawn(move || {
                    for i in 0..50u32 {
                        h.send(1, t, Arc::from(vec![(t * 100 + i % 100) as u8]));
                    }
                })
            })
            .collect();
        let receiver = thread::spawn(move || {
            let mut per_tag = vec![0u32; 4];
            for _ in 0..200 {
                let (st, _) = h1.recv(Some(0), None);
                per_tag[st.tag as usize] += 1;
            }
            per_tag
        });
        for s in senders {
            s.join().expect("sender");
        }
        let per_tag = receiver.join().expect("receiver");
        assert_eq!(per_tag, vec![50; 4]);
        for r in ranks {
            r.finalize();
        }
    }

    #[test]
    fn many_outstanding_requests_cycle_the_pool() {
        let outs = run_live(2, |mpi| {
            if mpi.rank() == 0 {
                for batch in 0..20 {
                    let hs: Vec<_> = (0..64)
                        .map(|i| mpi.isend(1, 3, Arc::from(vec![(batch * 64 + i) as u8])))
                        .collect();
                    for h in hs {
                        let _ = mpi.wait(h);
                    }
                }
                0
            } else {
                let mut n = 0;
                for _ in 0..(20 * 64) {
                    let _ = mpi.recv(Some(0), Some(3));
                    n += 1;
                }
                n
            }
        });
        assert_eq!(outs[1], 20 * 64);
    }
}
