//! Live mode: the offload infrastructure on real OS threads (paper §3).
//!
//! One dedicated offload thread per rank services the lock-free command
//! queue and is the only thread that touches the message layer (`rtmpi`).
//! Application threads — any number, concurrently, i.e. full
//! `MPI_THREAD_MULTIPLE` semantics — serialize their calls into
//! [`Command`]s, allocate a request-pool slot for the reply, and either
//! return immediately (nonblocking) or spin on the slot's done flag
//! (blocking), never entering the message layer themselves.
//!
//! Blocking collectives are *converted to nonblocking schedules* inside the
//! offload thread (paper §3.3): a barrier or allreduce issued by one
//! application thread never prevents the offload thread from servicing
//! other threads' commands. The schedules are the same round-based
//! constructions used by the simulated MPI (`mpisim::nbc`) — one
//! implementation of the algorithms, two executors.

use std::sync::Arc;
use std::thread::JoinHandle;

use mpisim::nbc::{self, DataSrc, RecvAction, Round};
use mpisim::types::{combine, Bytes};

use crate::pool::{Handle, PoolMetrics, RequestPool};
use crate::queue::{MpmcQueue, QueueMetrics};

/// Application tags must stay below this (internal collective tag space).
pub const TAG_INTERNAL_BASE: u32 = mpisim::TAG_INTERNAL_BASE;

/// Result of a completed offloaded operation.
#[derive(Clone, Debug)]
pub enum Completion {
    /// A send was handed to the message layer.
    Sent,
    /// A receive completed.
    Received(rtmpi::Status, Arc<Vec<u8>>),
    /// A collective completed; payload is its result buffer (empty for
    /// barrier).
    Collective(Arc<Vec<u8>>),
}

/// A serialized MPI call (what travels on the command queue).
pub enum Command {
    Isend {
        dst: usize,
        tag: u32,
        data: Arc<Vec<u8>>,
        slot: Handle,
    },
    Irecv {
        src: Option<usize>,
        tag: Option<u32>,
        slot: Handle,
    },
    Collective {
        kind: CollKind,
        slot: Handle,
    },
    /// Finish outstanding work, then exit the offload thread.
    Shutdown,
}

/// Offloadable collective operations.
pub enum CollKind {
    Barrier,
    /// Element-wise f64 sum allreduce.
    AllreduceF64Sum(Vec<u8>),
    /// Personalized all-to-all of `block`-byte blocks.
    Alltoall {
        input: Vec<u8>,
        block: usize,
    },
    /// Broadcast from `root` (payload on root only).
    Bcast {
        root: usize,
        payload: Vec<u8>,
    },
    /// Allgather of equal contributions.
    Allgather {
        mine: Vec<u8>,
    },
}

/// Cloneable per-rank handle used by application threads.
#[derive(Clone)]
pub struct OffloadHandle {
    queue: Arc<MpmcQueue<Command>>,
    pool: Arc<RequestPool<Completion>>,
    registry: obs::Registry,
    rank: usize,
    size: usize,
}

/// Owner object for one rank: join the offload thread via [`finalize`].
///
/// [`finalize`]: OffloadRank::finalize
pub struct OffloadRank {
    handle: OffloadHandle,
    thread: Option<JoinHandle<()>>,
}

/// Build an `n`-rank live world: spawns one offload thread per rank over a
/// fresh `rtmpi` world. This is the `MPI_Init` interposition point of the
/// paper's `LD_PRELOAD` library.
pub fn offload_world(n: usize) -> Vec<OffloadRank> {
    offload_world_sized(n, 1024, 1024)
}

/// As [`offload_world`] with explicit command-queue and request-pool sizes.
pub fn offload_world_sized(n: usize, queue_cap: usize, pool_cap: usize) -> Vec<OffloadRank> {
    rtmpi::world(n)
        .into_iter()
        .map(|mpi| {
            let registry = obs::Registry::default();
            let queue = Arc::new(MpmcQueue::with_metrics(
                queue_cap,
                QueueMetrics::registered(&registry, "queue"),
            ));
            let pool = Arc::new(RequestPool::with_metrics(
                pool_cap,
                PoolMetrics::registered(&registry, "pool"),
            ));
            let handle = OffloadHandle {
                queue: queue.clone(),
                pool: pool.clone(),
                registry: registry.clone(),
                rank: mpi.rank(),
                size: mpi.size(),
            };
            let thread = std::thread::Builder::new()
                .name(format!("offload-{}", mpi.rank()))
                .spawn(move || offload_main(mpi, queue, pool, registry))
                .expect("spawn offload thread");
            OffloadRank {
                handle,
                thread: Some(thread),
            }
        })
        .collect()
}

impl OffloadRank {
    pub fn handle(&self) -> OffloadHandle {
        self.handle.clone()
    }

    /// Shut the offload thread down after it drains outstanding work
    /// (the `MPI_Finalize` interposition point).
    pub fn finalize(mut self) {
        self.handle.queue.push_blocking(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            t.join().expect("offload thread exits cleanly");
        }
    }
}

impl Drop for OffloadRank {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.handle.queue.push_blocking(Command::Shutdown);
            t.join().expect("offload thread exits cleanly");
        }
    }
}

impl OffloadHandle {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Nonblocking send: serialize, enqueue, return. The visible cost is
    /// one pool allocation plus one queue push — independent of message
    /// size (paper Fig 4).
    pub fn isend(&self, dst: usize, tag: u32, data: Arc<Vec<u8>>) -> Handle {
        assert!(tag < TAG_INTERNAL_BASE, "application tag too large");
        let slot = self.pool.alloc_blocking();
        self.queue.push_blocking(Command::Isend {
            dst,
            tag,
            data,
            slot,
        });
        slot
    }

    /// Nonblocking receive.
    pub fn irecv(&self, src: Option<usize>, tag: Option<u32>) -> Handle {
        let slot = self.pool.alloc_blocking();
        self.queue.push_blocking(Command::Irecv { src, tag, slot });
        slot
    }

    /// `MPI_Test`: a single done-flag check — no MPI entry at all.
    pub fn test(&self, h: Handle) -> bool {
        self.pool.is_done(h)
    }

    /// `MPI_Wait`: spin on the done flag, take the completion, free the
    /// slot.
    pub fn wait(&self, h: Handle) -> Completion {
        self.pool.wait_take(h).expect("completion value present")
    }

    /// Blocking send.
    pub fn send(&self, dst: usize, tag: u32, data: Arc<Vec<u8>>) {
        let h = self.isend(dst, tag, data);
        match self.wait(h) {
            Completion::Sent => {}
            other => panic!("send completed as {other:?}"),
        }
    }

    /// Blocking receive.
    pub fn recv(&self, src: Option<usize>, tag: Option<u32>) -> (rtmpi::Status, Arc<Vec<u8>>) {
        let h = self.irecv(src, tag);
        match self.wait(h) {
            Completion::Received(st, data) => (st, data),
            other => panic!("recv completed as {other:?}"),
        }
    }

    fn collective(&self, kind: CollKind) -> Arc<Vec<u8>> {
        let slot = self.pool.alloc_blocking();
        self.queue.push_blocking(Command::Collective { kind, slot });
        match self.wait(slot) {
            Completion::Collective(out) => out,
            other => panic!("collective completed as {other:?}"),
        }
    }

    /// Offloaded barrier.
    pub fn barrier(&self) {
        let _ = self.collective(CollKind::Barrier);
    }

    /// Offloaded f64 sum allreduce.
    pub fn allreduce_f64_sum(&self, mine: &[f64]) -> Vec<f64> {
        let bytes: Vec<u8> = mine.iter().flat_map(|x| x.to_le_bytes()).collect();
        let out = self.collective(CollKind::AllreduceF64Sum(bytes));
        out.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte lane")))
            .collect()
    }

    /// Offloaded all-to-all.
    pub fn alltoall(&self, input: Vec<u8>, block: usize) -> Vec<u8> {
        assert_eq!(input.len(), self.size * block);
        let out = self.collective(CollKind::Alltoall { input, block });
        out.as_ref().clone()
    }

    /// Offloaded broadcast.
    pub fn bcast(&self, root: usize, payload: Vec<u8>) -> Vec<u8> {
        let out = self.collective(CollKind::Bcast { root, payload });
        out.as_ref().clone()
    }

    /// Offloaded allgather.
    pub fn allgather(&self, mine: Vec<u8>) -> Vec<u8> {
        let out = self.collective(CollKind::Allgather { mine });
        out.as_ref().clone()
    }

    /// Queue depth (diagnostics).
    pub fn queued_commands(&self) -> usize {
        self.queue.approx_len()
    }

    /// This rank's metrics registry (queue/pool/offload-loop metrics).
    ///
    /// Snapshots taken here observe the offload thread live; take one
    /// before and one after a phase and [`obs::Snapshot::diff`] them.
    pub fn obs(&self) -> &obs::Registry {
        &self.registry
    }
}

// ---------------------------------------------------------------------------
// The offload thread.
// ---------------------------------------------------------------------------

struct LiveNbc {
    rounds: Vec<Round>,
    cur: usize,
    inflight: Vec<(rtmpi::RtRequest, RecvAction)>,
    acc: Vec<u8>,
    input: Option<Vec<u8>>,
    tag: u32,
    slot: Handle,
}

fn offload_main(
    mpi: rtmpi::RtMpi,
    queue: Arc<MpmcQueue<Command>>,
    pool: Arc<RequestPool<Completion>>,
    reg: obs::Registry,
) {
    // Metric handles are resolved once; per-iteration cost is a couple of
    // relaxed atomic ops (and nothing at all in no-op builds).
    let drained_hist = reg.histogram("offload.drained_per_wakeup");
    let sweeps = reg.counter("offload.testany_sweeps");
    let converted = reg.counter("offload.coll_converted");
    let service_iters = reg.counter("offload.service_iters");
    let idle_yields = reg.counter("offload.idle_yields");

    let mut inflight_recv: Vec<(Handle, rtmpi::RtRequest)> = Vec::new();
    let mut nbcs: Vec<LiveNbc> = Vec::new();
    let mut coll_seq: u32 = 0;
    let mut open = true;
    loop {
        let mut advanced = false;
        // 1. Drain the command queue.
        let mut drained = 0u64;
        while let Some(cmd) = queue.pop() {
            advanced = true;
            drained += 1;
            match cmd {
                Command::Isend {
                    dst,
                    tag,
                    data,
                    slot,
                } => {
                    // rtmpi sends complete at hand-off.
                    let _ = mpi.isend(dst, tag, data);
                    pool.complete(slot, Completion::Sent);
                }
                Command::Irecv { src, tag, slot } => {
                    let req = mpi.irecv(src, tag);
                    inflight_recv.push((slot, req));
                }
                Command::Collective { kind, slot } => {
                    // Blocking collective converted to a nonblocking
                    // schedule (paper §3.3).
                    converted.inc();
                    coll_seq = coll_seq.wrapping_add(1);
                    let tag = TAG_INTERNAL_BASE + (coll_seq % 0x0fff_ffff);
                    nbcs.push(start_live_nbc(&mpi, kind, tag, slot));
                }
                Command::Shutdown => open = false,
            }
        }
        if drained > 0 {
            drained_hist.record(drained);
        }
        // 2. Sweep in-flight receives (the MPI_Testany analogue).
        if !inflight_recv.is_empty() {
            sweeps.inc();
        }
        inflight_recv.retain(|(slot, req)| {
            if let Some((st, data)) = req.try_take() {
                pool.complete(*slot, Completion::Received(st, data));
                advanced = true;
                false
            } else {
                true
            }
        });
        // 3. Advance collective schedules.
        let mut i = 0;
        while i < nbcs.len() {
            if advance_live_nbc(&mpi, &mut nbcs[i]) {
                let done = nbcs.swap_remove(i);
                pool.complete(done.slot, Completion::Collective(Arc::new(done.acc)));
                advanced = true;
            } else {
                i += 1;
            }
        }
        // 4. Exit or idle.
        if !open && inflight_recv.is_empty() && nbcs.is_empty() && queue.is_empty() {
            return;
        }
        if advanced {
            service_iters.inc();
        } else {
            idle_yields.inc();
            std::thread::yield_now();
        }
    }
}

fn start_live_nbc(mpi: &rtmpi::RtMpi, kind: CollKind, tag: u32, slot: Handle) -> LiveNbc {
    let (p, r) = (mpi.size(), mpi.rank());
    let (acc, input, rounds) = match kind {
        CollKind::Barrier => (Vec::new(), None, nbc::barrier_rounds(p, r)),
        CollKind::AllreduceF64Sum(mine) => {
            let rounds = nbc::allreduce_rounds_sized(
                p,
                r,
                mpisim::Dtype::F64,
                mpisim::ReduceOp::Sum,
                mine.len(),
            );
            (mine, None, rounds)
        }
        CollKind::Alltoall { input, block } => {
            assert_eq!(input.len(), p * block);
            let mut acc = vec![0u8; p * block];
            acc[r * block..(r + 1) * block].copy_from_slice(&input[r * block..(r + 1) * block]);
            (acc, Some(input), nbc::alltoall_rounds(p, r, block))
        }
        CollKind::Bcast { root, payload } => {
            let acc = if r == root { payload } else { Vec::new() };
            (acc, None, nbc::bcast_rounds(p, r, root))
        }
        CollKind::Allgather { mine } => {
            let block = mine.len();
            let mut acc = vec![0u8; p * block];
            acc[r * block..(r + 1) * block].copy_from_slice(&mine);
            (acc, None, nbc::allgather_rounds(p, r, block))
        }
    };
    let mut inst = LiveNbc {
        rounds,
        cur: 0,
        inflight: Vec::new(),
        acc,
        input,
        tag,
        slot,
    };
    post_live_round(mpi, &mut inst);
    inst
}

/// Post rounds starting at `cur` until one has pending receives (or the
/// schedule ends).
fn post_live_round(mpi: &rtmpi::RtMpi, inst: &mut LiveNbc) {
    while inst.cur < inst.rounds.len() {
        let round = inst.rounds[inst.cur].clone();
        for send in &round.sends {
            let data = resolve_live(inst, &send.data);
            let _ = mpi.isend(send.peer, inst.tag, Arc::new(data));
        }
        for recv in &round.recvs {
            let req = mpi.irecv(Some(recv.peer), Some(inst.tag));
            inst.inflight.push((req, recv.action.clone()));
        }
        if inst.inflight.iter().all(|(r, _)| r.is_done()) {
            apply_live_actions(inst);
            inst.cur += 1;
        } else {
            return;
        }
    }
}

/// Returns true when the schedule has fully completed.
fn advance_live_nbc(mpi: &rtmpi::RtMpi, inst: &mut LiveNbc) -> bool {
    if inst.cur >= inst.rounds.len() {
        return true;
    }
    if !inst.inflight.iter().all(|(r, _)| r.is_done()) {
        return false;
    }
    apply_live_actions(inst);
    inst.cur += 1;
    post_live_round(mpi, inst);
    inst.cur >= inst.rounds.len()
}

fn apply_live_actions(inst: &mut LiveNbc) {
    for (req, action) in std::mem::take(&mut inst.inflight) {
        let (_, data) = req.try_take().expect("completed recv has data");
        match action {
            RecvAction::Discard => {}
            RecvAction::ReplaceAcc => inst.acc = data.as_ref().clone(),
            RecvAction::CombineAcc { dtype, op } => {
                combine(dtype, op, &mut inst.acc, &data);
            }
            RecvAction::CombineAt { offset, dtype, op } => {
                let end = offset + data.len();
                combine(dtype, op, &mut inst.acc[offset..end], &data);
            }
            RecvAction::StoreAt(off) => {
                inst.acc[off..off + data.len()].copy_from_slice(&data);
            }
        }
    }
}

fn resolve_live(inst: &LiveNbc, src: &DataSrc) -> Vec<u8> {
    match src {
        DataSrc::Acc => inst.acc.clone(),
        DataSrc::AccChunk(r) => inst.acc[r.clone()].to_vec(),
        DataSrc::InputChunk(r) => inst.input.as_ref().expect("input buffer")[r.clone()].to_vec(),
        DataSrc::Fixed(b) => match b {
            Bytes::Real(v) => v.as_ref().clone(),
            Bytes::Synthetic(n) => vec![0; *n],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_live<T: Send + 'static>(
        n: usize,
        f: impl Fn(OffloadHandle) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let ranks = offload_world(n);
        let handles: Vec<_> = ranks
            .iter()
            .map(|r| {
                let h = r.handle();
                let f = f.clone();
                thread::spawn(move || f(h))
            })
            .collect();
        let outs = handles
            .into_iter()
            .map(|h| h.join().expect("app thread"))
            .collect();
        for r in ranks {
            r.finalize();
        }
        outs
    }

    #[test]
    fn offloaded_ping_pong() {
        let outs = run_live(2, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 5, Arc::new(vec![1, 2, 3]));
                let (_, d) = mpi.recv(Some(1), Some(6));
                d.as_ref().clone()
            } else {
                let (st, d) = mpi.recv(Some(0), Some(5));
                assert_eq!(st.source, 0);
                let mut back = d.as_ref().clone();
                back.reverse();
                mpi.send(0, 6, Arc::new(back));
                Vec::new()
            }
        });
        assert_eq!(outs[0], vec![3, 2, 1]);
    }

    #[test]
    fn isend_returns_before_receiver_posts() {
        let outs = run_live(2, |mpi| {
            if mpi.rank() == 0 {
                let h = mpi.isend(1, 1, Arc::new(vec![7u8; 100]));
                // The handle is usable immediately.
                let c = mpi.wait(h);
                matches!(c, Completion::Sent)
            } else {
                thread::sleep(std::time::Duration::from_millis(2));
                let (_, d) = mpi.recv(Some(0), Some(1));
                d.len() == 100
            }
        });
        assert!(outs[0] && outs[1]);
    }

    #[test]
    fn test_polls_done_flag_only() {
        let outs = run_live(2, |mpi| {
            if mpi.rank() == 0 {
                thread::sleep(std::time::Duration::from_millis(3));
                mpi.send(1, 2, Arc::new(vec![1]));
                true
            } else {
                let h = mpi.irecv(Some(0), Some(2));
                let mut polls = 0u64;
                while !mpi.test(h) {
                    polls += 1;
                    thread::yield_now();
                }
                let _ = mpi.wait(h);
                polls > 0
            }
        });
        assert!(outs[1], "receiver actually had to poll");
    }

    #[test]
    fn offloaded_barrier_synchronizes() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        let outs = run_live(4, move |mpi| {
            c2.fetch_add(1, Ordering::SeqCst);
            mpi.barrier();
            // Everyone must have incremented before anyone passes.
            c2.load(Ordering::SeqCst)
        });
        for o in outs {
            assert_eq!(o, 4);
        }
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn offloaded_allreduce_sums() {
        let outs = run_live(4, |mpi| mpi.allreduce_f64_sum(&[mpi.rank() as f64, 1.0]));
        for o in outs {
            assert_eq!(o, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn offloaded_alltoall_transposes() {
        let outs = run_live(3, |mpi| {
            let input: Vec<u8> = (0..3).map(|d| (mpi.rank() * 3 + d) as u8).collect();
            mpi.alltoall(input, 1)
        });
        for (r, o) in outs.iter().enumerate() {
            let expect: Vec<u8> = (0..3).map(|s| (s * 3 + r) as u8).collect();
            assert_eq!(o, &expect);
        }
    }

    #[test]
    fn offloaded_bcast_and_allgather() {
        let outs = run_live(3, |mpi| {
            let payload = if mpi.rank() == 1 {
                vec![5u8, 6]
            } else {
                vec![]
            };
            let b = mpi.bcast(1, payload);
            let g = mpi.allgather(vec![mpi.rank() as u8]);
            (b, g)
        });
        for (b, g) in outs {
            assert_eq!(b, vec![5, 6]);
            assert_eq!(g, vec![0, 1, 2]);
        }
    }

    #[test]
    fn concurrent_app_threads_share_one_rank() {
        // THREAD_MULTIPLE: several app threads of the same rank issue
        // concurrently; the single offload thread serializes into rtmpi.
        let ranks = offload_world(2);
        let h0 = ranks[0].handle();
        let h1 = ranks[1].handle();
        let senders: Vec<_> = (0..4u32)
            .map(|t| {
                let h = h0.clone();
                thread::spawn(move || {
                    for i in 0..50u32 {
                        h.send(1, t, Arc::new(vec![(t * 100 + i % 100) as u8]));
                    }
                })
            })
            .collect();
        let receiver = thread::spawn(move || {
            let mut per_tag = vec![0u32; 4];
            for _ in 0..200 {
                let (st, _) = h1.recv(Some(0), None);
                per_tag[st.tag as usize] += 1;
            }
            per_tag
        });
        for s in senders {
            s.join().expect("sender");
        }
        let per_tag = receiver.join().expect("receiver");
        assert_eq!(per_tag, vec![50; 4]);
        for r in ranks {
            r.finalize();
        }
    }

    #[test]
    fn many_outstanding_requests_cycle_the_pool() {
        let outs = run_live(2, |mpi| {
            if mpi.rank() == 0 {
                for batch in 0..20 {
                    let hs: Vec<_> = (0..64)
                        .map(|i| mpi.isend(1, 3, Arc::new(vec![(batch * 64 + i) as u8])))
                        .collect();
                    for h in hs {
                        let _ = mpi.wait(h);
                    }
                }
                0
            } else {
                let mut n = 0;
                for _ in 0..(20 * 64) {
                    let _ = mpi.recv(Some(0), Some(3));
                    n += 1;
                }
                n
            }
        });
        assert_eq!(outs[1], 20 * 64);
    }
}
