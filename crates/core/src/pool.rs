//! The request pool (paper §3.1): a fixed array of request slots managed as
//! a lock-free free list, with a per-slot *done flag*.
//!
//! A nonblocking offloaded call must return an `MPI_Request` to the
//! application **before** the offload thread has issued the real MPI call.
//! The pool provides that: the application thread allocates a slot
//! (lock-free, "array-based singly linked list" — a Treiber stack of slot
//! indices), embeds the slot handle in the command, and later waits on the
//! slot's done flag. The offload thread writes the completion value into
//! the slot and raises the flag with release ordering; the owner reads it
//! with acquire ordering.
//!
//! ABA and stale handles are prevented two ways:
//! * the free-list head packs a 32-bit *tag* bumped on every pop, so a
//!   concurrent pop/push/pop cannot redirect a CAS (classic counted
//!   pointer);
//! * each slot carries a *generation* bumped on `free`, and handles embed
//!   the generation they were allocated under, so use-after-free of a
//!   handle is detected. Ownership operations (`complete`, `take`, `free`,
//!   `wait_take`) **panic** on a generation mismatch in every build — a
//!   stale handle there is a double-wait or use-after-free that would
//!   otherwise read another request's completion. The query `is_done`
//!   (the `MPI_Test` path) stays conservative: it counts the detection
//!   and reports `false`.
//!
//! Blocking operations (`alloc_blocking`, `wait_take`) escalate
//! spin → yield → park via [`crate::backoff`]: `complete` rings the
//! completion signal, `free` rings the vacancy signal, and both are one
//! atomic load when nobody is parked.

use check::cell::UnsafeCell;
use check::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use check::sync::CachePadded;

use crate::backoff::{BackoffMetrics, WaitPolicy, WakeSignal};

const NIL: u32 = u32::MAX;

struct PoolSlot<T> {
    /// Free-list link (valid while the slot is free).
    next: AtomicU32,
    /// Bumped on every `free`; handles must match.
    generation: AtomicU32,
    /// Raised by the completing thread with `Release`.
    done: AtomicBool,
    /// Completion value; written before `done`, read after it.
    value: UnsafeCell<Option<T>>,
}

/// Flight-recorder signals of one pool: allocation traffic, exhaustion
/// events, occupancy (with high-water mark), and stale-handle detections —
/// each generation-tag mismatch is one caught would-be ABA/use-after-free.
/// Recording costs a couple of `Relaxed` atomics; zero-sized no-ops when
/// `obs`'s `enabled` feature is off.
#[derive(Clone, Default)]
pub struct PoolMetrics {
    pub allocs: obs::Counter,
    pub alloc_exhausted: obs::Counter,
    pub frees: obs::Counter,
    pub occupancy: obs::Gauge,
    pub stale_detected: obs::Counter,
    /// How waiters on the done flag escalated (`wait_take`).
    pub waiter: BackoffMetrics,
    /// How allocators facing an exhausted pool escalated.
    pub alloc_waiter: BackoffMetrics,
}

impl PoolMetrics {
    /// Register the pool's metrics under `prefix` in `registry`.
    pub fn registered(registry: &obs::Registry, prefix: &str) -> Self {
        Self {
            allocs: registry.counter(&format!("{prefix}.allocs")),
            alloc_exhausted: registry.counter(&format!("{prefix}.exhausted")),
            frees: registry.counter(&format!("{prefix}.frees")),
            occupancy: registry.gauge(&format!("{prefix}.occupancy")),
            stale_detected: registry.counter(&format!("{prefix}.stale_detected")),
            waiter: BackoffMetrics::registered(registry, &format!("{prefix}.wait")),
            alloc_waiter: BackoffMetrics::registered(registry, &format!("{prefix}.alloc_wait")),
        }
    }
}

/// Fixed-capacity lock-free request pool.
pub struct RequestPool<T> {
    slots: Box<[PoolSlot<T>]>,
    metrics: PoolMetrics,
    /// Rung by `complete`; `wait_take` parks here for the done flag.
    completion: WakeSignal,
    /// Rung by `free`; `alloc_blocking` parks here when exhausted.
    vacancy: WakeSignal,
    policy: WaitPolicy,
    /// Packed head: upper 32 bits = pop tag, lower 32 = slot index or NIL.
    head: CachePadded<AtomicU64>,
    outstanding: CachePadded<AtomicU32>,
}

// SAFETY: a slot's value cell has exactly one writer (the completer, before
// the Release store of `done`) and one reader (the handle owner, after its
// Acquire load of `done`); slots are never reused until freed by the owner.
unsafe impl<T: Send> Send for RequestPool<T> {}
// SAFETY: as above — the done-flag handoff plus single-owner free protocol
// make concurrent shared access to the slot cells safe.
unsafe impl<T: Send> Sync for RequestPool<T> {}

/// Handle to an allocated request slot (the application's `MPI_Request`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Handle {
    pub(crate) idx: u32,
    pub(crate) generation: u32,
}

impl Handle {
    /// Slot index within the pool (diagnostics).
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Generation the handle was allocated under (diagnostics).
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl<T> RequestPool<T> {
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_metrics(cap, PoolMetrics::default())
    }

    /// Create a pool whose signals feed pre-registered metric handles
    /// (see [`PoolMetrics::registered`]).
    pub fn with_metrics(cap: usize, metrics: PoolMetrics) -> Self {
        assert!(cap > 0 && cap < NIL as usize);
        let slots: Box<[PoolSlot<T>]> = (0..cap)
            .map(|i| PoolSlot {
                next: AtomicU32::new(if i + 1 < cap { (i + 1) as u32 } else { NIL }),
                generation: AtomicU32::new(0),
                done: AtomicBool::new(false),
                value: UnsafeCell::new(None),
            })
            .collect();
        Self {
            slots,
            metrics,
            completion: WakeSignal::new(),
            vacancy: WakeSignal::new(),
            policy: WaitPolicy::default(),
            head: CachePadded::new(AtomicU64::new(pack(0, 0))),
            outstanding: CachePadded::new(AtomicU32::new(0)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn metrics(&self) -> &PoolMetrics {
        &self.metrics
    }

    /// Currently allocated slots.
    pub fn outstanding(&self) -> usize {
        // ORDERING: Relaxed — diagnostic gauge read, no publication.
        self.outstanding.load(Ordering::Relaxed) as usize
    }

    /// Replace the wait policy used by `alloc_blocking` and `wait_take`.
    /// Model tests shrink the budgets (or disable the park backstop) so the
    /// schedule space stays explorable; production code keeps the default.
    pub fn set_wait_policy(&mut self, policy: WaitPolicy) {
        self.policy = policy;
    }

    /// Allocate a slot; `None` if the pool is exhausted.
    pub fn alloc(&self) -> Option<Handle> {
        // ORDERING: Acquire — must observe the freeing thread's writes to
        // the head slot (its `next` link) before dereferencing it.
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, idx) = unpack(head);
            if idx == NIL {
                self.metrics.alloc_exhausted.inc();
                return None;
            }
            // ORDERING: Relaxed — `next` was made visible by the Acquire
            // on `head` (the freeing thread stored it before its Release
            // CAS); this is a re-read of already-synchronized data.
            let next = self.slots[idx as usize].next.load(Ordering::Relaxed);
            // ORDERING: AcqRel on success — Acquire re-synchronizes with
            // whoever last touched the new head; Release publishes the tag
            // bump to the next CAS in line. Acquire on failure: the retry
            // dereferences the freshly observed head's `next`.
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), next),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    let slot = &self.slots[idx as usize];
                    // ORDERING: Relaxed ×3 — the slot is exclusively ours
                    // after the CAS; handing the Handle to another thread
                    // is the caller's (synchronized) job. `outstanding` is
                    // a diagnostic counter.
                    slot.done.store(false, Ordering::Relaxed);
                    let was = self.outstanding.fetch_add(1, Ordering::Relaxed);
                    self.metrics.allocs.inc();
                    self.metrics.occupancy.set(was as u64 + 1);
                    return Some(Handle {
                        idx,
                        // ORDERING: Relaxed — slot is exclusively ours
                        // after the CAS (see above).
                        generation: slot.generation.load(Ordering::Relaxed),
                    });
                }
                Err(actual) => head = actual,
            }
        }
    }

    /// Allocate, adaptively waiting (spin → yield → park on the vacancy
    /// signal) while the pool is exhausted. The old implementation yielded
    /// forever, burning a core until some other thread freed a slot.
    pub fn alloc_blocking(&self) -> Handle {
        self.vacancy
            .wait_until(&self.policy, &self.metrics.alloc_waiter, || self.alloc())
    }

    /// Ownership check: panics on a stale handle in **every** build. A
    /// generation mismatch on an ownership operation means double-wait or
    /// use-after-free — proceeding would touch another request's slot.
    fn check(&self, h: Handle) -> &PoolSlot<T> {
        let slot = &self.slots[h.idx as usize];
        // ORDERING: Relaxed — the generation can only change under a
        // handle its owner freed, i.e. after a caller bug; this is a
        // best-effort tripwire, not a synchronization point.
        let current = slot.generation.load(Ordering::Relaxed);
        if current != h.generation {
            self.metrics.stale_detected.inc();
            panic!(
                "stale request handle: slot {} is at generation {} but the handle \
                 was allocated under generation {} (double wait or use-after-free)",
                h.idx, current, h.generation
            );
        }
        slot
    }

    /// Complete the request: publish `value` and raise the done flag.
    /// Called by the offload thread exactly once per allocation.
    pub fn complete(&self, h: Handle, value: T) {
        let slot = self.check(h);
        // ORDERING: Relaxed — debug tripwire only.
        debug_assert!(!slot.done.load(Ordering::Relaxed), "double completion");
        // SAFETY: sole writer before the Release store below.
        slot.value.with_mut(|p| unsafe { *p = Some(value) });
        // ORDERING: Release — publishes the value write to the owner's
        // Acquire load of `done` in is_done/take/wait_take.
        slot.done.store(true, Ordering::Release);
        // One atomic load when no waiter is parked.
        self.completion.notify();
    }

    /// Has the request completed? (The application's `MPI_Test` fast path.)
    pub fn is_done(&self, h: Handle) -> bool {
        let slot = &self.slots[h.idx as usize];
        // ORDERING: Relaxed — stale-handle tripwire, as in `check`.
        if slot.generation.load(Ordering::Relaxed) != h.generation {
            // Generation-tag mismatch: a stale handle outlived its slot —
            // the ABA this pool's counted pointers exist to catch.
            self.metrics.stale_detected.inc();
            return false;
        }
        // ORDERING: Acquire — pairs with complete()'s Release so a true
        // result licenses reading the value.
        slot.done.load(Ordering::Acquire)
    }

    /// Take the completion value. Only the handle owner may call, and only
    /// after `is_done`.
    pub fn take(&self, h: Handle) -> Option<T> {
        let slot = self.check(h);
        // ORDERING: Acquire — pairs with complete()'s Release; the value
        // read below is only licensed by an observed `done == true`.
        if !slot.done.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: owner-side read after the Acquire load; the completer
        // wrote before its Release store and will not touch the slot again.
        slot.value.with_mut(|p| unsafe { (*p).take() })
    }

    /// Return the slot to the free list, invalidating all existing handles
    /// to it. Only the handle owner may call.
    pub fn free(&self, h: Handle) {
        let slot = self.check(h);
        // SAFETY: owner has exclusive access; drop any untaken value.
        slot.value.with_mut(|p| unsafe { *p = None });
        // ORDERING: Relaxed ×2 — owner-side resets; they are published to
        // the next allocator by the Release half of the CAS below.
        slot.generation.fetch_add(1, Ordering::Relaxed);
        slot.done.store(false, Ordering::Relaxed);
        // ORDERING: Acquire — observe the current head slot before linking
        // to it, as in `alloc`.
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, idx) = unpack(head);
            // ORDERING: Relaxed — ordered before the CAS by its Release
            // half; allocators read it only after their Acquire of `head`.
            slot.next.store(idx, Ordering::Relaxed);
            // ORDERING: AcqRel on success — Release publishes the reset
            // slot and its `next` link to the next allocator's Acquire;
            // Acquire re-synchronizes on the observed head. Acquire on
            // failure for the retry's dereference.
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), h.idx),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // ORDERING: Relaxed — diagnostic gauge.
                    let was = self.outstanding.fetch_sub(1, Ordering::Relaxed);
                    self.metrics.frees.inc();
                    self.metrics.occupancy.set(was.saturating_sub(1) as u64);
                    self.vacancy.notify();
                    return;
                }
                Err(actual) => head = actual,
            }
        }
    }

    /// Wait for completion (adaptively: spin → yield → park on the
    /// completion signal), then take the value and free the slot — the
    /// full `MPI_Wait` path of the offload design. Panics on a stale
    /// handle (a double-wait would otherwise spin forever: the old
    /// implementation looped on `is_done(stale) == false` at 100% CPU).
    pub fn wait_take(&self, h: Handle) -> Option<T> {
        // Validate ownership up front (and on every recheck via `take`):
        // the generation cannot change under a live handle, whose owner is
        // the only thread allowed to free it.
        let slot = self.check(h);
        self.completion
            .wait_until(&self.policy, &self.metrics.waiter, || {
                // ORDERING: Acquire — same edge as `take`; pairs with
                // complete()'s Release store on `done`.
                slot.done.load(Ordering::Acquire).then_some(())
            });
        let v = self.take(h);
        self.free(h);
        v
    }
}

fn pack(tag: u32, idx: u32) -> u64 {
    ((tag as u64) << 32) | idx as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::thread;
    use std::sync::Arc;

    #[test]
    fn alloc_complete_take_free_roundtrip() {
        let pool: RequestPool<u32> = RequestPool::with_capacity(4);
        let h = pool.alloc().expect("slot");
        assert!(!pool.is_done(h));
        assert_eq!(pool.take(h), None);
        pool.complete(h, 77);
        assert!(pool.is_done(h));
        assert_eq!(pool.take(h), Some(77));
        pool.free(h);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let pool: RequestPool<()> = RequestPool::with_capacity(2);
        let a = pool.alloc().expect("first");
        let _b = pool.alloc().expect("second");
        assert!(pool.alloc().is_none());
        pool.free(a);
        assert!(pool.alloc().is_some());
    }

    #[test]
    fn generation_invalidates_stale_handles() {
        let pool: RequestPool<u32> = RequestPool::with_capacity(1);
        let h1 = pool.alloc().expect("slot");
        pool.complete(h1, 1);
        assert!(pool.is_done(h1));
        pool.free(h1);
        let h2 = pool.alloc().expect("reused slot");
        assert_eq!(h1.idx, h2.idx);
        assert_ne!(h1.generation, h2.generation);
        // The stale handle no longer reads as done.
        assert!(!pool.is_done(h1));
        assert!(!pool.is_done(h2));
        pool.complete(h2, 2);
        assert!(pool.is_done(h2));
    }

    #[test]
    fn untaken_values_are_dropped_on_free() {
        let pool: RequestPool<Arc<()>> = RequestPool::with_capacity(1);
        let marker = Arc::new(());
        let h = pool.alloc().expect("slot");
        pool.complete(h, marker.clone());
        assert_eq!(Arc::strong_count(&marker), 2);
        pool.free(h); // value dropped without take
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn wait_take_spins_until_completion() {
        let pool: Arc<RequestPool<u64>> = Arc::new(RequestPool::with_capacity(4));
        let h = pool.alloc().expect("slot");
        let completer = {
            let pool = pool.clone();
            thread::spawn(move || {
                thread::sleep(std::time::Duration::from_millis(5));
                pool.complete(h, 42);
            })
        };
        assert_eq!(pool.wait_take(h), Some(42));
        completer.join().expect("completer");
    }

    /// Satellite regression: a long `wait_take` must park (and be woken by
    /// `complete`), not spin-burn a core — proven by the obs counters.
    #[cfg(feature = "obs-enabled")]
    #[test]
    fn long_wait_parks_instead_of_spinning() {
        let reg = obs::Registry::default();
        let pool: Arc<RequestPool<u64>> = Arc::new(RequestPool::with_metrics(
            4,
            PoolMetrics::registered(&reg, "pool"),
        ));
        let h = pool.alloc().expect("slot");
        let waiter = {
            let pool = pool.clone();
            thread::spawn(move || pool.wait_take(h))
        };
        // No completer yet: the waiter must escalate to parking.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while reg.snapshot().counter("pool.wait.parks") == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "waiter never parked (yields={})",
                reg.snapshot().counter("pool.wait.yields")
            );
            thread::yield_now();
        }
        pool.complete(h, 9);
        assert_eq!(waiter.join().expect("waiter"), Some(9));
        let s = reg.snapshot();
        assert!(s.counter("pool.wait.wakes") >= 1);
        // The spin budget is bounded: far fewer spins than a 10s busy loop.
        assert!(s.counter("pool.wait.spins") <= 64);
    }

    /// Satellite regression: exhausted-pool allocation parks until `free`.
    #[cfg(feature = "obs-enabled")]
    #[test]
    fn exhausted_alloc_parks_until_free() {
        let reg = obs::Registry::default();
        let pool: Arc<RequestPool<()>> = Arc::new(RequestPool::with_metrics(
            1,
            PoolMetrics::registered(&reg, "pool"),
        ));
        let h = pool.alloc().expect("only slot");
        let allocator = {
            let pool = pool.clone();
            thread::spawn(move || pool.alloc_blocking())
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while reg.snapshot().counter("pool.alloc_wait.parks") == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "allocator never parked"
            );
            thread::yield_now();
        }
        pool.free(h);
        let h2 = allocator.join().expect("allocator");
        pool.free(h2);
        assert_eq!(pool.outstanding(), 0);
    }

    /// Double-wait must die on the generation check with a clear message,
    /// not hang or hand back another request's completion.
    #[test]
    #[should_panic(expected = "stale request handle")]
    fn double_wait_panics_on_generation_check() {
        let pool: RequestPool<u32> = RequestPool::with_capacity(2);
        let h = pool.alloc().expect("slot");
        pool.complete(h, 5);
        assert_eq!(pool.wait_take(h), Some(5)); // first wait: fine, frees
        let _ = pool.wait_take(h); // second wait: stale generation
    }

    /// Use-after-free of a *recycled* slot: the old handle must not read
    /// the new occupant's completion.
    #[test]
    #[should_panic(expected = "stale request handle")]
    fn recycled_slot_take_panics_for_old_handle() {
        let pool: RequestPool<u32> = RequestPool::with_capacity(1);
        let h1 = pool.alloc().expect("slot");
        pool.complete(h1, 1);
        assert_eq!(pool.wait_take(h1), Some(1));
        let h2 = pool.alloc().expect("recycled slot");
        assert_eq!(h1.idx, h2.idx, "slot must actually be recycled");
        pool.complete(h2, 2);
        let _ = pool.take(h1); // stale: would alias h2's completion
    }

    /// The offload pattern under stress: many "application" threads
    /// allocate and wait; one "offload" thread completes. Every allocation
    /// must round-trip its unique payload exactly once.
    #[test]
    fn producer_completer_stress() {
        const APP_THREADS: u64 = 4;
        const PER: u64 = 500;
        let pool: Arc<RequestPool<u64>> = Arc::new(RequestPool::with_capacity(16));
        let work: Arc<crate::queue::MpmcQueue<(Handle, u64)>> =
            Arc::new(crate::queue::MpmcQueue::with_capacity(64));
        let offload = {
            let pool = pool.clone();
            let work = work.clone();
            thread::spawn(move || {
                let mut served = 0;
                while served < APP_THREADS * PER {
                    if let Some((h, v)) = work.pop() {
                        pool.complete(h, v * 2);
                        served += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            })
        };
        let apps: Vec<_> = (0..APP_THREADS)
            .map(|t| {
                let pool = pool.clone();
                let work = work.clone();
                thread::spawn(move || {
                    for i in 0..PER {
                        let v = t * PER + i;
                        let h = pool.alloc_blocking();
                        work.push_blocking((h, v));
                        assert_eq!(pool.wait_take(h), Some(v * 2));
                    }
                })
            })
            .collect();
        for a in apps {
            a.join().expect("app thread");
        }
        offload.join().expect("offload thread");
        assert_eq!(pool.outstanding(), 0);
    }
}
