//! Adaptive waiting: bounded spin → `yield_now` → park on a condvar.
//!
//! Every blocking site in the offload command path used to be an unbounded
//! spin (or, at best, an unbounded `yield_now` loop). That burns one core
//! per waiting thread and — worse — livelocks when the thread that would
//! satisfy the wait has itself been descheduled, exactly the contention
//! pathology the paper's single-offload-thread design is supposed to avoid.
//! This module centralizes the wait discipline so every site escalates the
//! same way:
//!
//! 1. **spin** a bounded number of iterations (`core::hint::spin_loop`),
//!    the right answer when the condition flips within ~100 ns;
//! 2. **yield** a bounded number of times (`thread::yield_now`), the right
//!    answer when the producer/consumer is runnable on another core;
//! 3. **park** on a [`WakeSignal`] condvar until the counterpart notifies,
//!    the only correct answer when the counterpart is descheduled or busy
//!    for microseconds-to-milliseconds.
//!
//! ## The wake protocol
//!
//! [`WakeSignal::notify`] is designed to cost one relaxed-ish load on the
//! fast path: notifiers check the `waiters` count and take the mutex only
//! when somebody is actually parked. The classic lost-wakeup race (waiter
//! checks the condition, notifier fires, waiter parks forever) is closed
//! two ways: the waiter re-checks the condition *after* registering in
//! `waiters` and *under the mutex* that `notify` must acquire before
//! signalling; and every park uses a short `wait_timeout` as a liveness
//! backstop, so even a wake lost to instruction-ordering on the notifier
//! side costs one timeout period, never a hang.
//!
//! All counters come from `obs` and compile to ZSTs with
//! `--no-default-features`; the waiting logic itself is always live.
//!
//! Synchronization comes from the `check` facade (std in normal builds,
//! model-checked under `--cfg offload_model`). The model treats a
//! `wait_timeout` of an hour or more as *untimed* — that is how model
//! tests disable the park backstop ([`WaitPolicy::no_backstop`]) and prove
//! the wake protocol itself has no lost wakeup.

use std::time::Duration;

use check::sync::atomic::{AtomicU32, Ordering};
use check::sync::{Condvar, Mutex};

/// How long each escalation phase runs before moving to the next.
#[derive(Clone, Copy, Debug)]
pub struct WaitPolicy {
    /// Busy-spin iterations before the first yield.
    pub spins: u32,
    /// `yield_now` calls before the first park.
    pub yields: u32,
    /// Park timeout — the liveness backstop, not the expected wake path.
    pub park_timeout: Duration,
}

impl Default for WaitPolicy {
    fn default() -> Self {
        Self {
            spins: 64,
            yields: 64,
            park_timeout: Duration::from_millis(1),
        }
    }
}

impl WaitPolicy {
    /// A policy that parks almost immediately — for tests that need to
    /// observe the park path without first burning the full spin budget.
    pub fn eager_park() -> Self {
        Self {
            spins: 4,
            yields: 4,
            park_timeout: Duration::from_millis(1),
        }
    }

    /// [`WaitPolicy::eager_park`] with the timeout backstop disabled
    /// (`park_timeout` so large the model runtime treats the park as
    /// untimed). Model tests use this to prove the wake protocol is
    /// correct *by itself*: under this policy a lost wakeup is a deadlock
    /// the checker reports, not a 1 ms hiccup the backstop papers over.
    pub fn no_backstop() -> Self {
        Self {
            spins: 1,
            yields: 0,
            park_timeout: Duration::MAX,
        }
    }
}

/// Counters for one family of wait sites. All `obs` types: ZSTs when obs
/// is compiled out.
#[derive(Clone, Default)]
pub struct BackoffMetrics {
    /// Spin-loop iterations spent before the condition flipped.
    pub spins: obs::Counter,
    /// `yield_now` calls.
    pub yields: obs::Counter,
    /// Times a thread actually parked on the condvar.
    pub parks: obs::Counter,
    /// Times a parked thread came back (notify or timeout backstop).
    pub wakes: obs::Counter,
}

impl BackoffMetrics {
    /// Register the four counters as `{prefix}.spins`, `{prefix}.yields`,
    /// `{prefix}.parks`, `{prefix}.wakes`.
    pub fn registered(reg: &obs::Registry, prefix: &str) -> Self {
        Self {
            spins: reg.counter(&format!("{prefix}.spins")),
            yields: reg.counter(&format!("{prefix}.yields")),
            parks: reg.counter(&format!("{prefix}.parks")),
            wakes: reg.counter(&format!("{prefix}.wakes")),
        }
    }
}

/// An eventcount-flavored wake channel: cheap for notifiers when nobody
/// waits, a plain condvar when somebody does.
pub struct WakeSignal {
    /// Number of threads currently in (or entering) the park phase.
    waiters: AtomicU32,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Default for WakeSignal {
    fn default() -> Self {
        Self::new()
    }
}

impl WakeSignal {
    pub const fn new() -> Self {
        Self {
            waiters: AtomicU32::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Wake every parked waiter. One atomic load when nobody is parked.
    ///
    /// The mutex is acquired (and immediately dropped) before `notify_all`
    /// so a waiter that has registered in `waiters` and is re-checking its
    /// condition under the lock cannot miss the signal. A waiter racing
    /// *into* registration can still miss one notify; its park timeout
    /// re-checks the condition, so the cost is bounded latency, never a
    /// hang.
    pub fn notify(&self) {
        // ORDERING: SeqCst keeps this load in a single total order with
        // the waiter's `fetch_add(waiters)` and both sides' condition
        // accesses — if the waiter registered before our condition update
        // became visible, we must see waiters > 0 here. Acquire/release
        // alone would allow the classic store-buffer reordering (both
        // sides miss each other) on which the wakeup is lost.
        if self.waiters.load(Ordering::SeqCst) > 0 {
            drop(self.lock.lock().unwrap());
            self.cv.notify_all();
        }
    }

    /// Adaptively wait until `ready` returns `Some`, escalating
    /// spin → yield → park per `policy`. `ready` must be safe to call
    /// repeatedly from this thread; it is the only progress check.
    pub fn wait_until<R>(
        &self,
        policy: &WaitPolicy,
        metrics: &BackoffMetrics,
        mut ready: impl FnMut() -> Option<R>,
    ) -> R {
        // Phase 1: bounded spin.
        for i in 0..policy.spins {
            if let Some(r) = ready() {
                metrics.spins.add(u64::from(i));
                return r;
            }
            check::hint::spin_loop();
        }
        metrics.spins.add(u64::from(policy.spins));
        // Phase 2: bounded yield.
        for _ in 0..policy.yields {
            if let Some(r) = ready() {
                return r;
            }
            metrics.yields.inc();
            check::thread::yield_now();
        }
        // Phase 3: park until notified (or the timeout backstop fires).
        loop {
            // ORDERING: SeqCst pairs with the SeqCst waiters-load in
            // `notify` (see there): registration must be globally ordered
            // against the notifier's condition update, or both sides can
            // miss each other and the wakeup is lost.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            let guard = self.lock.lock().unwrap();
            if let Some(r) = ready() {
                drop(guard);
                // ORDERING: SeqCst for symmetry with the registration
                // above; this is the unregister half of the same protocol.
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                return r;
            }
            metrics.parks.inc();
            let (guard, _timed_out) = self.cv.wait_timeout(guard, policy.park_timeout).unwrap();
            drop(guard);
            // ORDERING: SeqCst — unregister half of the notify protocol,
            // as above.
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            metrics.wakes.inc();
            if let Some(r) = ready() {
                return r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::sync::atomic::AtomicBool;
    use check::thread;
    use std::sync::Arc;

    #[test]
    fn ready_immediately_never_parks() {
        let sig = WakeSignal::new();
        let m = BackoffMetrics::default();
        let got = sig.wait_until(&WaitPolicy::default(), &m, || Some(42));
        assert_eq!(got, 42);
    }

    #[test]
    fn notify_wakes_a_parked_waiter() {
        let sig = Arc::new(WakeSignal::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (sig, flag) = (sig.clone(), flag.clone());
            thread::spawn(move || {
                let m = BackoffMetrics::default();
                sig.wait_until(&WaitPolicy::eager_park(), &m, || {
                    flag.load(Ordering::Acquire).then_some(7)
                })
            })
        };
        // Give the waiter time to reach the park phase, then release it.
        thread::sleep(Duration::from_millis(5));
        flag.store(true, Ordering::Release);
        sig.notify();
        assert_eq!(waiter.join().unwrap(), 7);
    }

    #[test]
    fn timeout_backstop_sees_condition_without_notify() {
        // A wake "lost" entirely (no notify at all) must still terminate
        // via the park timeout re-check.
        let sig = Arc::new(WakeSignal::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (sig, flag) = (sig.clone(), flag.clone());
            thread::spawn(move || {
                let m = BackoffMetrics::default();
                sig.wait_until(&WaitPolicy::eager_park(), &m, || {
                    flag.load(Ordering::Acquire).then_some(())
                })
            })
        };
        thread::sleep(Duration::from_millis(5));
        flag.store(true, Ordering::Release);
        // Deliberately no notify(): the 1 ms wait_timeout must recover.
        waiter.join().unwrap();
    }

    #[cfg(feature = "obs-enabled")]
    #[test]
    fn park_and_wake_counters_fire() {
        let reg = obs::Registry::default();
        let m = BackoffMetrics::registered(&reg, "t");
        let sig = Arc::new(WakeSignal::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (sig, flag, m) = (sig.clone(), flag.clone(), m.clone());
            thread::spawn(move || {
                sig.wait_until(&WaitPolicy::eager_park(), &m, || {
                    flag.load(Ordering::Acquire).then_some(())
                })
            })
        };
        thread::sleep(Duration::from_millis(10));
        flag.store(true, Ordering::Release);
        sig.notify();
        waiter.join().unwrap();
        let snap = reg.snapshot();
        assert!(snap.counter("t.parks") >= 1, "waiter should have parked");
        assert!(snap.counter("t.wakes") >= 1, "waiter should have woken");
    }
}
