//! Per-application-thread SPSC submission lanes.
//!
//! The paper's command queue serializes every MPI call from every
//! application thread through one shared structure. Our first cut was a
//! single Vyukov MPMC ring ([`crate::queue::MpmcQueue`]): correct, but at
//! ≥4 producer threads every push CASes the same head cursor and the same
//! cache line ping-pongs across cores — the shared-progress-resource
//! contention "MPI Progress For All" diagnoses. The fix is to shard the
//! producer side: a [`LaneSet`] gives each registered application thread
//! its own cache-line-padded SPSC ring ([`SpscRing`]), so a push is two
//! plain loads, one store of the value, and one release store of the tail
//! cursor — no atomic RMW, no cross-thread cache traffic at all until the
//! consumer drains.
//!
//! The single offload thread remains the only consumer and drains lanes
//! **round-robin with a fair per-lane batch budget**: each sweep starts one
//! lane past where the previous sweep started and takes at most
//! `batch_budget` commands per lane, so a firehose thread cannot starve a
//! quiet one and no lane waits more than one sweep for service (the
//! fairness rule in DESIGN.md §10).
//!
//! Threads beyond the configured lane count (and unregistered one-off
//! threads) fall back to a shared MPMC **overflow** ring — sharded fast
//! path for the threads that matter, graceful degradation for the rest.
//!
//! Blocking behavior comes from [`crate::backoff`]: producers facing a
//! full lane park on `not_full` (notified after each drain), the consumer
//! facing an empty set parks on the `doorbell` (notified on push — one
//! atomic load when it is awake).

use crate::backoff::{BackoffMetrics, WaitPolicy, WakeSignal};
use crate::queue::MpmcQueue;
use check::cell::UnsafeCell;
use check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use check::sync::CachePadded;
use std::cell::RefCell;
use std::mem::MaybeUninit;

/// A bounded single-producer single-consumer ring.
///
/// Contract: at most one thread calls [`push`](Self::push) and at most one
/// (possibly different) thread calls [`pop`](Self::pop), ever. [`LaneSet`]
/// enforces this by handing each lane to exactly one registered producer
/// thread and draining from the single offload thread.
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor (monotonic). Padded: only the consumer writes it.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor (monotonic). Padded: only the producer writes it.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the SPSC contract (one producer thread, one consumer thread)
// plus the release store on `tail` / acquire load in `pop` hand each value
// off with a happens-before edge; a slot is never accessed by both sides
// at once because the cursors never cross.
unsafe impl<T: Send> Send for SpscRing<T> {}
// SAFETY: as above — shared access is safe because the cursor protocol
// partitions the slots between the two sides.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Self {
            buf,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Producer side. `Err(value)` when full.
    pub fn push(&self, value: T) -> Result<(), T> {
        // ORDERING: Relaxed on `tail` — the producer is its only writer,
        // so it always sees its own latest value. Acquire on `head` pairs
        // with the consumer's Release, proving the slot was drained before
        // we overwrite it.
        let tail = self.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head.load(Ordering::Acquire)) == self.buf.len() {
            return Err(value);
        }
        // SAFETY: only the single producer writes slots, and the acquire
        // check above proved this slot's previous value was consumed.
        self.buf[tail & (self.buf.len() - 1)].with_mut(|p| unsafe { (*p).write(value) });
        // ORDERING: Release — publishes the slot write to the consumer's
        // Acquire load of `tail`.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side.
    pub fn pop(&self) -> Option<T> {
        // ORDERING: Relaxed on `head` — the consumer is its only writer.
        // Acquire on `tail` pairs with the producer's Release, making the
        // published value visible before we read the slot.
        let head = self.head.load(Ordering::Relaxed);
        if self.tail.load(Ordering::Acquire) == head {
            return None;
        }
        // SAFETY: the acquire load of `tail` proved the producer published
        // this slot; only the single consumer reads slots out.
        let value =
            self.buf[head & (self.buf.len() - 1)].with(|p| unsafe { (*p).assume_init_read() });
        // ORDERING: Release — hands the emptied slot back to the
        // producer's Acquire load of `head`.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Racy size estimate — exact from the producer or consumer thread,
    /// clamped to `[0, capacity]` for everyone else (the two cursor loads
    /// are not a snapshot).
    pub fn len(&self) -> usize {
        // ORDERING: Acquire/Acquire — exact for whichever cursor the
        // calling thread owns; for third parties this is an estimate (the
        // two loads are not a snapshot) and the clamp below absorbs that.
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        let diff = tail.wrapping_sub(head);
        if (diff as isize) < 0 {
            0
        } else {
            diff.min(self.buf.len())
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Counters and gauges for one [`LaneSet`]. ZSTs without obs.
#[derive(Clone, Default)]
pub struct LaneMetrics {
    /// Successful pushes (lane or overflow).
    pub push_ok: obs::Counter,
    /// Pushes that found the target ring full (each retry counts).
    pub push_full: obs::Counter,
    /// Pushes that landed in the shared overflow ring.
    pub overflow_push: obs::Counter,
    /// Commands currently enqueued across all lanes + overflow (HWM kept).
    pub occupancy: obs::Gauge,
    /// Commands taken per non-empty drain sweep.
    pub drained_batch: obs::Histogram,
    /// Producer-side wait escalation (full lane → spin/yield/park).
    pub producer: BackoffMetrics,
}

impl LaneMetrics {
    pub fn registered(reg: &obs::Registry, prefix: &str) -> Self {
        Self {
            push_ok: reg.counter(&format!("{prefix}.push_ok")),
            push_full: reg.counter(&format!("{prefix}.push_full")),
            overflow_push: reg.counter(&format!("{prefix}.overflow_push")),
            occupancy: reg.gauge(&format!("{prefix}.occupancy")),
            drained_batch: reg.histogram(&format!("{prefix}.drained_batch")),
            producer: BackoffMetrics::registered(reg, &format!("{prefix}.producer")),
        }
    }
}

/// Every `LaneSet` gets a process-unique id so thread-local lane claims
/// never collide across sets (or across a set dropped and recreated).
static NEXT_SET_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (set id → claimed lane index) for this thread. `OVERFLOW` marks a
    /// thread that arrived after all lanes were claimed.
    static LANE_CLAIMS: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

const OVERFLOW: u32 = u32::MAX;

/// Sharded MPSC command channel: N SPSC lanes + one MPMC overflow ring,
/// single consumer.
pub struct LaneSet<T> {
    id: u64,
    lanes: Box<[SpscRing<T>]>,
    overflow: MpmcQueue<T>,
    /// Next unclaimed lane (first-come first-claimed, then overflow).
    next_lane: AtomicUsize,
    /// Consumer's rotating sweep start, for round-robin fairness.
    cursor: AtomicUsize,
    /// Producers ring this on push; the idle consumer parks on it.
    doorbell: WakeSignal,
    /// The consumer rings this after draining; full producers park on it.
    not_full: WakeSignal,
    policy: WaitPolicy,
    metrics: LaneMetrics,
}

impl<T> LaneSet<T> {
    /// `lanes` dedicated SPSC rings of `lane_cap` each, plus an MPMC
    /// overflow ring of `overflow_cap`.
    pub fn new(lanes: usize, lane_cap: usize, overflow_cap: usize) -> Self {
        Self::with_metrics(lanes, lane_cap, overflow_cap, LaneMetrics::default())
    }

    pub fn with_metrics(
        lanes: usize,
        lane_cap: usize,
        overflow_cap: usize,
        metrics: LaneMetrics,
    ) -> Self {
        Self {
            // ORDERING: Relaxed — unique-ID tick; nothing is published.
            id: NEXT_SET_ID.fetch_add(1, Ordering::Relaxed),
            lanes: (0..lanes.max(1)).map(|_| SpscRing::new(lane_cap)).collect(),
            overflow: MpmcQueue::with_capacity(overflow_cap),
            next_lane: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            doorbell: WakeSignal::new(),
            not_full: WakeSignal::new(),
            policy: WaitPolicy::default(),
            metrics,
        }
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Replace the wait policy used by blocked producers and the idle
    /// consumer. Model tests shrink the budgets so the schedule space
    /// stays explorable; production code keeps the default.
    pub fn set_wait_policy(&mut self, policy: WaitPolicy) {
        self.policy = policy;
    }

    pub fn metrics(&self) -> &LaneMetrics {
        &self.metrics
    }

    /// The lane this thread owns in this set, claiming one on first use.
    /// `None` means the thread pushes to the shared overflow ring.
    fn my_lane(&self) -> Option<usize> {
        LANE_CLAIMS.with(|claims| {
            let mut claims = claims.borrow_mut();
            if let Some(&(_, lane)) = claims.iter().find(|(id, _)| *id == self.id) {
                return (lane != OVERFLOW).then_some(lane as usize);
            }
            // ORDERING: Relaxed — atomicity alone makes claims unique;
            // lane handoff synchronizes through the ring cursors, not here.
            let claimed = self.next_lane.fetch_add(1, Ordering::Relaxed);
            let lane = if claimed < self.lanes.len() {
                claimed as u32
            } else {
                OVERFLOW
            };
            claims.push((self.id, lane));
            (lane != OVERFLOW).then_some(lane as usize)
        })
    }

    /// Non-blocking push from the calling thread's lane (or overflow).
    pub fn push(&self, value: T) -> Result<(), T> {
        let (result, via_overflow) = match self.my_lane() {
            Some(lane) => (self.lanes[lane].push(value), false),
            None => (self.overflow.push(value), true),
        };
        match result {
            Ok(()) => {
                self.metrics.push_ok.inc();
                if via_overflow {
                    self.metrics.overflow_push.inc();
                }
                self.metrics.occupancy.add(1);
                self.doorbell.notify();
                Ok(())
            }
            Err(v) => {
                self.metrics.push_full.inc();
                Err(v)
            }
        }
    }

    /// Push, adaptively waiting (spin → yield → park on `not_full`) while
    /// this thread's ring is full.
    pub fn push_blocking(&self, value: T) {
        let mut slot = Some(value);
        self.not_full
            .wait_until(&self.policy, &self.metrics.producer, || {
                match self.push(slot.take().expect("value still pending")) {
                    Ok(()) => Some(()),
                    Err(v) => {
                        slot = Some(v);
                        None
                    }
                }
            });
    }

    /// Drain up to `budget_per_lane` commands from each lane (and the
    /// overflow ring), rotating the sweep start for fairness. Returns the
    /// number drained. Consumer-only.
    pub fn drain(&self, budget_per_lane: usize, mut f: impl FnMut(T)) -> usize {
        let n = self.lanes.len();
        // ORDERING: Relaxed/Relaxed — consumer-only fairness cursor; no
        // other thread reads it, so there is nothing to order.
        let start = self.cursor.load(Ordering::Relaxed);
        self.cursor.store((start + 1) % n, Ordering::Relaxed);
        let mut total = 0;
        for i in 0..n {
            let lane = &self.lanes[(start + i) % n];
            for _ in 0..budget_per_lane {
                match lane.pop() {
                    Some(v) => {
                        f(v);
                        total += 1;
                    }
                    None => break,
                }
            }
        }
        for _ in 0..budget_per_lane {
            match self.overflow.pop() {
                Some(v) => {
                    f(v);
                    total += 1;
                }
                None => break,
            }
        }
        if total > 0 {
            self.metrics.drained_batch.record(total as u64);
            self.metrics.occupancy.sub(total as u64);
            self.not_full.notify();
        }
        total
    }

    /// Approximate number of enqueued commands (racy; diagnostics only).
    pub fn approx_len(&self) -> usize {
        self.lanes.iter().map(SpscRing::len).sum::<usize>() + self.overflow.approx_len()
    }

    /// Any command enqueued anywhere? Consumer-side check; racy for others.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(SpscRing::is_empty) && self.overflow.approx_len() == 0
    }

    /// Park the consumer (spin → yield → park on the doorbell) until some
    /// producer pushes. Returns immediately if anything is enqueued.
    pub fn wait_nonempty(&self, metrics: &BackoffMetrics) {
        self.doorbell
            .wait_until(&self.policy, metrics, || (!self.is_empty()).then_some(()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::thread;
    use std::sync::Arc;

    #[test]
    fn spsc_ring_round_trips_in_order() {
        let r = SpscRing::new(8);
        assert_eq!(r.capacity(), 8);
        for i in 0..8 {
            r.push(i).unwrap();
        }
        assert_eq!(r.push(99).unwrap_err(), 99);
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn spsc_ring_cross_thread_handoff() {
        let r = Arc::new(SpscRing::new(4));
        let n = 10_000u64;
        let producer = {
            let r = r.clone();
            thread::spawn(move || {
                for i in 0..n {
                    loop {
                        match r.push(i) {
                            Ok(()) => break,
                            Err(_) => thread::yield_now(),
                        }
                    }
                }
            })
        };
        let mut expect = 0;
        while expect < n {
            if let Some(v) = r.pop() {
                assert_eq!(v, expect, "SPSC must preserve order");
                expect += 1;
            } else {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn spsc_drop_releases_undained_items() {
        let r = SpscRing::new(8);
        let item = Arc::new(0u8);
        for _ in 0..5 {
            r.push(item.clone()).unwrap();
        }
        drop(r.pop());
        drop(r);
        assert_eq!(Arc::strong_count(&item), 1, "ring must drop what it holds");
    }

    #[test]
    fn each_thread_gets_its_own_lane_then_overflow() {
        let set = Arc::new(LaneSet::new(2, 8, 8));
        let workers: Vec<_> = (0..4u64)
            .map(|i| {
                let set = set.clone();
                thread::spawn(move || set.push(i).is_ok())
            })
            .collect();
        for w in workers {
            assert!(w.join().unwrap());
        }
        let mut got = Vec::new();
        set.drain(64, |v| got.push(v));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_thread_reuses_its_claim() {
        let set = LaneSet::<u32>::new(2, 4, 4);
        // Push more than one lane's capacity worth from a single thread:
        // if each push claimed a fresh lane this would spread out; a single
        // claim means the 5th push hits a full ring.
        for i in 0..4 {
            set.push(i).unwrap();
        }
        assert!(set.push(4).is_err(), "single lane of cap 4 must fill");
        let mut n = 0;
        set.drain(16, |_| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn drain_budget_is_fair_across_lanes() {
        // One firehose lane (this thread) and one quiet lane (helper
        // thread). A budgeted sweep must serve both, not drain the
        // firehose dry first.
        let set = Arc::new(LaneSet::new(2, 64, 8));
        for _ in 0..32 {
            set.push(1u8).unwrap();
        }
        let set2 = set.clone();
        thread::spawn(move || set2.push(2u8).unwrap())
            .join()
            .unwrap();
        let mut first_sweep = Vec::new();
        set.drain(4, |v| first_sweep.push(v));
        assert!(
            first_sweep.contains(&2),
            "budget 4 sweep must reach the quiet lane: {first_sweep:?}"
        );
        assert!(
            first_sweep.iter().filter(|&&v| v == 1).count() <= 4,
            "firehose lane must be capped at the per-lane budget"
        );
    }

    #[test]
    fn overflow_threads_still_deliver() {
        let set = Arc::new(LaneSet::new(1, 4, 64));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let set = set.clone();
                thread::spawn(move || {
                    for _ in 0..8 {
                        set.push_blocking(1u64);
                    }
                })
            })
            .collect();
        let mut drained = 0;
        while drained < 32 {
            drained += set.drain(8, |_| {});
            if drained < 32 {
                thread::yield_now();
            }
        }
        for w in workers {
            w.join().unwrap();
        }
        assert!(set.is_empty());
    }

    #[cfg(feature = "obs-enabled")]
    #[test]
    fn lane_metrics_track_pushes_and_occupancy() {
        let reg = obs::Registry::default();
        let set = LaneSet::with_metrics(2, 4, 4, LaneMetrics::registered(&reg, "lanes"));
        for i in 0..4u8 {
            set.push(i).unwrap();
        }
        assert!(set.push(9).is_err());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lanes.push_ok"), 4);
        assert_eq!(snap.counter("lanes.push_full"), 1);
        assert_eq!(snap.gauge("lanes.occupancy").value, 4);
        set.drain(16, |_| {});
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("lanes.occupancy").value, 0);
        assert_eq!(snap.gauge("lanes.occupancy").high_water, 4);
        assert_eq!(snap.histogram("lanes.drained_batch").count, 1);
    }

    #[cfg(feature = "obs-enabled")]
    #[test]
    fn full_lane_parks_the_producer() {
        // Satellite regression shape at the LaneSet level: a producer
        // against a stalled consumer must park, not spin.
        let reg = obs::Registry::default();
        let set = Arc::new(LaneSet::with_metrics(
            1,
            2,
            2,
            LaneMetrics::registered(&reg, "lanes"),
        ));
        let producer = {
            let set = set.clone();
            thread::spawn(move || {
                for i in 0..8u32 {
                    set.push_blocking(i);
                }
            })
        };
        // Wait until the producer has demonstrably parked.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while reg.snapshot().counter("lanes.producer.parks") == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "producer never parked against a stalled consumer"
            );
            thread::yield_now();
        }
        // Unstall the consumer and let everything through.
        let mut drained = 0;
        while drained < 8 {
            drained += set.drain(4, |_| {});
        }
        producer.join().unwrap();
        assert!(reg.snapshot().counter("lanes.producer.wakes") >= 1);
    }
}
