//! `rtmpi` — a small, real-threads, in-process message-passing layer.
//!
//! This is the *live-mode* substrate: it lets the paper's offload
//! infrastructure (the lock-free command queue, request pool, and dedicated
//! offload thread in the `offload` crate) run with actual OS threads, so
//! the real data structures are exercised end-to-end and the examples are
//! runnable programs rather than simulations.
//!
//! Scope: correctness, not wire fidelity. Messages are delivered
//! push-style through per-rank mailboxes (an "eager protocol" for every
//! size, with `Arc` payload hand-off standing in for the shared-address-
//! space zero-copy of the paper's design). Protocol *timing* behaviour —
//! eager/rendezvous crossover, progress stalls, lock contention costs — is
//! the domain of the `mpisim` discrete-event model, because on this
//! machine real-thread timing measures the host scheduler, not the
//! modelled system (see DESIGN.md).
//!
//! Matching follows MPI rules: FIFO per (source, tag) with wildcard
//! support, unexpected-message buffering, probe. The matching logic lives
//! in [`matchq`] and is shared with the socket wire backend
//! (`crates/wire`), so the two live substrates agree on it by
//! construction. Payloads are handed off as `Arc<[u8]>` — one allocation,
//! no double indirection — which is also the shape of the wire backend's
//! receive buffers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

#[cfg(feature = "model-faults")]
pub mod faults;
pub mod matchq;
pub mod transport;

pub use matchq::MatchQueue;
pub use transport::{OpOutcome, Transport, TransportError};

/// Message tag.
pub type Tag = u32;

/// Tags at or above this value are reserved for internal protocol traffic
/// (collective round schedules, barrier tokens). Application sends must
/// stay below it, and — crucially — wildcard (`ANY_TAG`) receives never
/// match reserved tags, so an application `ANY_TAG` recv can never steal a
/// collective round or barrier token mid-flight. This is *the* shared
/// constant: `mpisim`, the offload engine, and `approaches::live` all
/// derive their reserved ranges from here.
pub const TAG_RESERVED_BASE: Tag = 0x7000_0000;

/// Reserved sub-range used by the offload thread's collective schedules
/// (`offload::live`): `[TAG_COLL_BASE, TAG_COLL_BASE + TAG_COLL_SPAN)`.
pub const TAG_COLL_BASE: Tag = TAG_RESERVED_BASE;

/// Reserved sub-range used by direct-mode (application-thread) collective
/// schedules in `approaches::live`:
/// `[TAG_DIRECT_COLL_BASE, TAG_DIRECT_COLL_BASE + TAG_COLL_SPAN)`.
pub const TAG_DIRECT_COLL_BASE: Tag = TAG_RESERVED_BASE + TAG_COLL_SPAN;

/// Width of each reserved collective sub-range; per-collective tags are
/// `base + (seq % TAG_COLL_SPAN)`.
pub const TAG_COLL_SPAN: Tag = 0x1000_0000;

/// Completion status of a receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status {
    pub source: usize,
    pub tag: Tag,
    pub len: usize,
}

struct ReqState {
    done: AtomicBool,
    result: Mutex<Option<(Status, Arc<[u8]>)>>,
    cv: Condvar,
}

/// Handle to a pending operation.
#[derive(Clone)]
pub struct RtRequest {
    state: Arc<ReqState>,
}

impl RtRequest {
    fn new() -> Self {
        Self {
            state: Arc::new(ReqState {
                done: AtomicBool::new(false),
                result: Mutex::new(None),
                cv: Condvar::new(),
            }),
        }
    }

    fn completed(status: Option<(Status, Arc<[u8]>)>) -> Self {
        let r = Self::new();
        r.complete(status);
        r
    }

    fn complete(&self, status: Option<(Status, Arc<[u8]>)>) {
        let mut g = self.state.result.lock();
        *g = status;
        // ORDERING: Release — publishes the result write to is_done()'s
        // Acquire for lock-free completion polling; waiters under the
        // mutex are covered by the lock itself.
        self.state.done.store(true, Ordering::Release);
        self.state.cv.notify_all();
    }

    /// Nonblocking completion check.
    pub fn is_done(&self) -> bool {
        // ORDERING: Acquire — pairs with complete()'s Release; a true
        // result licenses taking the payload.
        self.state.done.load(Ordering::Acquire)
    }

    /// Block the calling OS thread until completion; returns the payload
    /// for receives (`None` for sends).
    pub fn wait(&self) -> Option<(Status, Arc<[u8]>)> {
        let mut g = self.state.result.lock();
        // ORDERING: Acquire — same edge as is_done; the mutex alone would
        // suffice here, but the flag must stay coherent with the
        // lock-free fast path.
        while !self.state.done.load(Ordering::Acquire) {
            self.state.cv.wait(&mut g);
        }
        g.take()
    }

    /// Take the payload if complete.
    pub fn try_take(&self) -> Option<(Status, Arc<[u8]>)> {
        if self.is_done() {
            self.state.result.lock().take()
        } else {
            None
        }
    }
}

struct RankShared {
    mail: Mutex<MatchQueue<RtRequest, Arc<[u8]>>>,
}

type CollResult = Arc<Vec<Arc<[u8]>>>;

struct CollSlot {
    contributions: Mutex<Vec<Option<Arc<[u8]>>>>,
    result: Mutex<Option<CollResult>>,
    arrived: Mutex<usize>,
    generation: Mutex<u64>,
    cv: Condvar,
}

struct WorldShared {
    ranks: Vec<RankShared>,
    coll: CollSlot,
}

/// One rank's handle onto the in-process world. `Send`: move each handle to
/// its own OS thread.
pub struct RtMpi {
    world: Arc<WorldShared>,
    rank: usize,
}

/// Create an `n`-rank world; hand one handle to each thread.
pub fn world(n: usize) -> Vec<RtMpi> {
    assert!(n > 0);
    let shared = Arc::new(WorldShared {
        ranks: (0..n)
            .map(|_| RankShared {
                mail: Mutex::new(MatchQueue::new()),
            })
            .collect(),
        coll: CollSlot {
            contributions: Mutex::new(vec![None; n]),
            result: Mutex::new(None),
            arrived: Mutex::new(0),
            generation: Mutex::new(0),
            cv: Condvar::new(),
        },
    });
    (0..n)
        .map(|rank| RtMpi {
            world: shared.clone(),
            rank,
        })
        .collect()
}

impl RtMpi {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.world.ranks.len()
    }

    /// Nonblocking send. Completes immediately (payload hand-off).
    pub fn isend(&self, dst: usize, tag: Tag, data: Arc<[u8]>) -> RtRequest {
        let mailbox = &self.world.ranks[dst].mail;
        let mut mail = mailbox.lock();
        if let Some(posted) = mail.take_posted(self.rank, tag) {
            let status = Status {
                source: self.rank,
                tag,
                len: data.len(),
            };
            posted.token.complete(Some((status, data)));
        } else {
            mail.push_unexpected(self.rank, tag, data);
        }
        RtRequest::completed(None)
    }

    /// Nonblocking receive; `None` filters are wildcards.
    pub fn irecv(&self, src: Option<usize>, tag: Option<Tag>) -> RtRequest {
        let mut mail = self.world.ranks[self.rank].mail.lock();
        if let Some(u) = mail.take_unexpected(src, tag) {
            let status = Status {
                source: u.src,
                tag: u.tag,
                len: u.msg.len(),
            };
            return RtRequest::completed(Some((status, u.msg)));
        }
        let req = RtRequest::new();
        mail.push_posted(src, tag, req.clone());
        req
    }

    /// Blocking send.
    pub fn send(&self, dst: usize, tag: Tag, data: Arc<[u8]>) {
        self.isend(dst, tag, data).wait();
    }

    /// Blocking receive.
    pub fn recv(&self, src: Option<usize>, tag: Option<Tag>) -> (Status, Arc<[u8]>) {
        self.irecv(src, tag).wait().expect("recv yields payload")
    }

    /// Blocking receive into a caller-provided buffer, truncating when the
    /// arrival is larger (MPI's receive-count semantics: `Status.len`
    /// reports the bytes actually delivered into `buf`, never more than
    /// its capacity).
    pub fn recv_into(&self, src: Option<usize>, tag: Option<Tag>, buf: &mut [u8]) -> Status {
        let (st, data) = self.recv(src, tag);
        let n = st.len.min(buf.len());
        buf[..n].copy_from_slice(&data[..n]);
        Status { len: n, ..st }
    }

    /// Is a matching message waiting unexpectedly?
    pub fn iprobe(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Status> {
        let mail = self.world.ranks[self.rank].mail.lock();
        mail.probe(src, tag).map(|(s, t, d)| Status {
            source: s,
            tag: t,
            len: d.len(),
        })
    }

    /// Generation-counted reusable barrier across all ranks.
    pub fn barrier(&self) {
        let coll = &self.world.coll;
        let n = self.size();
        let mut arrived = coll.arrived.lock();
        let my_gen = *coll.generation.lock();
        *arrived += 1;
        if *arrived == n {
            *arrived = 0;
            *coll.generation.lock() += 1;
            coll.cv.notify_all();
        } else {
            while *coll.generation.lock() == my_gen {
                coll.cv.wait(&mut arrived);
            }
        }
    }

    /// Allgather: returns all contributions indexed by rank. Also the
    /// building block for the other collectives.
    pub fn allgather(&self, mine: Arc<[u8]>) -> Vec<Arc<[u8]>> {
        let coll = &self.world.coll;
        let n = self.size();
        let mut arrived = coll.arrived.lock();
        let my_gen = *coll.generation.lock();
        coll.contributions.lock()[self.rank] = Some(mine);
        *arrived += 1;
        if *arrived == n {
            // Leader: assemble, publish, release.
            let gathered: Vec<Arc<[u8]>> = coll
                .contributions
                .lock()
                .iter_mut()
                .map(|c| c.take().expect("all contributions present"))
                .collect();
            *coll.result.lock() = Some(Arc::new(gathered));
            *arrived = 0;
            *coll.generation.lock() += 1;
            coll.cv.notify_all();
        } else {
            while *coll.generation.lock() == my_gen {
                coll.cv.wait(&mut arrived);
            }
        }
        drop(arrived);
        let result = coll
            .result
            .lock()
            .as_ref()
            .expect("result published")
            .clone();
        result.as_ref().clone()
    }

    /// Sum-allreduce over f64 lanes.
    pub fn allreduce_f64_sum(&self, mine: &[f64]) -> Vec<f64> {
        let bytes: Vec<u8> = mine.iter().flat_map(|x| x.to_le_bytes()).collect();
        let all = self.allgather(Arc::from(bytes));
        let mut acc = vec![0.0f64; mine.len()];
        for contrib in &all {
            for (i, c) in contrib.chunks_exact(8).enumerate() {
                acc[i] += f64::from_le_bytes(c.try_into().expect("8-byte lane"));
            }
        }
        acc
    }

    /// All-to-all of `block`-byte blocks: input holds `n` blocks, block `i`
    /// for rank `i`; returns the transposed blocks.
    pub fn alltoall(&self, input: &[u8], block: usize) -> Vec<u8> {
        let n = self.size();
        assert_eq!(input.len(), n * block);
        let all = self.allgather(Arc::from(input));
        let mut out = vec![0u8; n * block];
        for (src, contrib) in all.iter().enumerate() {
            out[src * block..(src + 1) * block]
                .copy_from_slice(&contrib[self.rank * block..(self.rank + 1) * block]);
        }
        out
    }

    /// Broadcast from `root`.
    pub fn bcast(&self, root: usize, mine: Option<Arc<[u8]>>) -> Arc<[u8]> {
        let contribution = if self.rank == root {
            mine.expect("root provides payload")
        } else {
            Arc::from(Vec::new())
        };
        let all = self.allgather(contribution);
        all[root].clone()
    }
}

impl Transport for RtMpi {
    type Req = RtRequest;

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.ranks.len()
    }

    fn isend(&mut self, dst: usize, tag: Tag, data: Arc<[u8]>) -> RtRequest {
        RtMpi::isend(self, dst, tag, data)
    }

    fn irecv(&mut self, src: Option<usize>, tag: Option<Tag>) -> RtRequest {
        RtMpi::irecv(self, src, tag)
    }

    /// Push-style delivery: sends complete receives directly, there is no
    /// pending wire state to drive.
    fn progress(&mut self) -> bool {
        false
    }

    fn is_done(&mut self, req: &RtRequest) -> bool {
        req.is_done()
    }

    fn try_take(&mut self, req: &RtRequest) -> Option<Result<OpOutcome, TransportError>> {
        if !req.is_done() {
            return None;
        }
        Some(Ok(match req.try_take() {
            Some((st, data)) => OpOutcome::Received(st, data),
            None => OpOutcome::Sent,
        }))
    }

    fn needs_progress(&self) -> bool {
        false
    }

    fn iprobe(&mut self, src: Option<usize>, tag: Option<Tag>) -> Option<Status> {
        RtMpi::iprobe(self, src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn spawn_world<T: Send + 'static>(
        n: usize,
        f: impl Fn(RtMpi) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let handles: Vec<_> = world(n)
            .into_iter()
            .map(|mpi| {
                let f = f.clone();
                thread::spawn(move || f(mpi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect()
    }

    #[test]
    fn ping_pong_roundtrip() {
        let outs = spawn_world(2, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 5, Arc::from(vec![1, 2, 3]));
                let (_, d) = mpi.recv(Some(1), Some(6));
                d.to_vec()
            } else {
                let (_, d) = mpi.recv(Some(0), Some(5));
                let mut back = d.to_vec();
                back.push(4);
                mpi.send(0, 6, Arc::from(back));
                Vec::new()
            }
        });
        assert_eq!(outs[0], vec![1, 2, 3, 4]);
    }

    #[test]
    fn unexpected_message_is_buffered() {
        let outs = spawn_world(2, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, Arc::from(vec![9]));
                mpi.barrier();
                0
            } else {
                mpi.barrier(); // message certainly sent before we post
                let (_, d) = mpi.recv(Some(0), Some(1));
                d[0]
            }
        });
        assert_eq!(outs[1], 9);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let outs = spawn_world(2, |mpi| {
            if mpi.rank() == 0 {
                for i in 0..20u8 {
                    mpi.send(1, 3, Arc::from(vec![i]));
                }
                Vec::new()
            } else {
                (0..20).map(|_| mpi.recv(Some(0), Some(3)).1[0]).collect()
            }
        });
        assert_eq!(outs[1], (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn wildcards_match_any() {
        let outs = spawn_world(3, |mpi| {
            if mpi.rank() == 0 {
                let (s1, _) = mpi.recv(None, None);
                let (s2, _) = mpi.recv(None, None);
                let mut srcs = vec![s1.source, s2.source];
                srcs.sort_unstable();
                srcs
            } else {
                mpi.send(0, 10 + mpi.rank() as u32, Arc::from(vec![0]));
                Vec::new()
            }
        });
        assert_eq!(outs[0], vec![1, 2]);
    }

    #[test]
    fn barrier_is_reusable() {
        let outs = spawn_world(4, |mpi| {
            let mut x = 0u32;
            for _ in 0..50 {
                mpi.barrier();
                x += 1;
            }
            x
        });
        assert_eq!(outs, vec![50; 4]);
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let outs = spawn_world(3, |mpi| {
            let all = mpi.allgather(Arc::from(vec![mpi.rank() as u8; 2]));
            all.iter().map(|v| v[0]).collect::<Vec<_>>()
        });
        for o in outs {
            assert_eq!(o, vec![0, 1, 2]);
        }
    }

    #[test]
    fn allreduce_sums() {
        let outs = spawn_world(4, |mpi| mpi.allreduce_f64_sum(&[mpi.rank() as f64, 2.0]));
        for o in outs {
            assert_eq!(o, vec![6.0, 8.0]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let outs = spawn_world(3, |mpi| {
            let input: Vec<u8> = (0..3).map(|d| (mpi.rank() * 3 + d) as u8).collect();
            mpi.alltoall(&input, 1)
        });
        // out[rank][src] = src*3 + rank
        for (r, o) in outs.iter().enumerate() {
            let expect: Vec<u8> = (0..3).map(|s| (s * 3 + r) as u8).collect();
            assert_eq!(o, &expect);
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let outs = spawn_world(3, |mpi| {
            let payload = (mpi.rank() == 2).then(|| Arc::from(vec![7u8, 8]));
            mpi.bcast(2, payload).to_vec()
        });
        for o in outs {
            assert_eq!(o, vec![7, 8]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_generations() {
        let outs = spawn_world(3, |mpi| {
            let mut sums = Vec::new();
            for round in 0..10 {
                let s = mpi.allreduce_f64_sum(&[(mpi.rank() + round) as f64]);
                sums.push(s[0]);
            }
            sums
        });
        for o in outs {
            let expect: Vec<f64> = (0..10).map(|r| (3 * r + 3) as f64).collect();
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn recv_into_status_len_matches_delivered_bytes() {
        let outs = spawn_world(2, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 7, Arc::from((0u8..17).collect::<Vec<u8>>()));
                mpi.send(1, 8, Arc::from((0u8..17).collect::<Vec<u8>>()));
                (0, Vec::new())
            } else {
                // Arrival larger than the buffer: truncate, report what fit.
                let mut small = [0u8; 8];
                let st = mpi.recv_into(Some(0), Some(7), &mut small);
                assert_eq!(st.len, 8);
                assert_eq!(&small, &[0, 1, 2, 3, 4, 5, 6, 7]);
                // Buffer larger than the arrival: report the true length.
                let mut big = [0xffu8; 32];
                let st2 = mpi.recv_into(Some(0), Some(8), &mut big);
                assert_eq!(st2.len, 17);
                assert!(big[17..].iter().all(|&b| b == 0xff));
                (st.len, big[..st2.len].to_vec())
            }
        });
        assert_eq!(outs[1].1, (0u8..17).collect::<Vec<u8>>());
    }

    #[test]
    fn iprobe_reports_without_consuming() {
        let outs = spawn_world(2, |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 4, Arc::from(vec![0u8; 17]));
                mpi.barrier();
                true
            } else {
                mpi.barrier();
                let st = mpi.iprobe(Some(0), None).expect("probe finds it");
                assert_eq!(st.len, 17);
                assert!(mpi.iprobe(Some(0), Some(4)).is_some());
                let (_, d) = mpi.recv(Some(0), Some(4));
                d.len() == 17
            }
        });
        assert!(outs[1]);
    }
}
