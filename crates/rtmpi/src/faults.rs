//! Seeded, known-fixed bugs kept reinjectable for the protocol model
//! checker's regression suite (`check::proto`). Compiled only under the
//! `model-faults` cargo feature and **off by default even then**: each
//! fault is a runtime flag a test arms explicitly, so feature unification
//! during a workspace build changes nothing for other tests.
//!
//! The point of keeping the bugs alive: the explorer's value claim is "it
//! would have caught these". Arming a fault and asserting the explorer
//! finds it within a bounded budget keeps that claim machine-checked
//! instead of folklore.

use std::sync::atomic::{AtomicBool, Ordering};

/// Fault: wildcard-tag receives match the reserved internal tag space
/// again (the pre-PR7 leak — an application `ANY_TAG` receive could steal
/// a collective round's token, wedging the NBC schedule).
pub static WILDCARD_RESERVED_LEAK: AtomicBool = AtomicBool::new(false);

/// Arm/disarm the wildcard reserved-tag leak. Returns the previous state
/// so tests can restore it.
pub fn set_wildcard_reserved_leak(on: bool) -> bool {
    // ORDERING: SeqCst — test-only toggle, never on a hot path.
    WILDCARD_RESERVED_LEAK.swap(on, Ordering::SeqCst)
}

/// Is the wildcard reserved-tag leak armed?
pub fn wildcard_reserved_leak() -> bool {
    // ORDERING: SeqCst — test-only read, never on a hot path.
    WILDCARD_RESERVED_LEAK.load(Ordering::SeqCst)
}
