//! The live-transport abstraction: what the offload thread (and the live
//! approach layer) needs from a message-passing substrate.
//!
//! Two implementations exist:
//!
//! * [`crate::RtMpi`] — in-process mailboxes, push-style delivery: a send
//!   completes the matching receive directly, so nothing ever needs
//!   polling ([`Transport::needs_progress`] is `false`).
//! * `wire::WireComm` (crates/wire) — ranks as OS processes over real
//!   sockets, with an eager/rendezvous protocol whose pending state
//!   machines advance **only** when [`Transport::progress`] is called.
//!   This is the substrate on which the paper's asynchronous-progress
//!   problem actually exists: whoever owns the transport and polls it is
//!   the progress actor.
//!
//! All methods take `&mut self`: a transport is owned by exactly one
//! thread at a time (the offload thread, or the application thread under
//! the baseline approaches behind a lock). Requests are small cloneable
//! ids; completion values are taken out exactly once via
//! [`Transport::try_take`].

use std::sync::Arc;
use std::time::Duration;

use crate::{Status, Tag};

/// Why a transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer process/rank died (EOF or connection reset on its socket)
    /// while this operation still depended on it.
    PeerLost { peer: usize },
    /// The operation stayed pending past the transport's configured
    /// timeout — the backstop when a peer hangs without dying.
    Timeout { waited_ms: u64 },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerLost { peer } => write!(f, "PeerLost: rank {peer} is gone"),
            TransportError::Timeout { waited_ms } => {
                write!(f, "Timeout: operation pending after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// What a completed operation resolved to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// A send's payload is owned by the transport (or delivered); the
    /// application buffer is reusable.
    Sent,
    /// A receive matched and delivered.
    Received(Status, Arc<[u8]>),
}

/// A live message-passing substrate (see module docs).
pub trait Transport: Send + 'static {
    /// Request handle: a small id, cloneable and inert — all state lives
    /// in the transport.
    type Req: Clone + Send + 'static;

    fn rank(&self) -> usize;
    fn size(&self) -> usize;

    /// Nonblocking send of `data` to `dst`.
    fn isend(&mut self, dst: usize, tag: Tag, data: Arc<[u8]>) -> Self::Req;

    /// Nonblocking receive; `None` filters are wildcards.
    fn irecv(&mut self, src: Option<usize>, tag: Option<Tag>) -> Self::Req;

    /// Drive pending protocol state (flush outboxes, read sockets, run
    /// rendezvous handshakes). Returns `true` when anything advanced.
    /// Push-style transports have nothing to drive and return `false`.
    fn progress(&mut self) -> bool;

    /// Nonblocking completion check. Does *not* drive progress.
    fn is_done(&mut self, req: &Self::Req) -> bool;

    /// Take the outcome if complete; `None` while pending. Each request
    /// yields its outcome exactly once.
    fn try_take(&mut self, req: &Self::Req) -> Option<Result<OpOutcome, TransportError>>;

    /// Drop all transport-side state for an abandoned request (e.g. one
    /// that timed out at the offload layer). Completion may never come.
    fn cancel(&mut self, _req: &Self::Req) {}

    /// Must the owning thread call [`Transport::progress`] for pending
    /// operations to complete? `false` for push-style substrates whose
    /// peers complete our requests directly.
    fn needs_progress(&self) -> bool;

    /// Per-operation pending timeout, if the transport has one configured.
    /// The polling owner converts operations pending longer than this into
    /// [`TransportError::Timeout`] completions.
    fn op_timeout(&self) -> Option<Duration> {
        None
    }

    /// Hint from the owner that it is (or no longer is) inside an
    /// application-initiated MPI call (a blocking wait, or a post that may
    /// consume buffered protocol messages) — progress made now is
    /// synchronous, on the application's clock. Transports that attribute
    /// protocol completions to synchronous vs asynchronous progress (the
    /// wire backend's rendezvous counters) read this; others ignore it.
    fn set_in_wait(&mut self, _in_wait: bool) {}

    /// Is a matching message buffered (unexpected) right now?
    fn iprobe(&mut self, src: Option<usize>, tag: Option<Tag>) -> Option<Status>;

    /// The transport's metrics registry, when it keeps one (the wire
    /// backend's protocol counters). Cloneable: snapshot it from any
    /// thread while the transport itself is owned elsewhere.
    fn obs_registry(&self) -> Option<obs::Registry> {
        None
    }
}
