//! MPI-style message matching, shared between transports.
//!
//! Matching follows the MPI rules every backend must agree on: a receive
//! names an exact source or the wildcard (`None`) and an exact tag or the
//! wildcard, arrivals match posted receives in post order, posted receives
//! match buffered arrivals in arrival order, and the per-`(source, tag)`
//! stream is FIFO. The in-process mailboxes ([`crate::RtMpi`]) and the
//! socket wire backend's progress engine (`crates/wire`) both delegate to
//! this queue, so the two live substrates cannot drift apart on matching
//! semantics.
//!
//! The queue is generic over the *receive token* `R` (what a posted
//! receive resolves to — an in-process request handle, or a wire request
//! id) and the *buffered message* `M` (an eager payload, or a rendezvous
//! RTS descriptor awaiting its CTS).

use std::collections::VecDeque;

use crate::Tag;

/// A posted receive waiting for a matching arrival.
#[derive(Debug)]
pub struct PostedRecv<R> {
    pub src: Option<usize>,
    pub tag: Option<Tag>,
    pub token: R,
}

/// A buffered (unexpected) arrival waiting for a matching receive.
#[derive(Debug)]
pub struct Unexpected<M> {
    pub src: usize,
    pub tag: Tag,
    pub msg: M,
}

/// Does a `(src, tag)` filter pair accept an arrival from `src`/`tag`?
/// `None` is the MPI wildcard (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
///
/// A wildcard tag deliberately does **not** match the reserved internal
/// tag space (`tag >= `[`crate::TAG_RESERVED_BASE`]): collective rounds
/// and barrier tokens travel on reserved tags, and an application
/// `ANY_TAG` receive must never consume them. Internal receives always
/// name their exact tag, so exact matches in the reserved range are
/// unaffected.
pub fn filter_matches(
    src_filter: Option<usize>,
    tag_filter: Option<Tag>,
    src: usize,
    tag: Tag,
) -> bool {
    let tag_ok = match tag_filter {
        Some(t) => t == tag,
        // Seeded regression (check::proto rediscovers it): before the
        // exclusion below, ANY_TAG matched reserved tags and could steal a
        // collective round's frame from the NBC schedule.
        #[cfg(feature = "model-faults")]
        None if crate::faults::wildcard_reserved_leak() => true,
        None => tag < crate::TAG_RESERVED_BASE,
    };
    src_filter.is_none_or(|s| s == src) && tag_ok
}

/// The two-sided matching queue: posted receives on one side, unexpected
/// arrivals on the other. At most one side is non-empty for any matching
/// `(source, tag)` pair — an invariant both transports rely on.
#[derive(Debug)]
pub struct MatchQueue<R, M> {
    posted: VecDeque<PostedRecv<R>>,
    unexpected: VecDeque<Unexpected<M>>,
}

impl<R, M> Default for MatchQueue<R, M> {
    fn default() -> Self {
        Self {
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
        }
    }
}

impl<R, M> MatchQueue<R, M> {
    pub fn new() -> Self {
        Self::default()
    }

    /// An arrival from `(src, tag)`: remove and return the *first* posted
    /// receive that accepts it (post order — the MPI matching rule).
    pub fn take_posted(&mut self, src: usize, tag: Tag) -> Option<PostedRecv<R>> {
        let pos = self
            .posted
            .iter()
            .position(|p| filter_matches(p.src, p.tag, src, tag))?;
        self.posted.remove(pos)
    }

    /// A new receive with the given filters: remove and return the *first*
    /// buffered arrival it accepts (arrival order).
    pub fn take_unexpected(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<Unexpected<M>> {
        let pos = self
            .unexpected
            .iter()
            .position(|u| filter_matches(src, tag, u.src, u.tag))?;
        self.unexpected.remove(pos)
    }

    /// Buffer a receive that found no arrival.
    pub fn push_posted(&mut self, src: Option<usize>, tag: Option<Tag>, token: R) {
        self.posted.push_back(PostedRecv { src, tag, token });
    }

    /// Buffer an arrival that found no receive.
    pub fn push_unexpected(&mut self, src: usize, tag: Tag, msg: M) {
        self.unexpected.push_back(Unexpected { src, tag, msg });
    }

    /// Non-consuming probe of the unexpected queue (MPI_Iprobe).
    pub fn probe(&self, src: Option<usize>, tag: Option<Tag>) -> Option<(usize, Tag, &M)> {
        self.unexpected
            .iter()
            .find(|u| filter_matches(src, tag, u.src, u.tag))
            .map(|u| (u.src, u.tag, &u.msg))
    }

    /// Remove and return every posted receive that names `src` as its
    /// exact source — used when a peer dies so its receivers can be failed
    /// instead of hanging. Wildcard-source receives are left posted (they
    /// may still match a live peer).
    pub fn take_posted_from(&mut self, src: usize) -> Vec<PostedRecv<R>> {
        let mut taken = Vec::new();
        let mut keep = VecDeque::with_capacity(self.posted.len());
        for p in self.posted.drain(..) {
            if p.src == Some(src) {
                taken.push(p);
            } else {
                keep.push_back(p);
            }
        }
        self.posted = keep;
        taken
    }

    /// Keep only the buffered arrivals `f` accepts — used when a peer dies
    /// to purge arrivals that can no longer complete (a rendezvous RTS
    /// whose DATA will never come), while keeping fully-delivered ones.
    pub fn retain_unexpected(&mut self, f: impl FnMut(&Unexpected<M>) -> bool) {
        self.unexpected.retain(f);
    }

    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcards_and_exact_filters() {
        assert!(filter_matches(None, None, 3, 9));
        assert!(filter_matches(Some(3), None, 3, 9));
        assert!(filter_matches(None, Some(9), 3, 9));
        assert!(!filter_matches(Some(2), None, 3, 9));
        assert!(!filter_matches(None, Some(8), 3, 9));
    }

    #[test]
    fn wildcard_tag_excludes_reserved_internal_space() {
        use crate::{TAG_COLL_SPAN, TAG_DIRECT_COLL_BASE, TAG_RESERVED_BASE};
        // ANY_TAG never matches reserved tags, from either sub-range...
        assert!(!filter_matches(None, None, 0, TAG_RESERVED_BASE));
        assert!(!filter_matches(Some(0), None, 0, TAG_RESERVED_BASE + 17));
        assert!(!filter_matches(None, None, 2, TAG_DIRECT_COLL_BASE));
        assert!(!filter_matches(
            None,
            None,
            2,
            TAG_DIRECT_COLL_BASE + TAG_COLL_SPAN - 1
        ));
        // ...while exact filters on reserved tags (what collective-round
        // receives post) still match, and the app range is untouched.
        assert!(filter_matches(
            Some(1),
            Some(TAG_RESERVED_BASE + 17),
            1,
            TAG_RESERVED_BASE + 17
        ));
        assert!(filter_matches(None, None, 1, TAG_RESERVED_BASE - 1));
    }

    #[test]
    fn wildcard_recv_skips_buffered_internal_arrival() {
        let mut q: MatchQueue<(), u8> = MatchQueue::new();
        // A barrier token arrives before the wildcard recv is served...
        q.push_unexpected(1, crate::TAG_DIRECT_COLL_BASE, 0xB0);
        q.push_unexpected(1, 5, 0xA0);
        // ...the ANY_SOURCE/ANY_TAG recv must take the *app* message.
        assert_eq!(q.take_unexpected(None, None).map(|u| u.msg), Some(0xA0));
        // The token stays for the exact-tag internal receive.
        assert_eq!(
            q.take_unexpected(Some(1), Some(crate::TAG_DIRECT_COLL_BASE))
                .map(|u| u.msg),
            Some(0xB0)
        );
        // An internal arrival never matches a posted wildcard recv either.
        let mut q: MatchQueue<u32, ()> = MatchQueue::new();
        q.push_posted(None, None, 7);
        assert!(q.take_posted(0, crate::TAG_RESERVED_BASE + 3).is_none());
        assert_eq!(q.take_posted(0, 3).map(|p| p.token), Some(7));
    }

    #[test]
    fn arrivals_match_in_post_order() {
        let mut q: MatchQueue<u32, ()> = MatchQueue::new();
        q.push_posted(None, None, 1); // wildcard, posted first
        q.push_posted(Some(0), Some(5), 2);
        // Arrival from (0, 5) must match the *first* posted recv even
        // though the second names it exactly.
        assert_eq!(q.take_posted(0, 5).map(|p| p.token), Some(1));
        assert_eq!(q.take_posted(0, 5).map(|p| p.token), Some(2));
        assert!(q.take_posted(0, 5).is_none());
    }

    #[test]
    fn receives_match_in_arrival_order() {
        let mut q: MatchQueue<(), u8> = MatchQueue::new();
        q.push_unexpected(0, 1, 10);
        q.push_unexpected(1, 1, 11);
        q.push_unexpected(0, 1, 12);
        // Wildcard source takes arrival order; exact source skips others.
        assert_eq!(q.take_unexpected(None, Some(1)).map(|u| u.msg), Some(10));
        assert_eq!(q.take_unexpected(Some(1), None).map(|u| u.msg), Some(11));
        assert_eq!(q.take_unexpected(None, None).map(|u| u.msg), Some(12));
    }

    #[test]
    fn probe_does_not_consume() {
        let mut q: MatchQueue<(), u8> = MatchQueue::new();
        q.push_unexpected(2, 7, 42);
        assert_eq!(q.probe(Some(2), None).map(|(_, _, m)| *m), Some(42));
        assert_eq!(q.unexpected_len(), 1);
        assert!(q.probe(Some(1), None).is_none());
    }

    #[test]
    fn peer_death_drains_only_exact_source_receives() {
        let mut q: MatchQueue<u32, ()> = MatchQueue::new();
        q.push_posted(Some(1), None, 1);
        q.push_posted(None, None, 2);
        q.push_posted(Some(1), Some(4), 3);
        q.push_posted(Some(0), None, 4);
        let dead: Vec<u32> = q.take_posted_from(1).into_iter().map(|p| p.token).collect();
        assert_eq!(dead, vec![1, 3]);
        assert_eq!(q.posted_len(), 2);
    }
}
