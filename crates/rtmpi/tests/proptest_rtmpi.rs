//! Property-based tests of the real-threads message layer: arbitrary tagged
//! message scripts must be delivered completely, with per-tag FIFO order,
//! under real concurrency.

use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sender pushes an arbitrary tagged script; receiver drains per-tag.
    /// Every message arrives exactly once and in per-tag order.
    #[test]
    fn tagged_script_is_delivered_in_per_tag_order(tags in prop::collection::vec(0u32..4, 1..60)) {
        let mut world = rtmpi::world(2);
        let rx_side = world.pop().expect("rank 1");
        let tx_side = world.pop().expect("rank 0");
        let tags = Arc::new(tags);
        let tags2 = tags.clone();
        let sender = thread::spawn(move || {
            for (i, &t) in tags2.iter().enumerate() {
                tx_side.send(1, t, Arc::from(vec![i as u8]));
            }
        });
        // Receive per tag, in tag order — message payloads must appear in
        // ascending send order within each tag.
        let mut per_tag: Vec<Vec<u8>> = vec![Vec::new(); 4];
        for t in 0..4u32 {
            let n = tags.iter().filter(|&&x| x == t).count();
            for _ in 0..n {
                let (st, d) = rx_side.recv(Some(0), Some(t));
                prop_assert_eq!(st.tag, t);
                per_tag[t as usize].push(d[0]);
            }
        }
        sender.join().expect("sender");
        for (t, seq) in per_tag.iter().enumerate() {
            prop_assert!(
                seq.windows(2).all(|w| w[0] < w[1]),
                "tag {t} out of order: {seq:?}"
            );
        }
        let total: usize = per_tag.iter().map(Vec::len).sum();
        prop_assert_eq!(total, tags.len());
    }

    /// Probe never lies: after a barrier-synchronized send, iprobe sees the
    /// message with the right metadata and recv consumes exactly it.
    #[test]
    fn probe_agrees_with_recv(len in 0usize..200, tag in 0u32..100) {
        let mut world = rtmpi::world(2);
        let rx_side = world.pop().expect("rank 1");
        let tx_side = world.pop().expect("rank 0");
        let sender = thread::spawn(move || {
            tx_side.send(1, tag, Arc::from(vec![7u8; len]));
            tx_side.barrier();
        });
        rx_side.barrier();
        let st = rx_side.iprobe(Some(0), None).expect("message visible");
        prop_assert_eq!(st.tag, tag);
        prop_assert_eq!(st.len, len);
        let (st2, d) = rx_side.recv(Some(0), Some(tag));
        prop_assert_eq!(st2.len, len);
        prop_assert_eq!(d.len(), len);
        prop_assert!(rx_side.iprobe(Some(0), None).is_none());
        sender.join().expect("sender");
    }

    /// Collectives compute correct results for arbitrary rank counts and
    /// payload shapes under real threads.
    #[test]
    fn collectives_hold_for_arbitrary_shapes(p in 2usize..6, lanes in 1usize..6, root_sel in any::<u8>()) {
        let root = root_sel as usize % p;
        let handles: Vec<_> = rtmpi::world(p)
            .into_iter()
            .map(|mpi| {
                thread::spawn(move || {
                    let me = mpi.rank();
                    let mine: Vec<f64> = (0..lanes).map(|l| (me * 10 + l) as f64).collect();
                    let sum = mpi.allreduce_f64_sum(&mine);
                    let bc = mpi.bcast(
                        root,
                        (me == root).then(|| Arc::from(vec![root as u8; 3])),
                    );
                    (sum, bc.to_vec())
                })
            })
            .collect();
        let outs: Vec<_> = handles.into_iter().map(|h| h.join().expect("rank")).collect();
        for (sum, bc) in outs {
            for (l, &v) in sum.iter().enumerate() {
                let expect: f64 = (0..p).map(|r| (r * 10 + l) as f64).sum();
                prop_assert!((v - expect).abs() < 1e-9);
            }
            prop_assert_eq!(bc, vec![root as u8; 3]);
        }
    }
}
