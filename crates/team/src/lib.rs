//! `team` — an OpenMP-like thread team for simulated ranks.
//!
//! The paper's applications are MPI+OpenMP: each rank runs a team of
//! threads that compute in parallel regions, synchronize at barriers, and
//! funnel MPI calls through the master thread (or, with the *thread-groups*
//! library of Fig 12, through one leader per group).
//!
//! In the DES, a "thread" is an async task pinned conceptually to one core
//! of the rank's socket. [`Team::parallel`] mirrors `#pragma omp parallel`:
//! it spawns `size` member tasks and joins them; [`Ctx::barrier`] mirrors
//! `#pragma omp barrier`; [`Ctx::compute_share`] charges each member its
//! slice of a parallel loop's work.
//!
//! When an approach dedicates one core to communication (the offload
//! thread, the comm-self thread, Cray core specialization), the application
//! team simply gets one fewer member — which is exactly how the paper
//! accounts for the "small loss of compute resources" (Table 1's
//! internal-compute slowdown column).

use destime::sync::SimBarrier;
use destime::{Env, Nanos};
use std::future::Future;

/// A parallel region runner for one simulated rank.
#[derive(Clone)]
pub struct Team {
    env: Env,
    size: usize,
}

/// Per-member context inside a parallel region.
#[derive(Clone)]
pub struct Ctx {
    env: Env,
    tid: usize,
    size: usize,
    barrier: SimBarrier,
}

impl Team {
    pub fn new(env: Env, size: usize) -> Self {
        assert!(size > 0, "a team needs at least one thread");
        Self { env, size }
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on every team member concurrently (the `omp parallel`
    /// region); returns each member's result, indexed by thread id.
    pub async fn parallel<T, F, Fut>(&self, f: F) -> Vec<T>
    where
        T: 'static,
        F: Fn(Ctx) -> Fut,
        Fut: Future<Output = T> + 'static,
    {
        let barrier = SimBarrier::new(self.size);
        let mut handles = Vec::with_capacity(self.size);
        for tid in 0..self.size {
            let ctx = Ctx {
                env: self.env.clone(),
                tid,
                size: self.size,
                barrier: barrier.clone(),
            };
            handles.push(self.env.spawn(f(ctx)));
        }
        let mut out = Vec::with_capacity(self.size);
        for h in handles {
            out.push(h.join().await);
        }
        out
    }
}

impl Ctx {
    pub fn tid(&self) -> usize {
        self.tid
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// True for thread 0 (the `omp master`).
    pub fn is_master(&self) -> bool {
        self.tid == 0
    }

    pub fn env(&self) -> &Env {
        &self.env
    }

    /// `#pragma omp barrier`; resolves to `true` for the last arriver.
    pub async fn barrier(&self) -> bool {
        self.barrier.wait().await
    }

    /// Charge this member its share of `total_ns` of perfectly-divisible
    /// parallel work (a static-scheduled `omp for`).
    pub async fn compute_share(&self, total_ns: Nanos) {
        self.env.advance(total_ns / self.size as u64).await;
    }

    /// Charge this member `chunk_ns` of its own work.
    pub async fn compute(&self, chunk_ns: Nanos) {
        self.env.advance(chunk_ns).await;
    }

    /// Split the team into `n_groups` contiguous groups (the paper's
    /// *thread-groups* library [33], used for the Fig 12 experiment).
    /// Returns this member's group view. All members must call with the
    /// same `n_groups`.
    pub fn group(&self, n_groups: usize) -> Group {
        assert!(n_groups > 0 && n_groups <= self.size);
        let base = self.size / n_groups;
        let extra = self.size % n_groups;
        // Groups 0..extra have (base+1) members.
        let mut start = 0;
        let mut found = (0, 0, base);
        for g in 0..n_groups {
            let len = base + usize::from(g < extra);
            if self.tid < start + len {
                found = (g, self.tid - start, len);
                break;
            }
            start += len;
        }
        let (gid, rank_in_group, members) = found;
        Group {
            gid,
            rank_in_group,
            members,
            n_groups,
        }
    }
}

/// A member's view of its thread-group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Group {
    /// Group index in `0..n_groups`.
    pub gid: usize,
    /// This thread's rank within the group.
    pub rank_in_group: usize,
    /// Number of threads in this group.
    pub members: usize,
    /// Total number of groups.
    pub n_groups: usize,
}

impl Group {
    /// The group leader issues the group's communication.
    pub fn is_leader(&self) -> bool {
        self.rank_in_group == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use destime::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn parallel_runs_all_members() {
        Sim::new().run(|env| async move {
            let team = Team::new(env, 4);
            let out = team.parallel(|ctx| async move { ctx.tid() * 2 }).await;
            assert_eq!(out, vec![0, 2, 4, 6]);
        });
    }

    #[test]
    fn barrier_orders_phases() {
        let log: Rc<RefCell<Vec<(usize, u8)>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        Sim::new().run(|env| async move {
            let team = Team::new(env.clone(), 3);
            team.parallel(move |ctx| {
                let log = log2.clone();
                async move {
                    // Phase A takes tid-dependent time.
                    ctx.compute((ctx.tid() as u64 + 1) * 100).await;
                    log.borrow_mut().push((ctx.tid(), b'a'));
                    ctx.barrier().await;
                    log.borrow_mut().push((ctx.tid(), b'b'));
                }
            })
            .await;
        });
        let log = log.borrow();
        let first_b = log.iter().position(|&(_, p)| p == b'b').expect("some b");
        assert!(
            log[..first_b].iter().all(|&(_, p)| p == b'a'),
            "all phase-a entries precede any phase-b entry: {log:?}"
        );
        assert_eq!(log.len(), 6);
    }

    #[test]
    fn compute_share_divides_work() {
        let t = Sim::new().run(|env| async move {
            let team = Team::new(env, 4);
            team.parallel(|ctx| async move {
                ctx.compute_share(4_000).await;
            })
            .await;
        });
        assert_eq!(t, 1_000);
    }

    #[test]
    fn smaller_team_takes_longer() {
        let time_for = |n: usize| {
            Sim::new().run(move |env| async move {
                let team = Team::new(env, n);
                team.parallel(|ctx| async move { ctx.compute_share(14_000).await })
                    .await;
            })
        };
        // The "dedicate one core to communication" cost: 14 threads vs 13.
        assert_eq!(time_for(14), 1_000);
        assert!(time_for(13) > time_for(14));
    }

    #[test]
    fn master_is_thread_zero() {
        Sim::new().run(|env| async move {
            let team = Team::new(env, 3);
            let out = team.parallel(|ctx| async move { ctx.is_master() }).await;
            assert_eq!(out, vec![true, false, false]);
        });
    }

    #[test]
    fn groups_partition_evenly() {
        Sim::new().run(|env| async move {
            let team = Team::new(env, 8);
            let out = team.parallel(|ctx| async move { ctx.group(4) }).await;
            for (tid, g) in out.iter().enumerate() {
                assert_eq!(g.gid, tid / 2);
                assert_eq!(g.rank_in_group, tid % 2);
                assert_eq!(g.members, 2);
                assert_eq!(g.is_leader(), tid % 2 == 0);
            }
        });
    }

    #[test]
    fn groups_partition_with_remainder() {
        Sim::new().run(|env| async move {
            let team = Team::new(env, 7);
            let out = team.parallel(|ctx| async move { ctx.group(3) }).await;
            // Sizes 3,2,2.
            let sizes: Vec<usize> = out.iter().map(|g| g.members).collect();
            assert_eq!(sizes, vec![3, 3, 3, 2, 2, 2, 2]);
            let leaders: Vec<usize> = out
                .iter()
                .enumerate()
                .filter(|(_, g)| g.is_leader())
                .map(|(t, _)| t)
                .collect();
            assert_eq!(leaders, vec![0, 3, 5]);
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_size_team_rejected() {
        Sim::new().run(|env| async move {
            let _ = Team::new(env, 0);
        });
    }
}
