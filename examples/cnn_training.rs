//! CNN training end-to-end: train the small gradient-checked CNN on the
//! synthetic quadrant task, single-rank and data-parallel over two
//! simulated ranks (real gradients all-reduced through the offloaded MPI),
//! and confirm both reach the same accuracy.
//!
//! Run: `cargo run --release --example cnn_training`
//!
//! **Multi-process mode:** under the wire launcher each rank is an OS
//! process over real Unix-domain sockets running data-parallel SGD with
//! the gradient all-reduce as an NBC schedule through the live
//! strategies: `offload-run -n 4 cnn_training` (see `cnn::live_driver`).

use approaches::{run_approach, AnyComm, Approach, Comm};
use cnn::network::{synthetic_batch, SmallCnn};
use cnn::Tensor;
use mpisim::{Bytes, Dtype, ReduceOp};
use numeric::SplitMix64;
use std::rc::Rc;

const STEPS: usize = 40;
const BATCH: usize = 16;
const LR: f32 = 0.1;

/// Training steps for the multi-process run — enough to catch replica
/// divergence, short enough for a smoke lane.
const WIRE_STEPS: usize = 8;

/// One rank of the multi-process run (we are inside `offload-run`):
/// train data-parallel replicas over every live strategy on the same
/// socket mesh, check the replicas stay synchronized, then run the
/// fig-3-style gradient-allreduce overlap panel.
fn wire_main() {
    use cnn::live_driver;
    let transport = match wire::from_env() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cnn_training: wire bootstrap failed: {e}");
            std::process::exit(2);
        }
    };
    use rtmpi::Transport as _;
    let (rank, size) = (transport.rank(), transport.size());
    assert!(size >= 2, "data-parallel training needs at least 2 ranks");
    let iters = if harness::quick_mode() { 2 } else { 4 };

    // Correctness: every strategy trains the same replicas to (nearly)
    // the same weights — reductions may reassociate, nothing more.
    let mut t = transport;
    for approach in approaches::live::LiveApproach::ALL {
        let mut comm = approaches::live::LiveComm::start(approach, t);
        let net = live_driver::train_data_parallel_live(&mut comm, WIRE_STEPS, LR)
            .expect("data-parallel training");
        let spread = live_driver::weight_spread(&mut comm, &net).expect("weight allgather");
        assert!(
            spread < 1e-3,
            "{} replicas diverged: weight-checksum spread {spread:e}",
            approach.name()
        );
        if rank == 0 {
            println!(
                "{:8}: {} steps x {} ranks, replica weight spread {spread:.2e}",
                approach.name(),
                WIRE_STEPS,
                size
            );
        }
        t = comm.finalize();
    }

    // Overlap panel: the step-0 gradient reduction with forward/backward
    // passes inserted, repeated for the perf snapshot.
    let mut by_repeat = Vec::new();
    for _ in 0..harness::bench_repeats() {
        let mut rows = Vec::new();
        for approach in approaches::live::LiveApproach::ALL {
            let (row, back) = live_driver::nbc_overlap_panel(approach, t, iters);
            t = back;
            rows.push(row);
        }
        by_repeat.push(rows);
    }
    if rank == 0 {
        println!("\n== gradient allreduce overlap over the wire, {size} ranks ==");
        harness::nbc_overlap_table(by_repeat.last().expect("one repeat")).print("rank 0 observed");
        harness::emit_snapshot(&harness::nbc_overlap_snapshot(
            "cnn_wire",
            "§5.3 data-parallel gradient allreduce over the socket wire (rank 0)",
            &by_repeat,
        ));
    }
    println!("rank {rank} ok");
}

fn accuracy(net: &SmallCnn, rng: &mut SplitMix64) -> f64 {
    let (x, labels) = synthetic_batch(128, 8, 8, rng);
    let pred = net.predict(&x);
    pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 128.0
}

fn main() {
    if wire::is_wire_process() {
        return wire_main();
    }
    println!("== CNN training on the synthetic quadrant task ==\n");

    // Single-rank reference run.
    let mut rng = SplitMix64::new(90210);
    let mut net = SmallCnn::new(1, 8, 8, 4, 4, &mut rng);
    let mut data_rng = SplitMix64::new(42);
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..STEPS {
        let (x, labels) = synthetic_batch(BATCH, 8, 8, &mut data_rng);
        net.zero_grad();
        let loss = net.forward_backward(&x, &labels);
        net.sgd_step(LR);
        if step == 0 {
            first = loss;
        }
        last = loss;
    }
    let mut eval_rng = SplitMix64::new(7);
    let acc = accuracy(&net, &mut eval_rng);
    println!(
        "single rank : loss {first:.3} -> {last:.3}, accuracy {:.1}%",
        acc * 100.0
    );

    // Data-parallel over two simulated ranks, gradients through the
    // offloaded all-reduce.
    let mut data_rng = SplitMix64::new(42);
    let batches: Rc<Vec<(Tensor, Vec<usize>)>> = Rc::new(
        (0..STEPS)
            .map(|_| synthetic_batch(BATCH, 8, 8, &mut data_rng))
            .collect(),
    );
    let (outs, _) = run_approach(
        2,
        simnet::MachineProfile::xeon(),
        Approach::Offload,
        false,
        move |comm: AnyComm| {
            let batches = batches.clone();
            async move {
                let mut rng = SplitMix64::new(90210);
                let mut net = SmallCnn::new(1, 8, 8, 4, 4, &mut rng);
                let half = BATCH / 2;
                let r = comm.rank();
                for (x, labels) in batches.iter() {
                    let stride = x.data.len() / BATCH;
                    let mut local = Tensor::zeros([half, 1, 8, 8]);
                    local
                        .data
                        .copy_from_slice(&x.data[r * half * stride..(r + 1) * half * stride]);
                    net.zero_grad();
                    let _ = net.forward_backward(&local, &labels[r * half..(r + 1) * half]);
                    let g = net.gradients();
                    let bytes: Vec<u8> = g.iter().flat_map(|v| v.to_le_bytes()).collect();
                    let summed = comm
                        .allreduce(Bytes::real(bytes), Dtype::F32, ReduceOp::Sum)
                        .await;
                    let mut avg: Vec<f32> = summed
                        .to_vec()
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("lane")) * 0.5)
                        .collect();
                    net.set_gradients(&avg);
                    avg.clear();
                    net.sgd_step(LR);
                }
                let mut eval_rng = SplitMix64::new(7);
                accuracy(&net, &mut eval_rng)
            }
        },
    );
    println!(
        "data-parallel (2 offloaded ranks): accuracy {:.1}% / {:.1}%",
        outs[0] * 100.0,
        outs[1] * 100.0
    );
    assert!((outs[0] - acc).abs() < 1e-9, "data-parallel must match");
    assert!(acc > 0.75, "the task should be learned");
    println!("\nDistributed training matches the single-rank run exactly.");
}
