//! CNN training end-to-end: train the small gradient-checked CNN on the
//! synthetic quadrant task, single-rank and data-parallel over two
//! simulated ranks (real gradients all-reduced through the offloaded MPI),
//! and confirm both reach the same accuracy.
//!
//! Run: `cargo run --release --example cnn_training`

use approaches::{run_approach, AnyComm, Approach, Comm};
use cnn::network::{synthetic_batch, SmallCnn};
use cnn::Tensor;
use mpisim::{Bytes, Dtype, ReduceOp};
use numeric::SplitMix64;
use std::rc::Rc;

const STEPS: usize = 40;
const BATCH: usize = 16;
const LR: f32 = 0.1;

fn accuracy(net: &SmallCnn, rng: &mut SplitMix64) -> f64 {
    let (x, labels) = synthetic_batch(128, 8, 8, rng);
    let pred = net.predict(&x);
    pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 128.0
}

fn main() {
    println!("== CNN training on the synthetic quadrant task ==\n");

    // Single-rank reference run.
    let mut rng = SplitMix64::new(90210);
    let mut net = SmallCnn::new(1, 8, 8, 4, 4, &mut rng);
    let mut data_rng = SplitMix64::new(42);
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..STEPS {
        let (x, labels) = synthetic_batch(BATCH, 8, 8, &mut data_rng);
        net.zero_grad();
        let loss = net.forward_backward(&x, &labels);
        net.sgd_step(LR);
        if step == 0 {
            first = loss;
        }
        last = loss;
    }
    let mut eval_rng = SplitMix64::new(7);
    let acc = accuracy(&net, &mut eval_rng);
    println!(
        "single rank : loss {first:.3} -> {last:.3}, accuracy {:.1}%",
        acc * 100.0
    );

    // Data-parallel over two simulated ranks, gradients through the
    // offloaded all-reduce.
    let mut data_rng = SplitMix64::new(42);
    let batches: Rc<Vec<(Tensor, Vec<usize>)>> = Rc::new(
        (0..STEPS)
            .map(|_| synthetic_batch(BATCH, 8, 8, &mut data_rng))
            .collect(),
    );
    let (outs, _) = run_approach(
        2,
        simnet::MachineProfile::xeon(),
        Approach::Offload,
        false,
        move |comm: AnyComm| {
            let batches = batches.clone();
            async move {
                let mut rng = SplitMix64::new(90210);
                let mut net = SmallCnn::new(1, 8, 8, 4, 4, &mut rng);
                let half = BATCH / 2;
                let r = comm.rank();
                for (x, labels) in batches.iter() {
                    let stride = x.data.len() / BATCH;
                    let mut local = Tensor::zeros([half, 1, 8, 8]);
                    local
                        .data
                        .copy_from_slice(&x.data[r * half * stride..(r + 1) * half * stride]);
                    net.zero_grad();
                    let _ = net.forward_backward(&local, &labels[r * half..(r + 1) * half]);
                    let g = net.gradients();
                    let bytes: Vec<u8> = g.iter().flat_map(|v| v.to_le_bytes()).collect();
                    let summed = comm
                        .allreduce(Bytes::real(bytes), Dtype::F32, ReduceOp::Sum)
                        .await;
                    let mut avg: Vec<f32> = summed
                        .to_vec()
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("lane")) * 0.5)
                        .collect();
                    net.set_gradients(&avg);
                    avg.clear();
                    net.sgd_step(LR);
                }
                let mut eval_rng = SplitMix64::new(7);
                accuracy(&net, &mut eval_rng)
            }
        },
    );
    println!(
        "data-parallel (2 offloaded ranks): accuracy {:.1}% / {:.1}%",
        outs[0] * 100.0,
        outs[1] * 100.0
    );
    assert!((outs[0] - acc).abs() < 1e-9, "data-parallel must match");
    assert!(acc > 0.75, "the task should be learned");
    println!("\nDistributed training matches the single-rank run exactly.");
}
