//! Quickstart: the offload infrastructure on **real OS threads**.
//!
//! Spawns a 4-rank in-process world, each rank with its dedicated offload
//! thread servicing the lock-free command queue, and demonstrates the
//! paper's key properties:
//!
//! 1. nonblocking calls return a request handle immediately (constant-cost
//!    posting — one pool slot + one queue push);
//! 2. `MPI_Test` is a single done-flag check;
//! 3. blocking collectives execute as nonblocking schedules inside the
//!    offload thread;
//! 4. multiple application threads of one rank issue MPI calls
//!    concurrently with no MPI-level locking (`MPI_THREAD_MULTIPLE` for
//!    free).
//!
//! Run: `cargo run --release --example quickstart`

use offload::{offload_world, Completion};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

fn main() {
    const RANKS: usize = 4;
    println!("== offload quickstart: {RANKS} ranks, one offload thread each ==\n");
    let ranks = offload_world(RANKS);
    let handles: Vec<_> = ranks.iter().map(|r| r.handle()).collect();

    // --- 1. ring exchange with nonblocking calls -------------------------
    let workers: Vec<_> = handles
        .iter()
        .cloned()
        .map(|h| {
            thread::spawn(move || {
                let me = h.rank();
                let right = (me + 1) % h.size();
                let left = (me + h.size() - 1) % h.size();
                let rx = h.irecv(Some(left), Some(1));
                let t0 = Instant::now();
                let tx = h.isend(right, 1, Arc::from(vec![me as u8; 1 << 20]));
                let post = t0.elapsed();
                // The 1 MiB isend returned without copying or blocking:
                let sent = h.wait(tx);
                assert!(matches!(sent, Completion::Sent));
                let (st, data) = match h.wait(rx) {
                    Completion::Received(st, d) => (st, d),
                    other => panic!("unexpected completion {other:?}"),
                };
                assert_eq!(st.source, left);
                assert!(data.iter().all(|&b| b == left as u8));
                (me, post)
            })
        })
        .collect();
    for w in workers {
        let (me, post) = w.join().expect("worker");
        println!("rank {me}: 1 MiB isend posted in {post:?} (size-independent)");
    }

    // --- 2. offloaded collectives ----------------------------------------
    let workers: Vec<_> = handles
        .iter()
        .cloned()
        .map(|h| {
            thread::spawn(move || {
                let sum = h.allreduce_f64_sum(&[h.rank() as f64, 1.0]);
                h.barrier();
                let gathered = h.allgather(vec![h.rank() as u8]);
                (h.rank(), sum, gathered)
            })
        })
        .collect();
    for w in workers {
        let (me, sum, gathered) = w.join().expect("worker");
        assert_eq!(sum, vec![6.0, 4.0]); // 0+1+2+3, 4×1
        assert_eq!(gathered, vec![0, 1, 2, 3]);
        if me == 0 {
            println!("\nallreduce(ranks) = {sum:?}, allgather = {gathered:?}");
        }
    }

    // --- 3. THREAD_MULTIPLE: many app threads, one rank -------------------
    let h0 = handles[0].clone();
    let h1 = handles[1].clone();
    let senders: Vec<_> = (0..4u32)
        .map(|t| {
            let h = h0.clone();
            thread::spawn(move || {
                for i in 0..100 {
                    h.send(1, t, Arc::from(vec![(i % 256) as u8]));
                }
            })
        })
        .collect();
    let recv_thread = thread::spawn(move || {
        let mut n = 0;
        for _ in 0..400 {
            let _ = h1.recv(Some(0), None);
            n += 1;
        }
        n
    });
    for s in senders {
        s.join().expect("sender");
    }
    let got = recv_thread.join().expect("receiver");
    println!(
        "\n4 concurrent app threads sent 400 messages through one offload thread: received {got}"
    );

    for r in ranks {
        r.finalize();
    }
    println!("\nall offload threads drained and joined — done.");
}
