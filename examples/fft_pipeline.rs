//! Distributed FFT end-to-end: transform a 4096-point signal over 4
//! simulated ranks with the blocking transpose algorithm and the
//! segmented pipelined (SOI-style) variant, verify both against the local
//! reference, and compare the virtual time each approach needs for the
//! pipelined transform.
//!
//! Run: `cargo run --release --example fft_pipeline`
//!
//! **Multi-process mode:** under the wire launcher each rank is an OS
//! process over real Unix-domain sockets, the global transpose an NBC
//! alltoall schedule through the live strategies:
//! `offload-run -n 4 fft_pipeline` (fig-5-style panel, see
//! `fft1d::live_driver`).

use approaches::{run_approach, AnyComm, Approach, Comm};
use fft1d::dist::{fft_dist, fft_dist_pipelined, gather_natural, scatter_natural, DistPlan};
use fft1d::local::{fft, max_rel_error};
use numeric::{Complex, Complex64, SplitMix64};
use std::rc::Rc;

/// One rank of the multi-process panel (we are inside `offload-run`):
/// first the blocking distributed transform under each live strategy
/// (correctness — the spectrum must match the reference column FFTs of
/// the expected transpose), then the fig-5-style alltoall overlap
/// measurement, repeated `bench_repeats()` times for the perf snapshot.
fn wire_main() {
    use fft1d::live_driver;
    let transport = match wire::from_env() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fft_pipeline: wire bootstrap failed: {e}");
            std::process::exit(2);
        }
    };
    use rtmpi::Transport as _;
    let (rank, size) = (transport.rank(), transport.size());
    let plan = live_driver::panel_plan(size);
    let iters = if harness::quick_mode() { 2 } else { 4 };

    let mut t = transport;
    // Correctness: the full transform over the live collective agrees
    // with a locally recomputed reference on every rank and strategy.
    for approach in approaches::live::LiveApproach::ALL {
        let mut comm = approaches::live::LiveComm::start(approach, t);
        let out = live_driver::fft_dist_live(&mut comm, &plan, live_driver::rank_slab(&plan, rank))
            .expect("distributed FFT");
        let reference = {
            // Column-FFT the expected receive buffer — same math, no comm.
            let bytes = live_driver::expected_transpose(&plan, rank);
            let block = plan.rows_local() * plan.cols_local() * 16;
            let mut cols_mat = vec![vec![Complex64::zero(); plan.n1]; plan.cols_local()];
            for src in 0..plan.p {
                let blk = fft1d::dist::decode(&bytes[src * block..(src + 1) * block]);
                for (bi, v) in blk.iter().enumerate() {
                    let i = bi / plan.cols_local();
                    let k2l = bi % plan.cols_local();
                    cols_mat[k2l][src * plan.rows_local() + i] = *v;
                }
            }
            let mut res = Vec::with_capacity(plan.local_len());
            for col in cols_mat.iter_mut() {
                fft(col);
                res.extend_from_slice(col);
            }
            res
        };
        let err = max_rel_error(&out, &reference);
        assert!(err < 1e-12, "{}: spectrum error {err:e}", approach.name());
        if rank == 0 {
            println!(
                "{:8}: {}-point distributed FFT over {size} ranks, max rel err {err:.2e}",
                approach.name(),
                plan.n()
            );
        }
        t = comm.finalize();
    }

    let mut by_repeat = Vec::new();
    for _ in 0..harness::bench_repeats() {
        let mut rows = Vec::new();
        for approach in approaches::live::LiveApproach::ALL {
            let (row, back) = live_driver::nbc_overlap_panel(approach, t, iters);
            t = back;
            rows.push(row);
        }
        by_repeat.push(rows);
    }
    if rank == 0 {
        println!(
            "\n== live FFT transpose over the wire: {}x{} points, {} ranks ==",
            plan.n1, plan.n2, size
        );
        harness::nbc_overlap_table(by_repeat.last().expect("one repeat")).print("rank 0 observed");
        harness::emit_snapshot(&harness::nbc_overlap_snapshot(
            "fft_wire",
            "§5.2 transpose alltoall over the socket wire (rank 0, row-FFT compute)",
            &by_repeat,
        ));
    }
    println!("rank {rank} ok");
}

fn main() {
    if wire::is_wire_process() {
        return wire_main();
    }
    let plan = DistPlan::new(64, 64, 4);
    println!(
        "== distributed FFT: {} points as {}x{} over {} ranks ==\n",
        plan.n(),
        plan.n1,
        plan.n2,
        plan.p
    );
    // A deterministic random signal and its reference spectrum.
    let mut rng = SplitMix64::new(271828);
    let x: Vec<Complex64> = (0..plan.n())
        .map(|_| Complex::new(rng.next_gaussian(), rng.next_gaussian()))
        .collect();
    let mut want = x.clone();
    fft(&mut want);

    let locals = Rc::new(scatter_natural(&plan, &x));
    for (label, segments) in [
        ("blocking transpose", None),
        ("pipelined x4 (SOI-style)", Some(4)),
    ] {
        let locals = locals.clone();
        let (outs, _) = run_approach(
            plan.p,
            simnet::MachineProfile::xeon(),
            Approach::Baseline,
            false,
            move |comm: AnyComm| {
                let locals = locals.clone();
                async move {
                    let local = locals[comm.rank()].clone();
                    match segments {
                        None => fft_dist(&comm, &plan, local).await,
                        Some(s) => fft_dist_pipelined(&comm, &plan, local, s).await,
                    }
                }
            },
        );
        let got = gather_natural(&plan, &outs);
        let err = max_rel_error(&got, &want);
        println!("{label:26}: max relative error vs reference FFT = {err:.3e}");
        assert!(err < 1e-9);
    }

    // How much virtual time does the pipelined transform take per approach?
    println!("\n== pipelined transform, virtual time by approach ==");
    for approach in [Approach::Baseline, Approach::CommSelf, Approach::Offload] {
        let locals = locals.clone();
        let (_, elapsed) = run_approach(
            plan.p,
            simnet::MachineProfile::xeon(),
            approach,
            false,
            move |comm: AnyComm| {
                let locals = locals.clone();
                async move {
                    let local = locals[comm.rank()].clone();
                    fft_dist_pipelined(&comm, &plan, local, 4).await
                }
            },
        );
        println!("{:10}: {:>8} ns", approach.name(), elapsed);
    }
    println!("\nAll checks passed.");
}
