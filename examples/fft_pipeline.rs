//! Distributed FFT end-to-end: transform a 4096-point signal over 4
//! simulated ranks with the blocking transpose algorithm and the
//! segmented pipelined (SOI-style) variant, verify both against the local
//! reference, and compare the virtual time each approach needs for the
//! pipelined transform.
//!
//! Run: `cargo run --release --example fft_pipeline`

use approaches::{run_approach, AnyComm, Approach, Comm};
use fft1d::dist::{fft_dist, fft_dist_pipelined, gather_natural, scatter_natural, DistPlan};
use fft1d::local::{fft, max_rel_error};
use numeric::{Complex, Complex64, SplitMix64};
use std::rc::Rc;

fn main() {
    let plan = DistPlan::new(64, 64, 4);
    println!(
        "== distributed FFT: {} points as {}x{} over {} ranks ==\n",
        plan.n(),
        plan.n1,
        plan.n2,
        plan.p
    );
    // A deterministic random signal and its reference spectrum.
    let mut rng = SplitMix64::new(271828);
    let x: Vec<Complex64> = (0..plan.n())
        .map(|_| Complex::new(rng.next_gaussian(), rng.next_gaussian()))
        .collect();
    let mut want = x.clone();
    fft(&mut want);

    let locals = Rc::new(scatter_natural(&plan, &x));
    for (label, segments) in [
        ("blocking transpose", None),
        ("pipelined x4 (SOI-style)", Some(4)),
    ] {
        let locals = locals.clone();
        let (outs, _) = run_approach(
            plan.p,
            simnet::MachineProfile::xeon(),
            Approach::Baseline,
            false,
            move |comm: AnyComm| {
                let locals = locals.clone();
                async move {
                    let local = locals[comm.rank()].clone();
                    match segments {
                        None => fft_dist(&comm, &plan, local).await,
                        Some(s) => fft_dist_pipelined(&comm, &plan, local, s).await,
                    }
                }
            },
        );
        let got = gather_natural(&plan, &outs);
        let err = max_rel_error(&got, &want);
        println!("{label:26}: max relative error vs reference FFT = {err:.3e}");
        assert!(err < 1e-9);
    }

    // How much virtual time does the pipelined transform take per approach?
    println!("\n== pipelined transform, virtual time by approach ==");
    for approach in [Approach::Baseline, Approach::CommSelf, Approach::Offload] {
        let locals = locals.clone();
        let (_, elapsed) = run_approach(
            plan.p,
            simnet::MachineProfile::xeon(),
            approach,
            false,
            move |comm: AnyComm| {
                let locals = locals.clone();
                async move {
                    let local = locals[comm.rank()].clone();
                    fft_dist_pipelined(&comm, &plan, local, 4).await
                }
            },
        );
        println!("{:10}: {:>8} ns", approach.name(), elapsed);
    }
    println!("\nAll checks passed.");
}
