//! NBC smoke: every collective of the live surface — barrier, bcast,
//! reduce, allreduce (sum and max), allgather, alltoall, gather, scatter
//! — issued as round schedules over a real transport and verified
//! element-wise, under each live strategy in turn over the same mesh.
//!
//! Standalone it runs an in-process 4-rank wire loopback world:
//! `cargo run --release --example nbc_smoke`. Under the launcher each
//! rank is an OS process over real sockets — the CI smoke lane runs
//! `offload-run -n 4 nbc_smoke` and gates on the per-rank
//! `wire.coll_tx` counters in the stats report.

use approaches::live::{LiveApproach, LiveComm};
use mpisim::types::{Dtype, ReduceOp};
use rtmpi::Transport;

/// Rendezvous-regime payload lanes: 1024 × 8 B = 8 KiB per contribution,
/// so the schedules exercise real RTS/CTS/DATA rounds, not eager drops.
const LANES: usize = 1024;

fn f64_bytes(vals: impl Iterator<Item = f64>) -> Vec<u8> {
    vals.flat_map(|x| x.to_le_bytes()).collect()
}

fn f64_lanes(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte lane")))
        .collect()
}

/// The deterministic per-rank contribution: lane `i` of rank `r` is
/// `r·LANES + i`, so every reduction/permutation has a closed form.
fn contribution(rank: usize) -> Vec<u8> {
    f64_bytes((0..LANES).map(|i| (rank * LANES + i) as f64))
}

fn assert_lanes(tag: &str, got: &[u8], want: impl Fn(usize) -> f64) {
    let lanes = f64_lanes(got);
    for (i, g) in lanes.iter().enumerate() {
        let w = want(i);
        assert!(
            (g - w).abs() < 1e-6 * w.abs().max(1.0),
            "{tag}: lane {i} got {g}, want {w}"
        );
    }
}

/// Exercise the full collective surface once under `approach`, verifying
/// every result, and hand the transport back.
fn run_all<T: Transport>(approach: LiveApproach, transport: T) -> T {
    let mut comm = LiveComm::start(approach, transport);
    let (r, n) = (comm.rank(), comm.size());
    let name = approach.name();

    comm.barrier().expect("barrier");

    let got = comm
        .bcast(1, if r == 1 { contribution(1) } else { Vec::new() })
        .expect("bcast");
    assert_lanes(name, &got, |i| (LANES + i) as f64);

    let got = comm
        .reduce(0, Dtype::F64, ReduceOp::Sum, contribution(r))
        .expect("reduce");
    if r == 0 {
        // Σ_r (r·LANES + i) = n·i + LANES·n(n−1)/2.
        assert_lanes(name, &got, |i| {
            (n * i) as f64 + (LANES * n * (n - 1) / 2) as f64
        });
    }

    let got = comm
        .allreduce(Dtype::F64, ReduceOp::Sum, contribution(r))
        .expect("allreduce sum");
    assert_lanes(name, &got, |i| {
        (n * i) as f64 + (LANES * n * (n - 1) / 2) as f64
    });

    let got = comm
        .allreduce(Dtype::F64, ReduceOp::Max, contribution(r))
        .expect("allreduce max");
    assert_lanes(name, &got, |i| ((n - 1) * LANES + i) as f64);

    let got = comm.allgather(contribution(r)).expect("allgather");
    assert_eq!(got.len(), n * LANES * 8);
    for src in 0..n {
        assert_lanes(name, &got[src * LANES * 8..(src + 1) * LANES * 8], |i| {
            (src * LANES + i) as f64
        });
    }

    // Alltoall: my block for dest d carries lanes (r·n + d)·LANES + i.
    let block = LANES * 8;
    let input = f64_bytes((0..n * LANES).map(|j| {
        let (d, i) = (j / LANES, j % LANES);
        ((r * n + d) * LANES + i) as f64
    }));
    let got = comm.alltoall(input, block).expect("alltoall");
    for src in 0..n {
        assert_lanes(name, &got[src * block..(src + 1) * block], |i| {
            ((src * n + r) * LANES + i) as f64
        });
    }

    let got = comm.gather(0, contribution(r)).expect("gather");
    if r == 0 {
        for src in 0..n {
            assert_lanes(name, &got[src * LANES * 8..(src + 1) * LANES * 8], |i| {
                (src * LANES + i) as f64
            });
        }
    }

    let input = if r == 1 {
        f64_bytes((0..n * LANES).map(|j| (7 * j) as f64))
    } else {
        Vec::new()
    };
    let got = comm.scatter(1, input, block).expect("scatter");
    assert_lanes(name, &got, |i| (7 * (r * LANES + i)) as f64);

    comm.barrier().expect("closing barrier");
    comm.finalize()
}

fn rank_main(transport: wire::WireComm) {
    let rank = transport.rank();
    let mut t = transport;
    for approach in LiveApproach::ALL {
        t = run_all(approach, t);
    }
    println!("rank {rank} ok");
}

fn main() {
    if wire::is_wire_process() {
        match wire::from_env() {
            Ok(t) => return rank_main(t),
            Err(e) => {
                eprintln!("nbc_smoke: wire bootstrap failed: {e}");
                std::process::exit(2);
            }
        }
    }
    // Standalone: the same exercise over an in-process 4-rank loopback
    // world, one thread per rank.
    let handles: Vec<_> = wire::loopback(4)
        .into_iter()
        .map(|t| std::thread::spawn(move || rank_main(t)))
        .collect();
    for h in handles {
        h.join().expect("rank thread");
    }
    println!("All collectives verified under all live strategies.");
}
