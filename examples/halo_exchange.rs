//! The paper's Listing-1 scenario in the discrete-event model: a stencil
//! halo exchange overlapped with internal-volume compute, run unmodified
//! under all five approaches, printing the achieved overlap and phase
//! split for each — plus the flight-recorder view: per-approach engine
//! metrics, and (with `--trace <path>`) a Chrome trace of the offload
//! service thread in virtual time.
//!
//! Run: `cargo run --release --example halo_exchange`
//! Trace: `cargo run --release --example halo_exchange -- --trace halo.json`
//! then open the JSON in <https://ui.perfetto.dev>.
//!
//! **Multi-process mode:** under the wire launcher each rank is an OS
//! process over real Unix-domain sockets, and the same comparison runs on
//! the live strategies (baseline / iprobe / offload over
//! `approaches::live`): `offload-run -n 4 halo_exchange`. With
//! `--trace <prefix>` every rank dumps `<prefix>-rankN.json`; the files
//! merge into one timeline (`harness::merge_traces`) because each rank
//! occupies its own pid row.

use approaches::{run_approach_traced, AnyComm, Approach, Comm};
use harness::Table;
use mpisim::Bytes;
use simnet::MachineProfile;

const FACE_BYTES: usize = 512 * 1024; // rendezvous regime
const COMPUTE_NS: u64 = 2_000_000; // 2 ms internal volume

/// Face size for the live (socket) panel: still far above the eager
/// crossover, small enough that the ci smoke lane stays quick.
const WIRE_FACE_BYTES: usize = 256 * 1024;
const WIRE_ITERS: usize = 4;

/// One rank of the multi-process panel (we are inside `offload-run`).
/// Ranks pair up (0↔1, 2↔3, …) and run the §4.1 overlap measurement
/// under each live strategy sequentially over the same socket mesh.
fn wire_main() {
    let mut transport = match wire::from_env() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("halo_exchange: wire bootstrap failed: {e}");
            std::process::exit(2);
        }
    };
    use rtmpi::Transport as _;
    let (rank, size) = (transport.rank(), transport.size());
    assert!(
        size >= 2 && size % 2 == 0,
        "wire mode pairs ranks; use an even -n"
    );
    let peer = rank ^ 1;

    let trace_prefix = harness::trace_path_from_args();
    let recorder = if trace_prefix.is_some() {
        obs::Recorder::wall()
    } else {
        obs::Recorder::disabled()
    };
    let track = recorder.track(0, 0, "approach phases");
    // Cross-rank rendezvous flow arrows: the engine emits s/t/f events at
    // RTS-send, CTS-send, and DATA-recv on this track; after per-rank
    // dumps are merged, each handshake draws as one arrow between rank
    // rows in Perfetto (dump_trace_prefixed restamps pids per rank).
    transport.set_flow_track(recorder.track(0, 1, "wire rendezvous"));

    let mut rows = Vec::new();
    let mut t = transport;
    for approach in approaches::live::LiveApproach::ALL {
        let t0 = recorder.now_ns();
        let (row, back) = harness::live_overlap(approach, t, peer, WIRE_FACE_BYTES, WIRE_ITERS);
        t = back;
        track.complete_at(approach.name(), t0, recorder.now_ns());
        rows.push(row);
    }

    if let Some(prefix) = &trace_prefix {
        harness::dump_trace_prefixed(&recorder, &prefix.display().to_string(), rank);
    }
    if rank == 0 {
        println!(
            "== live halo exchange over the wire: {} faces, {} ranks (this pair: 0↔1) ==",
            harness::fmt_bytes(WIRE_FACE_BYTES),
            size
        );
        harness::live_overlap_table(&rows).print("rank 0 observed");
        emit_live_overlap_snapshot(&rows);
        println!(
            "\nrndv@wait counts rendezvous handshakes that had to wait for the\n\
             application to reach MPI; rndv async counts handshakes a progress\n\
             actor completed during compute. Baseline is all @wait, offload is\n\
             all async — and its wait time collapses accordingly."
        );
    }
}

/// Perf-trajectory snapshot of the §4.1 socket panel (rank 0 only; written
/// when `BENCH_SNAPSHOT_DIR` is set). Wall-clock overlap and wait are
/// `info` series — this box decides those. The rendezvous handshake
/// counters are protocol facts and gate: the baseline must never complete
/// a handshake asynchronously, and offload must never be caught completing
/// one at wait.
fn emit_live_overlap_snapshot(rows: &[harness::LiveOverlapRow]) {
    use harness::{Direction, PanelSnapshot};
    let mut snap = PanelSnapshot::new(
        "live_overlap",
        "§4.1 live overlap over the socket wire (rank 0, pairwise halo exchange)",
    );
    for r in rows {
        let name = r.approach.name();
        snap.push_series(
            format!("overlap_pct.{name}"),
            "%",
            Direction::Info,
            vec![r.overlap_pct],
        );
        snap.push_series(
            format!("wait_us.{name}"),
            "us",
            Direction::Info,
            vec![r.wait_ns as f64 / 1e3],
        );
        let (at_wait_dir, async_dir) = match r.approach {
            // Offload must keep completing every handshake asynchronously.
            approaches::live::LiveApproach::Offload => (Direction::Lower, Direction::Higher),
            // The baseline gaining async progress would mean the model of
            // the paper's pathology broke; iprobe sits in between, so its
            // counters are informational.
            approaches::live::LiveApproach::Baseline => (Direction::Info, Direction::Lower),
            approaches::live::LiveApproach::Iprobe => (Direction::Info, Direction::Info),
        };
        snap.push_series(
            format!("rndv_at_wait.{name}"),
            "count",
            at_wait_dir,
            vec![r.rndv_at_wait as f64],
        );
        snap.push_series(
            format!("rndv_async.{name}"),
            "count",
            async_dir,
            vec![r.rndv_async as f64],
        );
    }
    harness::emit_snapshot(&snap);
}

type IterOut = ((u64, u64, u64), obs::Snapshot, Option<obs::Snapshot>);

async fn stencil_iteration(comm: AnyComm) -> IterOut {
    let env = comm.env().clone();
    let (r, p) = (comm.rank(), comm.size());
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;
    // Post the boundary exchange (Listing 1, line 6).
    let t0 = env.now();
    let rx1 = comm.irecv(Some(left), Some(1)).await;
    let rx2 = comm.irecv(Some(right), Some(2)).await;
    let tx1 = comm.isend(right, 1, Bytes::synthetic(FACE_BYTES)).await;
    let tx2 = comm.isend(left, 2, Bytes::synthetic(FACE_BYTES)).await;
    let post = env.now() - t0;
    // Internal volume processing with PROGRESS points (lines 7–17).
    for _ in 0..8 {
        env.advance(COMPUTE_NS / 8).await;
        comm.progress_hint().await;
    }
    // Complete the exchange (line 18).
    let t1 = env.now();
    comm.waitall(&[rx1, rx2, tx1, tx2]).await;
    let wait = env.now() - t1;
    comm.barrier().await;
    let engine = comm.obs_registry().snapshot();
    let service = comm.offload_service_obs().map(|reg| reg.snapshot());
    ((post, wait, env.now() - t0), engine, service)
}

fn main() {
    if wire::is_wire_process() {
        return wire_main();
    }
    let trace_path = harness::trace_path_from_args();
    println!(
        "== halo exchange, {} faces, {} ms compute, 8 ranks (Endeavor Xeon model) ==",
        harness::fmt_bytes(FACE_BYTES),
        COMPUTE_NS / 1_000_000
    );
    let mut t = Table::new(vec![
        "approach",
        "post us",
        "wait us",
        "iteration us",
        "comm hidden %",
    ]);
    let mut metrics = Table::new(vec![
        "approach",
        "progress polls",
        "rndv sends",
        "lock wait us",
        "svc drains",
    ]);
    let mut baseline_wait = None;
    for approach in Approach::ALL {
        // Record the offload run when a trace was requested; the recorder
        // runs on the simulator's virtual clock.
        let recorder = match (approach, &trace_path) {
            (Approach::Offload, Some(_)) => obs::Recorder::virtual_clock(),
            _ => obs::Recorder::disabled(),
        };
        let (outs, _) = run_approach_traced(
            8,
            MachineProfile::xeon(),
            approach,
            false,
            recorder.clone(),
            stencil_iteration,
        );
        if let (Approach::Offload, Some(path)) = (approach, &trace_path) {
            harness::dump_trace(&recorder, path);
        }
        let ((post, wait, total), engine, service) = outs
            .into_iter()
            .max_by_key(|&((_, w, _), _, _)| w)
            .expect("8 ranks");
        if approach == Approach::Baseline {
            baseline_wait = Some(wait.max(1));
        }
        let hidden = baseline_wait
            .map(|bw| 100.0 * (1.0 - wait as f64 / bw as f64))
            .unwrap_or(0.0);
        t.row(vec![
            approach.name().to_string(),
            format!("{:.2}", post as f64 / 1e3),
            format!("{:.2}", wait as f64 / 1e3),
            format!("{:.2}", total as f64 / 1e3),
            format!("{hidden:.1}"),
        ]);
        metrics.row(vec![
            approach.name().to_string(),
            engine.counter("mpi.progress_polls").to_string(),
            engine.counter("mpi.rndv_sends").to_string(),
            format!("{:.2}", engine.counter("mpi.lock_wait_ns") as f64 / 1e3),
            service
                .map(|s| s.histogram("offload.drained_per_wakeup").count.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print("results (worst rank per approach)");
    metrics.print("flight recorder (same rank)");
    println!(
        "\nThe offload approach posts in ~0.1 us and hides nearly the whole\n\
         exchange under compute; the baseline pays the rendezvous at the wait.\n\
         The metrics show why: only approaches with a progress actor poll the\n\
         engine during the compute window."
    );
}
