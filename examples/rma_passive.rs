//! One-sided RMA and the passive-target progress problem (the setting of
//! Casper, discussed in the paper's related work, and part of its §7
//! future-work direction).
//!
//! Rank 0 puts a large buffer into rank 1's exposure window while rank 1
//! is busy computing and never enters MPI. Without an asynchronous
//! progress agent, the put cannot land until the target finally makes an
//! MPI call; with one (comm-self, core-spec, offload), it completes in
//! wire time.
//!
//! Run: `cargo run --release --example rma_passive`

use approaches::{run_approach, AnyComm, Approach, Comm};
use harness::Table;
use mpisim::Bytes;
use simnet::MachineProfile;

const PUT_BYTES: usize = 1 << 20;
const TARGET_COMPUTE_NS: u64 = 5_000_000; // 5 ms without any MPI call

fn origin_wait(approach: Approach) -> u64 {
    let (outs, _) = run_approach(
        2,
        MachineProfile::xeon(),
        approach,
        false,
        move |comm: AnyComm| async move {
            let env = comm.env().clone();
            let mpi = comm.mpi().clone();
            let win = mpi.win_create(vec![0u8; PUT_BYTES]).await;
            let out = if comm.rank() == 0 {
                let req = mpi.put(win, 1, 0, Bytes::synthetic(PUT_BYTES)).await;
                let t0 = env.now();
                mpi.wait(&req).await;
                env.now() - t0
            } else {
                env.advance(TARGET_COMPUTE_NS).await; // busy, not in MPI
                0
            };
            mpi.win_fence(win).await;
            out
        },
    );
    outs[0]
}

fn main() {
    println!(
        "== passive-target MPI_Put of {} while the target computes {} ms ==\n",
        harness::fmt_bytes(PUT_BYTES),
        TARGET_COMPUTE_NS / 1_000_000
    );
    let mut t = Table::new(vec!["approach", "origin wait", "vs target compute"]);
    for approach in Approach::ALL {
        let wait = origin_wait(approach);
        t.row(vec![
            approach.name().to_string(),
            harness::fmt_ns(wait),
            format!("{:.1} %", 100.0 * wait as f64 / TARGET_COMPUTE_NS as f64),
        ]);
    }
    t.print("origin-side completion time of the put");
    println!(
        "\nBaseline/iprobe stall for (nearly) the target's whole compute phase —\n\
         the put is only applied when the target's progress engine runs. The\n\
         progress-agent approaches complete it in wire time: the Casper\n\
         phenomenon, solved for free by the offload thread."
    );
}
