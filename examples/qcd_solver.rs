//! Lattice QCD end-to-end: solve a Wilson fermion system with CG and
//! BiCGStab on a small 4⁴×8 lattice, verify the solution, then run the
//! distributed Dslash (real spinor data through the simulated MPI, under
//! the offload approach) and check it against the single-rank operator.
//!
//! Run: `cargo run --release --example qcd_solver`
//!
//! **Multi-process mode:** under the wire launcher each rank is an OS
//! process over real Unix-domain sockets, and the CG-style global
//! reductions run as NBC allreduce schedules through the live strategies
//! with Dslash as the overlap compute: `offload-run -n 4 qcd_solver`
//! (fig-3-style panel, see `qcd::live_driver`).

use approaches::{run_approach, AnyComm, Approach, Comm};
use numeric::SplitMix64;
use qcd::dist::dslash_slab;
use qcd::dslash::{dslash, wilson_m, FermionField, GaugeField};
use qcd::lattice::SiteIndex;
use simnet::MachineProfile;
use std::rc::Rc;

const DIMS: [usize; 4] = [4, 4, 4, 8];
const KAPPA: f64 = 0.11;

/// One rank of the multi-process panel (we are inside `offload-run`):
/// the fig-3-style NBC overlap measurement — lane-dot allreduces with
/// Dslash inserted — under each live strategy sequentially over the same
/// socket mesh, repeated `bench_repeats()` times for the perf snapshot.
fn wire_main() {
    let transport = match wire::from_env() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("qcd_solver: wire bootstrap failed: {e}");
            std::process::exit(2);
        }
    };
    use rtmpi::Transport as _;
    let (rank, size) = (transport.rank(), transport.size());
    assert!(size >= 2, "the reduction panel needs at least 2 ranks");
    let iters = if harness::quick_mode() { 2 } else { 4 };

    let mut by_repeat = Vec::new();
    let mut t = transport;
    for _ in 0..harness::bench_repeats() {
        let mut rows = Vec::new();
        for approach in approaches::live::LiveApproach::ALL {
            let (row, back) = qcd::live_driver::nbc_overlap_panel(approach, t, iters);
            t = back;
            rows.push(row);
        }
        by_repeat.push(rows);
    }

    if rank == 0 {
        println!(
            "== live QCD reductions over the wire: {} lanes x f64, {} ranks ==",
            qcd::live_driver::LANES,
            size
        );
        harness::nbc_overlap_table(by_repeat.last().expect("one repeat")).print("rank 0 observed");
        harness::emit_snapshot(&harness::nbc_overlap_snapshot(
            "qcd_wire",
            "§5.1 CG-style lane-dot allreduce over the socket wire (rank 0, Dslash compute)",
            &by_repeat,
        ));
        println!(
            "\nEvery allreduce result was checked against the globally expected\n\
             sums. coll tx counts round sends in the reserved tag space; the\n\
             offload strategy completes round handshakes asynchronously (rndv\n\
             async) while Dslash runs, the baseline only at wait."
        );
    }
    println!("rank {rank} ok");
}

fn main() {
    if wire::is_wire_process() {
        return wire_main();
    }
    let mut rng = SplitMix64::new(20150915); // SC'15 conference date
    let gauge = GaugeField::<f64>::random(DIMS, &mut rng);
    let b = FermionField::random(DIMS, &mut rng);

    println!("== Wilson solve on a {DIMS:?} lattice, kappa = {KAPPA} ==\n");

    let (x_cg, cg) = qcd::cg_normal(&gauge, KAPPA, &b, 1e-10, 1000);
    println!(
        "CG (normal equations): {} iterations, residual {:.2e}",
        cg.iterations, cg.final_residual
    );
    let (x_bi, bi) = qcd::bicgstab(&gauge, KAPPA, &b, 1e-10, 1000);
    println!(
        "BiCGStab:              {} iterations, residual {:.2e}",
        bi.iterations, bi.final_residual
    );
    assert!(cg.converged && bi.converged);

    // Verify: M x == b for both solvers.
    for (name, x) in [("CG", &x_cg), ("BiCGStab", &x_bi)] {
        let mut r = b.clone();
        r.sub_assign(&wilson_m(&gauge, KAPPA, x));
        println!(
            "verified {name}: ||b - M x|| / ||b|| = {:.2e}",
            r.norm_sqr().sqrt() / b.norm_sqr().sqrt()
        );
    }

    // Distributed Dslash through the offloaded simulated MPI.
    println!("\n== distributed Dslash (2 ranks, offload approach, real data) ==");
    let psi = FermionField::random(DIMS, &mut rng);
    let expect = dslash(&gauge, &psi);
    let gauge = Rc::new(gauge);
    let psi = Rc::new(psi);
    let expect = Rc::new(expect);
    let plane = DIMS[0] * DIMS[1] * DIMS[2];
    let lt = DIMS[3] / 2;
    let (errs, virtual_ns) = run_approach(
        2,
        MachineProfile::xeon(),
        Approach::Offload,
        false,
        move |comm: AnyComm| {
            let gauge = gauge.clone();
            let psi = psi.clone();
            let expect = expect.clone();
            async move {
                let t0 = comm.rank() * lt;
                let local = psi.data[t0 * plane..(t0 + lt) * plane].to_vec();
                let out = dslash_slab(&comm, &gauge, DIMS, &local, t0, lt).await;
                let site = SiteIndex::new(DIMS);
                let mut err: f64 = 0.0;
                for (i, got) in out.iter().enumerate() {
                    let c = SiteIndex::new([DIMS[0], DIMS[1], DIMS[2], lt]).coords(i);
                    let gi = site.index([c[0], c[1], c[2], c[3] + t0]);
                    err += got.sub(&expect.data[gi]).norm_sqr();
                }
                err
            }
        },
    );
    for (r, e) in errs.iter().enumerate() {
        println!("rank {r}: deviation from single-rank reference = {e:.3e}");
        assert!(*e < 1e-20);
    }
    println!("virtual exchange+compute time: {} ns", virtual_ns);
    println!("\nAll checks passed.");
}
