//! # mpi-offload-repro
//!
//! A reproduction of **"Improving concurrency and asynchrony in
//! multithreaded MPI applications using software offloading"**
//! (Vaidyanathan, Hammond, Kalamkar, Balaji, Pamnany, Das, Joó, Park —
//! SC '15).
//!
//! This umbrella crate re-exports the workspace's public API. The pieces:
//!
//! * [`offload`] — **the paper's contribution**: the lock-free bounded MPMC
//!   command queue, the generation-tagged request pool with done flags, and
//!   the dedicated offload thread — implemented both for real OS threads
//!   ([`offload::offload_world`]) and as a calibrated discrete-event model
//!   ([`offload::SimOffload`]).
//! * [`mpisim`] — a simulated MPI library (eager/rendezvous protocols,
//!   matching, nonblocking collectives, thread-level lock model) whose
//!   progress engine advances **only when polled**, reproducing the
//!   asynchronous-progress problem the paper solves.
//! * [`approaches`] — baseline / iprobe / comm-self / core-spec / offload
//!   behind the uniform [`approaches::Comm`] trait, so applications run
//!   unmodified under every strategy (the paper's `LD_PRELOAD` property).
//! * [`qcd`], [`fft1d`], [`cnn`] — the three applications of §5, with real
//!   validated kernels and cluster-scale performance drivers.
//! * [`destime`], [`simnet`], [`team`], [`rtmpi`], [`numeric`],
//!   [`harness`] — substrates: deterministic virtual-time executor,
//!   network model, OpenMP-like teams, real-threads message layer,
//!   numerics, and benchmark infrastructure.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quick start (live mode, real threads)
//!
//! ```
//! use std::sync::Arc;
//!
//! // Two ranks, each with a dedicated offload thread over the in-process
//! // message layer.
//! let ranks = offload::offload_world(2);
//! let h0 = ranks[0].handle();
//! let h1 = ranks[1].handle();
//! let t = std::thread::spawn(move || {
//!     let (_, data) = h1.recv(Some(0), Some(7));
//!     data.to_vec()
//! });
//! h0.send(1, 7, Arc::from(vec![1, 2, 3]));
//! assert_eq!(t.join().unwrap(), vec![1, 2, 3]);
//! for r in ranks {
//!     r.finalize();
//! }
//! ```
//!
//! ## Quick start (simulation mode, virtual time)
//!
//! ```
//! use approaches::{run_approach, Approach, Comm};
//! use mpisim::Bytes;
//!
//! let (outs, elapsed_virtual_ns) = run_approach(
//!     2,
//!     simnet::MachineProfile::xeon(),
//!     Approach::Offload,
//!     false,
//!     |comm| async move {
//!         let peer = 1 - comm.rank();
//!         let rx = comm.irecv(Some(peer), Some(1)).await;
//!         let tx = comm.isend(peer, 1, Bytes::synthetic(1 << 20)).await;
//!         comm.env().advance(5_000_000).await; // 5 ms of "compute"
//!         comm.waitall(&[rx, tx]).await;
//!         comm.env().now()
//!     },
//! );
//! assert_eq!(outs.len(), 2);
//! assert!(elapsed_virtual_ns > 5_000_000);
//! ```

pub use approaches;
pub use cnn;
pub use destime;
pub use fft1d;
pub use harness;
pub use mpisim;
pub use numeric;
pub use offload;
pub use qcd;
pub use rtmpi;
pub use simnet;
pub use team;
