//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the exact API shape `rtmpi` uses: `Mutex::lock()` returning the
//! guard directly (no `Result`), and `Condvar::wait(&mut guard)`. Poisoning
//! is deliberately swallowed — parking_lot has no poisoning, so a panicking
//! thread must not wedge every other thread here either.

use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily move the std guard out
    // through an `&mut` borrow; it is `None` only during that window.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().expect("waiter exits");
    }
}
