//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The workspace builds in environments with no registry access, so the
//! handful of external names it relies on are provided by local shims (see
//! `shims/README.md`). This one covers the only `crossbeam` item the code
//! uses: [`utils::CachePadded`].

pub mod utils {
    use core::fmt;
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing between adjacent atomics — same contract as
    /// `crossbeam_utils::CachePadded`.
    ///
    /// 128 bytes covers the common cases: x86-64 prefetches cache-line
    /// pairs, and aarch64 cache lines are up to 128 bytes.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}
