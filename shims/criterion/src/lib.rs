//! Offline stand-in for `criterion`, implementing the surface
//! `benches/queue_micro.rs` uses: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is real (warmup, then timed batches reporting the median
//! ns/iter of several samples) but intentionally simpler than criterion
//! proper: no outlier analysis, plots, or saved baselines.

use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(700);
const SAMPLES: usize = 11;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        ns_per_iter: Vec::new(),
        budget: WARMUP,
    };
    f(&mut b); // warmup pass — discard
    b.ns_per_iter.clear();
    b.budget = MEASURE;
    f(&mut b);
    let mut samples = b.ns_per_iter;
    samples.sort_by(|a, c| a.total_cmp(c));
    let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
    let lo = samples.first().copied().unwrap_or(f64::NAN);
    let hi = samples.last().copied().unwrap_or(f64::NAN);
    println!("{name:<44} time: [{lo:>10.2} ns {median:>10.2} ns {hi:>10.2} ns]");
}

pub struct Bencher {
    ns_per_iter: Vec<f64>,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Size one batch to ~budget/SAMPLES wall time.
        let mut batch: u64 = 1;
        let per_sample = self.budget / SAMPLES as u32;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= per_sample / 10 || batch >= 1 << 40 {
                break;
            }
            batch = batch.saturating_mul(if dt.is_zero() {
                64
            } else {
                ((per_sample.as_nanos() / dt.as_nanos().max(1)) as u64).clamp(2, 64)
            });
        }
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.ns_per_iter
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
