//! Value-generation strategies: deterministic, no shrinking.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Generates values of `Self::Value` from the per-test RNG.
///
/// Object-safe (`boxed`/`Union` rely on it); combinators like
/// [`Strategy::prop_map`] are `Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { strat: self, f }
    }
}

/// Box a strategy for heterogeneous storage (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strat.generate(rng))
    }
}

/// Uniform choice between boxed strategies of one value type.
pub struct Union<V> {
    branches: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Self { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly unit-scale values: property tests want usable
        // numbers, not NaN bit-pattern fuzzing.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// `lo..hi` as a strategy, matching proptest's blanket range support.
macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )+
    };
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `prop::collection::vec(element, len_range)`.
pub fn collection_vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
