//! Offline stand-in for `proptest`, implementing exactly the surface this
//! workspace's property tests use: `proptest!` with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, `any::<T>()`,
//! integer-range strategies, `Just`, `.prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`
//! macros.
//!
//! Cases are generated from a deterministic per-test RNG (SplitMix64 seeded
//! by the test name), so failures reproduce across runs and machines. There
//! is no shrinking: on failure the offending case number and message are
//! reported and the test panics.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

/// The `prop::` namespace the prelude exposes (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while runner.next_case() {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&$strat, runner.rng());
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.finish_case(outcome);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure fails the current case with a
/// message rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Pick one of several strategies (all yielding the same value type) with
/// equal probability per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
