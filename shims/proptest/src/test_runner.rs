//! Case loop, config, and the deterministic RNG behind the strategies.

/// SplitMix64: tiny, full-period, and plenty good for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the case loop of one `proptest!`-generated test function.
pub struct TestRunner {
    name: &'static str,
    cases: u32,
    current: u32,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // Deterministic per-test seed: failures reproduce across runs and
        // machines, at the cost of proptest's randomized exploration.
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            name,
            cases: config.cases,
            current: 0,
            rng: TestRng::seeded(seed),
        }
    }

    /// True while more cases should run; advances the case counter.
    pub fn next_case(&mut self) -> bool {
        if self.current < self.cases {
            self.current += 1;
            true
        } else {
            false
        }
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Panic (failing the `#[test]`) if the case returned an error.
    pub fn finish_case(&self, outcome: Result<(), TestCaseError>) {
        if let Err(e) = outcome {
            panic!(
                "proptest {}: case {}/{} failed: {}",
                self.name,
                self.current,
                self.cases,
                e.message()
            );
        }
    }
}
