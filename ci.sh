#!/usr/bin/env bash
# Local/CI gate: build, test (both observability modes), format, lint.
# Fully offline — all dependencies are path deps inside the repo.
#
# Usage: ci.sh [all|bench-gate|bench-baseline]
#   all            — every lane below, including the perf-trajectory gate.
#   bench-gate     — only the perf-trajectory gate: re-measure the quick
#                    panels into a scratch dir and bench-compare them
#                    against the committed BENCH_*.json baselines, failing
#                    on any out-of-noise-band regression.
#   bench-baseline — regenerate the BENCH_*.json baselines at the repo
#                    root (same pinned shape the gate uses); review the
#                    diff and commit them.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

run() {
  echo
  echo "== $* =="
  "$@"
}

# Re-measure every snapshot panel into "$1" under the pinned CI shape:
# BENCH_QUICK=1 (trimmed live sweeps, recorded in the snapshot's env
# fingerprint so full-mode snapshots can never gate against quick
# baselines) and BENCH_REPEATS=3 (the noise band comes from the repeats).
bench_panels() {
  local out="$1"
  run cargo build --release -p wire --bins
  run cargo build --release --example halo_exchange --example qcd_solver \
    --example fft_pipeline
  for p in fig02_overlap_p2p fig04_isend_issue fig06_mt_latency wire_calib shm_calib \
           fig09_qcd_scaling fig13_fft_scaling fig14_cnn_scaling stats_relay; do
    echo
    echo "== bench panel $p =="
    env BENCH_SNAPSHOT_DIR="$out" BENCH_QUICK=1 BENCH_REPEATS=3 \
      cargo bench -q -p bench --bench "$p" \
      || { echo "bench panel $p FAILED"; exit 1; }
  done
  echo
  echo "== bench panel live_overlap (2 ranks over UDS) =="
  timeout 90 env BENCH_SNAPSHOT_DIR="$out" BENCH_QUICK=1 \
    target/release/offload-run -n 2 --timeout 60 halo_exchange \
    || { echo "bench panel live_overlap FAILED"; exit 1; }
  # NBC-over-wire panels: the qcd/fft drivers' collective schedules at 4
  # ranks. Wall-clock series are info; the round-send (`coll_tx`) and
  # handshake-attribution counters are deterministic under the pinned
  # shape and gate hard.
  for panel in "qcd_wire qcd_solver" "fft_wire fft_pipeline"; do
    set -- $panel
    echo
    echo "== bench panel $1 (4 ranks over UDS) =="
    timeout 120 env BENCH_SNAPSHOT_DIR="$out" BENCH_QUICK=1 BENCH_REPEATS=3 \
      target/release/offload-run -n 4 --timeout 90 "$2" \
      || { echo "bench panel $1 FAILED"; exit 1; }
  done
}

bench_gate() {
  run cargo build --release -p bench --bin bench-compare
  local fresh
  fresh=$(mktemp -d /tmp/bench_gate.XXXXXX)
  bench_panels "$fresh"
  echo
  echo "== bench-compare: fresh run vs committed baselines =="
  target/release/bench-compare --baseline-dir . --fresh-dir "$fresh" \
    || { echo "bench-gate lane FAILED (perf regression outside the noise band)"; exit 1; }
}

bench_baseline() {
  run cargo build --release -p bench --bin bench-compare
  bench_panels .
  echo
  echo "== schema-validating regenerated baselines =="
  target/release/bench-compare --check . \
    || { echo "bench-baseline FAILED (invalid snapshot emitted)"; exit 1; }
  echo "bench-baseline: BENCH_*.json regenerated at the repo root — review the diff and commit"
}

case "${1:-all}" in
  bench-gate)
    bench_gate
    echo
    echo "ci.sh bench-gate: passed"
    exit 0
    ;;
  bench-baseline)
    bench_baseline
    exit 0
    ;;
  all) ;;
  *)
    echo "usage: ci.sh [all|bench-gate|bench-baseline]" >&2
    exit 2
    ;;
esac

run cargo build --release --workspace
run cargo test --workspace -q

# The no-op observability build must stay warning-free and green where it
# matters most: the instrumented hot paths and the engine.
run cargo test -q -p offload -p mpisim --no-default-features
run cargo check -q --benches --workspace

# Multi-process smoke: ranks as OS processes over Unix-domain sockets
# running the live halo-exchange panel (baseline / iprobe / offload over
# the wire backend). The launcher's own --timeout kills a wedged job; the
# outer `timeout` is the backstop against a wedged *launcher*. Miri and
# model-checker lanes never see this (they run other packages' lib tests).
echo
echo "== multi-process wire smoke (4 ranks over UDS) =="
timeout 60 target/release/offload-run -n 4 --timeout 50 halo_exchange \
  || { echo "wire smoke lane FAILED"; exit 1; }

# Cluster observability smoke: the same panel with the stats plane on.
# Every rank ships periodic snapshots to the launcher, which writes the
# aggregated JSON report; stats-check gates on all 4 ranks being present
# and every rank showing asynchronously-completed rendezvous handshakes
# (the offload phase's signature — WIRE_EAGER_MAX keeps the faces on the
# rendezvous path regardless of the example's message sizing).
echo
echo "== cluster stats plane smoke (4 ranks, aggregated JSON report) =="
timeout 60 env WIRE_EAGER_MAX=4096 \
  target/release/offload-run -n 4 --timeout 50 \
  --stats-interval 50 --stats-out /tmp/stats.json halo_exchange \
  || { echo "stats plane lane FAILED (launch)"; exit 1; }
target/release/stats-check /tmp/stats.json --ranks 4 \
  --positive wire.rndv_handshake_async \
  || { echo "stats plane lane FAILED (report validation)"; exit 1; }

# Scale-out observability smoke: a 64-rank world packed 16 ranks/process
# (4 OS processes) with the stats plane in relay-tree mode (arity 8 →
# heap height 3, collector depth 2). stats-check gates on the relay
# section covering all 64 ranks at depth ≥ 2 with in-flight merges
# actually recorded (obs.relay_merged) — proving the collector heard the
# whole world through O(k) connections, not 64 stars.
echo
echo "== relay tree smoke (64 ranks packed 16/process, depth-2 gated) =="
timeout 120 target/release/offload-run -n 64 --packed 16 --relay 8 \
  --timeout 90 --stats-interval 50 --stats-out /tmp/relay_stats.json \
  packed-world \
  || { echo "relay tree lane FAILED (launch)"; exit 1; }
target/release/stats-check /tmp/relay_stats.json --ranks 64 \
  --positive obs.relay_merged --relay-depth 2 \
  || { echo "relay tree lane FAILED (report validation)"; exit 1; }

# Black-box postmortem smoke: SIGKILL a depth-1 relay rank mid-run
# (unpacked — every rank its own process, so only the victim dies) and
# assert the launcher (a) reports the job failed, and (b) recovered the
# victim's flight-recorder timeline from its persisted .obb file into the
# report: ≥ 32 events with strictly increasing sequence numbers.
echo
echo "== black-box postmortem smoke (SIGKILL rank 1, dump recovered) =="
if timeout 120 target/release/offload-run -n 12 --relay 3 \
  --timeout 90 --stats-interval 50 --stats-out /tmp/kill_stats.json \
  --kill-rank 1 --kill-after-ms 600 packed-world; then
  echo "black-box lane FAILED (launcher reported success despite SIGKILL)"
  exit 1
fi
target/release/stats-check /tmp/kill_stats.json --ranks 12 \
  --blackbox-dead 32 \
  || { echo "black-box lane FAILED (postmortem validation)"; exit 1; }

# NBC wire smoke: the full collective surface (barrier/bcast/reduce/
# allreduce/allgather/alltoall/gather/scatter) as round schedules over
# real sockets under every live strategy, element-verified in-process;
# stats-check gates on every rank having issued round sends in the
# reserved tag space (wire.coll_tx) with zero protocol errors — the
# frames were counted by the engine itself, not inferred from timing.
echo
echo "== NBC wire smoke (4 ranks, all collectives, stats-gated) =="
run cargo build --release --example nbc_smoke --example cnn_training
timeout 60 target/release/offload-run -n 4 --timeout 50 \
  --stats-interval 50 --stats-out /tmp/nbc_stats.json nbc_smoke \
  || { echo "NBC wire smoke lane FAILED (launch)"; exit 1; }
target/release/stats-check /tmp/nbc_stats.json --ranks 4 \
  --positive wire.coll_tx \
  || { echo "NBC wire smoke lane FAILED (report validation)"; exit 1; }

# Shared-memory data-plane smoke: the same collective surface with every
# post-bootstrap frame riding the per-pair shm rings (WIRE_SHM=1 via the
# launcher's --shm). stats-check gates on every rank actually using the
# ring (wire.shm_frames > 0), with zero staging copies on the eager path
# (wire.eager_alloc == 0) and zero degraded pairs (wire.shm_fallback ==
# 0) — the zero-copy claim is counted by the engine, not inferred.
echo
echo "== shm data-plane smoke (4 ranks, WIRE_SHM=1, zero-alloc gated) =="
timeout 60 target/release/offload-run -n 4 --timeout 50 --shm \
  --stats-interval 50 --stats-out /tmp/shm_stats.json nbc_smoke \
  || { echo "shm smoke lane FAILED (nbc launch)"; exit 1; }
target/release/stats-check /tmp/shm_stats.json --ranks 4 \
  --positive wire.shm_frames --positive wire.coll_tx \
  --zero wire.eager_alloc --zero wire.shm_fallback \
  || { echo "shm smoke lane FAILED (report validation)"; exit 1; }
timeout 60 target/release/offload-run -n 4 --timeout 50 --shm halo_exchange \
  || { echo "shm smoke lane FAILED (halo_exchange)"; exit 1; }
# Graceful degradation: forcing the handshake to decline must leave the
# job on the socket data path, not dead.
timeout 60 env WIRE_SHM_FORCE_FALLBACK=1 \
  target/release/offload-run -n 2 --timeout 50 --shm halo_exchange \
  || { echo "shm smoke lane FAILED (forced fallback)"; exit 1; }

# The transport-matrix suite again with the shm plane on: every Comm
# surface the examples use, now over the ring data path.
echo
echo "== comm trait matrix over shm (WIRE_SHM=1) =="
run env WIRE_SHM=1 cargo test --release -q --test comm_trait_matrix

# Data-parallel CNN training end-to-end over the wire: replicas must stay
# synchronized through the gradient-allreduce schedules (asserted by the
# example itself via a weight-checksum allgather).
echo
echo "== CNN data-parallel wire smoke (4 ranks) =="
timeout 120 env BENCH_QUICK=1 BENCH_REPEATS=1 \
  target/release/offload-run -n 4 --timeout 90 cnn_training \
  || { echo "CNN wire smoke lane FAILED"; exit 1; }

if cargo fmt --version >/dev/null 2>&1; then
  run cargo fmt --all -- --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== cargo clippy not installed; skipping lint =="
fi

# Workspace discipline lint (crates/lint): subsumes the old awk
# SAFETY/ORDERING comment check and adds the facade, reserved-tag and
# peer-input-hardening rules — the textual invariants the model checker,
# Miri and proto-model lanes then actually verify. Findings are
# suppressed only through the committed .lint-allow file; stale entries
# fail the lane too. See DESIGN.md §15 for the rule catalog.
echo
echo "== offload-lint (workspace discipline) =="
run cargo run -q --release -p lint --bin offload-lint -- --root . \
  || { echo "offload-lint FAILED (see findings above)"; exit 1; }

# Deterministic model-checker lane (always on: the checker is std-only).
# Explores thread interleavings of the lock-free core under a bounded-
# preemption DFS plus a seeded random walk, with vector-clock race and
# lost-wakeup detection. The seed is pinned so CI is reproducible; export
# OFFLOAD_MODEL_SEED / OFFLOAD_MODEL_ITERS to explore differently. A
# separate target dir keeps the --cfg flag from thrashing the main cache.
# shmring rides the same lane: tests/model.rs compiles the ring protocol
# source against check's instrumented atomics (see crates/shmring), so the
# SPSC handoff and park/doorbell handshake are explored under the same
# pinned seed — including a deliberately-broken-ordering test that proves
# the detector has teeth on this structure.
run env CARGO_TARGET_DIR=target/model RUSTFLAGS="--cfg offload_model" \
  OFFLOAD_MODEL_SEED="${OFFLOAD_MODEL_SEED:-1592598549}" \
  cargo test -p check -p shmring -q

# Protocol-model lane (always on, plain build): check::proto runs the
# *real* wire engine and NBC round schedules over an in-process fabric
# and explores frame delivery order / duplication / peer death across
# eager, rendezvous and all collective schedules at 2–4 ranks. The seed
# is pinned for reproducibility; the distinct-interleaving floor makes a
# silently collapsed exploration (e.g. a scheduler bug that always picks
# index 0) fail loudly rather than pass vacuously. Release mode: the
# acceptance sweep is 11k schedules of a 3-rank allreduce.
run env OFFLOAD_MODEL_SEED="${OFFLOAD_MODEL_SEED:-1592598549}" \
  OFFLOAD_MODEL_ITERS=11000 OFFLOAD_PROTO_MIN_DISTINCT=10000 \
  cargo test -q -p check --features proto --release

# Thread-sanitizer lane (gated: needs a nightly toolchain with the
# rust-src component). TSan watches the *native* executions of the core
# queue/lane/pool/backoff tests — a different lens from the model lane:
# real weak-memory interleavings on real threads, no schedule bound.
if rustup run nightly cargo --version >/dev/null 2>&1 \
   && rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
  run env CARGO_TARGET_DIR=target/tsan \
    RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
    rustup run nightly cargo test -p offload --lib \
      -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
      -- queue:: lane:: pool:: backoff:: \
    || { echo "thread-sanitizer lane FAILED — a real data race, not an"; \
         echo "environment problem; do not re-run with the lane skipped."; exit 1; }
else
  echo "== nightly + rust-src not available; skipping thread-sanitizer lane =="
fi

# Weak-memory lane (gated: Miri is not in every toolchain): the model lane
# above explores interleavings under sequential consistency only, so Miri
# remains the lane that catches relaxed-memory and aliasing bugs. Covers
# the lock-free core plus the engine modules that drive it (live::, sim::).
# -Zmiri-disable-isolation lets the parking condvar read the monotonic
# clock for its timeout backstop.
if cargo miri --version >/dev/null 2>&1; then
  MIRI_FILTER="queue:: lane:: pool:: backoff:: live:: sim::"
  # shellcheck disable=SC2086
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p offload --lib -- $MIRI_FILTER \
    || { echo "cargo miri lane FAILED — this is a real bug, not an environment"; \
         echo "problem; do not re-run with miri skipped."; exit 1; }
  # shellcheck disable=SC2086
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p offload --lib --no-default-features -- $MIRI_FILTER \
    || { echo "cargo miri lane FAILED (--no-default-features)"; exit 1; }
  # The shm data plane's safe layers: the registered-buffer pool and the
  # ring protocol over its std facade (the mmap'd-segment module itself is
  # foreign memory Miri cannot model; its discipline is confined to
  # crates/wire/src/shm.rs by offload-lint). The 10k-message threaded
  # stream test is skipped — minutes under the interpreter, covered natively.
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p wire --lib -- regpool:: \
    || { echo "cargo miri lane FAILED (wire regpool)"; exit 1; }
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p shmring --test plain -- --skip threaded_stream \
    || { echo "cargo miri lane FAILED (shmring)"; exit 1; }
else
  echo "== cargo miri not installed; skipping weak-memory lane =="
fi

# Perf-trajectory gate: quick panels under the pinned CI shape, diffed
# against the committed BENCH_*.json baselines using each series'
# recorded noise band. Wall-clock series are `info` (never gate); the
# deterministic DES and protocol-counter series gate hard.
bench_gate

echo
echo "ci.sh: all checks passed"
