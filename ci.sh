#!/usr/bin/env bash
# Local/CI gate: build, test (both observability modes), format, lint.
# Fully offline — all dependencies are path deps inside the repo.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

run() {
  echo
  echo "== $* =="
  "$@"
}

run cargo build --release --workspace
run cargo test --workspace -q

# The no-op observability build must stay warning-free and green where it
# matters most: the instrumented hot paths and the engine.
run cargo test -q -p offload -p mpisim --no-default-features
run cargo check -q --benches --workspace

# Multi-process smoke: ranks as OS processes over Unix-domain sockets
# running the live halo-exchange panel (baseline / iprobe / offload over
# the wire backend). The launcher's own --timeout kills a wedged job; the
# outer `timeout` is the backstop against a wedged *launcher*. Miri and
# model-checker lanes never see this (they run other packages' lib tests).
echo
echo "== multi-process wire smoke (4 ranks over UDS) =="
timeout 60 target/release/offload-run -n 4 --timeout 50 halo_exchange \
  || { echo "wire smoke lane FAILED"; exit 1; }

# Cluster observability smoke: the same panel with the stats plane on.
# Every rank ships periodic snapshots to the launcher, which writes the
# aggregated JSON report; stats-check gates on all 4 ranks being present
# and every rank showing asynchronously-completed rendezvous handshakes
# (the offload phase's signature — WIRE_EAGER_MAX keeps the faces on the
# rendezvous path regardless of the example's message sizing).
echo
echo "== cluster stats plane smoke (4 ranks, aggregated JSON report) =="
timeout 60 env WIRE_EAGER_MAX=4096 \
  target/release/offload-run -n 4 --timeout 50 \
  --stats-interval 50 --stats-out /tmp/stats.json halo_exchange \
  || { echo "stats plane lane FAILED (launch)"; exit 1; }
target/release/stats-check /tmp/stats.json --ranks 4 \
  --positive wire.rndv_handshake_async \
  || { echo "stats plane lane FAILED (report validation)"; exit 1; }

if cargo fmt --version >/dev/null 2>&1; then
  run cargo fmt --all -- --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== cargo clippy not installed; skipping lint =="
fi

# Comment-discipline lint over the lock-free core and the checker itself:
# every `unsafe` needs a `// SAFETY:` comment just above it, and every
# `Ordering::SeqCst` outside test code needs an `// ORDERING:` comment
# saying why nothing weaker suffices. Cheap textual enforcement of the
# invariants the model checker and Miri lanes then actually verify.
echo
echo "== comment-discipline lint (SAFETY / ORDERING) =="
lint_status=0
for f in crates/core/src/*.rs crates/check/src/*.rs crates/check/src/rt/*.rs; do
  awk -v file="$f" '
    {
      line = $0
      sub(/^[[:space:]]+/, "", line)
    }
    # Everything from the unit-test module down is exempt (test code may
    # use SeqCst freely; `unsafe` there is still flagged).
    $0 ~ /^#\[cfg\(test\)\]/ { in_test = 1 }
    line ~ /^\/\// {
      if (line ~ /^\/\/ SAFETY:/) safety = NR
      if (line ~ /^\/\/ ORDERING:/) ordering = NR
      next
    }
    !in_test && match(line, /(^|[^A-Za-z0-9_"])unsafe([^A-Za-z0-9_]|$)/) {
      if (NR - safety > 8 && line !~ /\/\/ SAFETY:/) {
        printf "%s:%d: unsafe without a preceding // SAFETY: comment\n", file, NR
        bad = 1
      }
    }
    !in_test && index(line, "Ordering::SeqCst") {
      if (NR - ordering > 8 && line !~ /\/\/ ORDERING:/) {
        printf "%s:%d: SeqCst without a preceding // ORDERING: comment\n", file, NR
        bad = 1
      }
    }
    END { exit bad }
  ' "$f" || lint_status=1
done
if [ "$lint_status" -ne 0 ]; then
  echo "comment-discipline lint FAILED (see above)"
  exit 1
fi
echo "comment-discipline lint passed"

# Deterministic model-checker lane (always on: the checker is std-only).
# Explores thread interleavings of the lock-free core under a bounded-
# preemption DFS plus a seeded random walk, with vector-clock race and
# lost-wakeup detection. The seed is pinned so CI is reproducible; export
# OFFLOAD_MODEL_SEED / OFFLOAD_MODEL_ITERS to explore differently. A
# separate target dir keeps the --cfg flag from thrashing the main cache.
run env CARGO_TARGET_DIR=target/model RUSTFLAGS="--cfg offload_model" \
  OFFLOAD_MODEL_SEED="${OFFLOAD_MODEL_SEED:-1592598549}" \
  cargo test -p check -q

# Weak-memory lane (gated: Miri is not in every toolchain): the model lane
# above explores interleavings under sequential consistency only, so Miri
# remains the lane that catches relaxed-memory and aliasing bugs. Covers
# the lock-free core plus the engine modules that drive it (live::, sim::).
# -Zmiri-disable-isolation lets the parking condvar read the monotonic
# clock for its timeout backstop.
if cargo miri --version >/dev/null 2>&1; then
  MIRI_FILTER="queue:: lane:: pool:: backoff:: live:: sim::"
  # shellcheck disable=SC2086
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p offload --lib -- $MIRI_FILTER \
    || { echo "cargo miri lane FAILED — this is a real bug, not an environment"; \
         echo "problem; do not re-run with miri skipped."; exit 1; }
  # shellcheck disable=SC2086
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p offload --lib --no-default-features -- $MIRI_FILTER \
    || { echo "cargo miri lane FAILED (--no-default-features)"; exit 1; }
else
  echo "== cargo miri not installed; skipping weak-memory lane =="
fi

echo
echo "ci.sh: all checks passed"
