#!/usr/bin/env bash
# Local/CI gate: build, test (both observability modes), format, lint.
# Fully offline — all dependencies are path deps inside the repo.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

run() {
  echo
  echo "== $* =="
  "$@"
}

run cargo build --release --workspace
run cargo test --workspace -q

# The no-op observability build must stay warning-free and green where it
# matters most: the instrumented hot paths and the engine.
run cargo test -q -p offload -p mpisim --no-default-features
run cargo check -q --benches --workspace

if cargo fmt --version >/dev/null 2>&1; then
  run cargo fmt --all -- --check
else
  echo "== cargo fmt not installed; skipping format check =="
fi

if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== cargo clippy not installed; skipping lint =="
fi

# Model-checked lane over the lock-free core (queue, lanes, pool, backoff):
# Miri's weak-memory and aliasing models catch ordering bugs the stress
# tests can only hope to hit. Both observability modes, since the metric
# calls sit directly on the hot paths. -Zmiri-disable-isolation lets the
# parking condvar read the monotonic clock for its timeout backstop.
if cargo miri --version >/dev/null 2>&1; then
  MIRI_FILTER="queue:: lane:: pool:: backoff::"
  # shellcheck disable=SC2086
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p offload --lib -- $MIRI_FILTER
  # shellcheck disable=SC2086
  run env MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo miri test -p offload --lib --no-default-features -- $MIRI_FILTER
else
  echo "== cargo miri not installed; skipping model-checked lane =="
fi

echo
echo "ci.sh: all checks passed"
