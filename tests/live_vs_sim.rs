//! The two faces of the offload infrastructure — real OS threads over
//! `rtmpi` and the DES model over `mpisim` — must compute identical
//! results for the same program (only their notion of time differs).

use approaches::{run_approach, AnyComm, Approach, Comm};
use mpisim::{Bytes, Dtype, ReduceOp};
use simnet::MachineProfile;
use std::sync::Arc;
use std::thread;

/// The program: ring-shift a value, then allreduce-sum the received one,
/// then allgather rank bytes.
fn expected(p: usize) -> (f64, Vec<u8>) {
    let sum = (0..p).map(|r| r as f64).sum();
    let gathered = (0..p).map(|r| r as u8).collect();
    (sum, gathered)
}

#[test]
fn live_offload_runs_the_program() {
    let p = 4;
    let (want_sum, want_gather) = expected(p);
    let ranks = offload::offload_world(p);
    let workers: Vec<_> = ranks
        .iter()
        .map(|r| {
            let h = r.handle();
            thread::spawn(move || {
                let me = h.rank();
                let right = (me + 1) % h.size();
                let left = (me + h.size() - 1) % h.size();
                let rx = h.irecv(Some(left), Some(1));
                h.send(right, 1, Arc::from(vec![me as u8]));
                let (_, data) = match h.wait(rx) {
                    offload::Completion::Received(st, d) => (st, d),
                    other => panic!("{other:?}"),
                };
                let from_left = data[0] as f64;
                let sum = h.allreduce_f64_sum(&[from_left])[0];
                let gathered = h.allgather(vec![me as u8]);
                (sum, gathered)
            })
        })
        .collect();
    for w in workers {
        let (sum, gathered) = w.join().expect("worker");
        assert_eq!(sum, want_sum);
        assert_eq!(gathered, want_gather);
    }
    for r in ranks {
        r.finalize();
    }
}

#[test]
fn sim_offload_runs_the_program_identically() {
    let p = 4;
    let (want_sum, want_gather) = expected(p);
    let (outs, _) = run_approach(
        p,
        MachineProfile::xeon(),
        Approach::Offload,
        false,
        move |comm: AnyComm| async move {
            let me = comm.rank();
            let right = (me + 1) % comm.size();
            let left = (me + comm.size() - 1) % comm.size();
            let rx = comm.irecv(Some(left), Some(1)).await;
            comm.send(right, 1, Bytes::real(vec![me as u8])).await;
            comm.wait(&rx).await;
            let from_left = rx.take_data().expect("ring data").to_vec()[0] as f64;
            let sum_bytes = comm
                .allreduce(
                    Bytes::real(from_left.to_le_bytes().to_vec()),
                    Dtype::F64,
                    ReduceOp::Sum,
                )
                .await;
            let sum = f64::from_le_bytes(sum_bytes.to_vec().try_into().expect("8 bytes"));
            let gathered = comm.allgather(Bytes::real(vec![me as u8])).await.to_vec();
            (sum, gathered)
        },
    );
    for (sum, gathered) in outs {
        assert_eq!(sum, want_sum);
        assert_eq!(gathered, want_gather);
    }
}

/// Same NBC schedule code drives both executors: collectives agree on
/// every operation we offer in both modes.
#[test]
fn collectives_agree_between_modes() {
    let p = 5; // non-power-of-two exercises the reduce+bcast fallback
               // Live.
    let ranks = offload::offload_world(p);
    // Spawn everything first, then join: joining lazily inside the same
    // iterator chain would serialize the ranks and deadlock the collective.
    let spawned: Vec<_> = ranks
        .iter()
        .map(|r| {
            let h = r.handle();
            thread::spawn(move || {
                let me = h.rank();
                let sum = h.allreduce_f64_sum(&[me as f64 + 0.5]);
                let bc = h.bcast(2, if me == 2 { vec![9, 9] } else { vec![] });
                let a2a_in: Vec<u8> = (0..h.size()).map(|d| (me * 10 + d) as u8).collect();
                let a2a = h.alltoall(a2a_in, 1);
                (sum, bc, a2a)
            })
        })
        .collect();
    let live: Vec<_> = spawned
        .into_iter()
        .map(|t| t.join().expect("live worker"))
        .collect();
    for r in ranks {
        r.finalize();
    }
    // Sim.
    let (sim, _) = run_approach(
        p,
        MachineProfile::xeon(),
        Approach::Offload,
        false,
        move |comm: AnyComm| async move {
            let me = comm.rank();
            let sum_b = comm
                .allreduce(
                    Bytes::real((me as f64 + 0.5).to_le_bytes().to_vec()),
                    Dtype::F64,
                    ReduceOp::Sum,
                )
                .await;
            let sum = vec![f64::from_le_bytes(
                sum_b.to_vec().try_into().expect("8 bytes"),
            )];
            let bc = comm
                .bcast(
                    2,
                    if me == 2 {
                        Bytes::real(vec![9, 9])
                    } else {
                        Bytes::synthetic(0)
                    },
                )
                .await
                .to_vec();
            let a2a_in: Vec<u8> = (0..comm.size()).map(|d| (me * 10 + d) as u8).collect();
            let a2a = comm.alltoall(Bytes::real(a2a_in), 1).await.to_vec();
            (sum, bc, a2a)
        },
    );
    assert_eq!(live, sim, "live and simulated modes must agree exactly");
}
