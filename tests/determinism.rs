//! The discrete-event simulation must be bit-for-bit reproducible: the
//! whole point of modelling in virtual time is that every experiment is
//! exactly repeatable (DESIGN.md §7).

use approaches::Approach;
use cnn::{run_cnn, CnnConfig};
use fft1d::{run_fft, FftConfig};
use qcd::{lattice_32x256, run_dslash, DslashConfig};
use simnet::MachineProfile;

#[test]
fn qcd_driver_is_deterministic() {
    let cfg = DslashConfig {
        lattice: lattice_32x256(),
        nodes: 8,
        iterations: 2,
        progress_hints: 4,
    };
    for approach in [Approach::Baseline, Approach::CommSelf, Approach::Offload] {
        let a = run_dslash(MachineProfile::xeon(), approach, &cfg);
        let b = run_dslash(MachineProfile::xeon(), approach, &cfg);
        assert_eq!(a.phases.total, b.phases.total, "{}", approach.name());
        assert_eq!(a.phases.post, b.phases.post);
        assert_eq!(a.phases.wait, b.phases.wait);
        assert_eq!(a.tflops, b.tflops);
    }
}

#[test]
fn fft_driver_is_deterministic() {
    let cfg = FftConfig {
        points_per_node: 1 << 20,
        nodes: 4,
        segments: 4,
        iterations: 2,
        compute_overhead: 1.25,
        fft_efficiency: 0.35,
    };
    let a = run_fft(MachineProfile::xeon(), Approach::Offload, &cfg);
    let b = run_fft(MachineProfile::xeon(), Approach::Offload, &cfg);
    assert_eq!(a.phases.total, b.phases.total);
    assert_eq!(a.gflops, b.gflops);
}

#[test]
fn cnn_driver_is_deterministic() {
    let cfg = CnnConfig {
        minibatch: 64,
        nodes: 4,
        iterations: 2,
    };
    let a = run_cnn(MachineProfile::xeon(), Approach::CommSelf, &cfg);
    let b = run_cnn(MachineProfile::xeon(), Approach::CommSelf, &cfg);
    assert_eq!(a.iter_ns, b.iter_ns);
}

#[test]
fn microbenchmarks_are_deterministic() {
    let a = harness::osu_latency(MachineProfile::xeon(), Approach::CommSelf, 1024, 5);
    let b = harness::osu_latency(MachineProfile::xeon(), Approach::CommSelf, 1024, 5);
    assert_eq!(a, b);
    let a = harness::overlap_p2p(MachineProfile::xeon(), Approach::Offload, 1 << 20, 3);
    let b = harness::overlap_p2p(MachineProfile::xeon(), Approach::Offload, 1 << 20, 3);
    assert_eq!(a.comm_ns, b.comm_ns);
    assert_eq!(a.wait_ns, b.wait_ns);
}
