//! End-to-end assertions of the paper's headline claims, each run at a
//! reduced scale that preserves the regime in question. These are the
//! "does the reproduction actually reproduce" tests.

use approaches::Approach;
use cnn::{run_cnn, CnnConfig};
use fft1d::{run_fft, FftConfig};
use harness::{isend_issue_cost, osu_latency, osu_mt_latency, overlap_p2p};
use qcd::{lattice_32x256, run_dslash, DslashConfig};
use simnet::MachineProfile;

fn xeon() -> MachineProfile {
    MachineProfile::xeon()
}

/// Abstract §1: "we demonstrate significant performance improvement (up to
/// 2X) for QCD" — the offload-vs-baseline gap must widen with scale and be
/// substantial at the largest configuration.
#[test]
fn qcd_speedup_grows_with_scale() {
    let cfg = |nodes| DslashConfig {
        lattice: lattice_32x256(),
        nodes,
        iterations: 2,
        progress_hints: 4,
    };
    let speedup = |nodes| {
        let b = run_dslash(xeon(), Approach::Baseline, &cfg(nodes));
        let o = run_dslash(xeon(), Approach::Offload, &cfg(nodes));
        o.tflops / b.tflops
    };
    let small = speedup(8);
    let large = speedup(128);
    assert!(
        large > small,
        "speedup should grow with scale: {small:.3} -> {large:.3}"
    );
    assert!(
        large > 1.15,
        "offload should win clearly at 128 nodes, got {large:.3}x"
    );
}

/// §4.2: the offload approach's Isend posting cost is constant (~140 ns)
/// and orders of magnitude below the baseline's eager copy at 128 KB.
#[test]
fn posting_cost_claims() {
    let off_64 = isend_issue_cost(xeon(), Approach::Offload, 64, 4);
    let off_2m = isend_issue_cost(xeon(), Approach::Offload, 2 << 20, 4);
    assert_eq!(off_64, off_2m);
    assert!((50..=400).contains(&off_64), "~140ns, got {off_64}");
    let base_128k = isend_issue_cost(xeon(), Approach::Baseline, 128 * 1024, 4);
    assert!(base_128k > 50 * off_64);
}

/// §4.1/Fig 2: offload overlap stays above 85% for small messages and
/// reaches ~99% for large ones; baseline collapses past the rendezvous
/// threshold.
#[test]
fn overlap_claims() {
    let off_small = overlap_p2p(xeon(), Approach::Offload, 4096, 3);
    assert!(
        off_small.overlap_pct > 85.0,
        "offload 4KB overlap {}",
        off_small.overlap_pct
    );
    let off_large = overlap_p2p(xeon(), Approach::Offload, 2 << 20, 3);
    assert!(
        off_large.overlap_pct > 95.0,
        "offload 2MB overlap {}",
        off_large.overlap_pct
    );
    let base_large = overlap_p2p(xeon(), Approach::Baseline, 2 << 20, 3);
    assert!(
        base_large.overlap_pct < 10.0,
        "baseline 2MB overlap {}",
        base_large.overlap_pct
    );
}

/// §4.4/Fig 6: with 8 threads the offload approach's message latency beats
/// the THREAD_MULTIPLE implementations "by up to 6X" — require at least 3X
/// against comm-self and strictly better scaling than baseline.
#[test]
fn multithreaded_latency_claims() {
    let base = osu_mt_latency(xeon(), Approach::Baseline, 8, 64, 3);
    let cself = osu_mt_latency(xeon(), Approach::CommSelf, 8, 64, 3);
    let off = osu_mt_latency(xeon(), Approach::Offload, 8, 64, 3);
    assert!(
        cself > 3 * off,
        "comm-self {cself}ns should be ≥3x offload {off}ns"
    );
    assert!(base > 2 * off, "baseline {base}ns vs offload {off}ns");
}

/// §4.5/Fig 7a: offload adds ~0.3 µs to small-message latency; comm-self
/// adds an order of magnitude more.
#[test]
fn latency_overhead_claims() {
    let base = osu_latency(xeon(), Approach::Baseline, 64, 8);
    let off = osu_latency(xeon(), Approach::Offload, 64, 8);
    let cself = osu_latency(xeon(), Approach::CommSelf, 64, 8);
    let off_overhead = off.saturating_sub(base);
    let cself_overhead = cself.saturating_sub(base);
    assert!(
        (50..=1_000).contains(&off_overhead),
        "offload overhead {off_overhead}ns should be a fraction of a µs"
    );
    assert!(
        cself_overhead > 5 * off_overhead,
        "comm-self overhead {cself_overhead}ns ≫ offload {off_overhead}ns"
    );
}

/// §5.2/Fig 13: FFT gains ~20% at small-to-mid scale on Xeon.
#[test]
fn fft_improvement_claims() {
    let cfg = FftConfig {
        points_per_node: 1 << 24,
        nodes: 8,
        segments: 4,
        iterations: 2,
        compute_overhead: 1.25,
        fft_efficiency: 0.35,
    };
    let b = run_fft(xeon(), Approach::Baseline, &cfg);
    let o = run_fft(xeon(), Approach::Offload, &cfg);
    let gain = o.gflops / b.gflops;
    assert!(
        gain > 1.05,
        "offload should improve FFT at 8 nodes, got {gain:.3}x"
    );
}

/// §5.3/Fig 14: CNN training ~equal at small node counts, offload ahead at
/// scale.
#[test]
fn cnn_improvement_claims() {
    let cfg = |nodes| CnnConfig {
        minibatch: 256,
        nodes,
        iterations: 2,
    };
    let b_small = run_cnn(xeon(), Approach::Baseline, &cfg(2));
    let o_small = run_cnn(xeon(), Approach::Offload, &cfg(2));
    let ratio_small = o_small.images_per_sec / b_small.images_per_sec;
    assert!(
        (0.9..1.3).contains(&ratio_small),
        "at 2 nodes the approaches should be close, got {ratio_small:.3}"
    );
    let b_big = run_cnn(xeon(), Approach::Baseline, &cfg(32));
    let o_big = run_cnn(xeon(), Approach::Offload, &cfg(32));
    let ratio_big = o_big.images_per_sec / b_big.images_per_sec;
    assert!(
        ratio_big > ratio_small,
        "offload's advantage must grow with scale: {ratio_small:.3} -> {ratio_big:.3}"
    );
}

/// §3: the internal-compute cost of dedicating a core is a few percent on
/// a 14-core socket (Table 1's slowdown column stays under ~8%).
#[test]
fn dedicated_core_cost_is_nominal() {
    let cfg = DslashConfig {
        lattice: lattice_32x256(),
        nodes: 8,
        iterations: 2,
        progress_hints: 4,
    };
    let b = run_dslash(xeon(), Approach::Baseline, &cfg);
    let o = run_dslash(xeon(), Approach::Offload, &cfg);
    let slowdown = o.phases.internal as f64 / b.phases.internal as f64;
    assert!(
        (1.0..1.10).contains(&slowdown),
        "internal-compute slowdown {slowdown:.3} should be ~1/14"
    );
}
