//! One-sided (RMA) communication tests — the paper's §7 future-work
//! direction and the setting of Casper [30] in its related work: puts and
//! gets against exposure windows, fence synchronization, and the
//! passive-target progress problem that dedicated progress agents solve.

use approaches::{run_approach, AnyComm, Approach, Comm};
use destime::Nanos;
use mpisim::{Bytes, Mpi, ThreadLevel, Universe};
use simnet::MachineProfile;

fn uni(n: usize) -> Universe {
    Universe::new(n, MachineProfile::xeon(), ThreadLevel::Funneled)
}

#[test]
fn put_becomes_visible_after_fence() {
    let (outs, _) = uni(4).run(|mpi: Mpi| {
        Box::pin(async move {
            let win = mpi.win_create(vec![0u8; 16]).await;
            // Everyone puts its rank into slot `rank` of the right
            // neighbor's window.
            let right = (mpi.rank() + 1) % 4;
            let _ = mpi
                .put(win, right, mpi.rank(), vec![mpi.rank() as u8 + 1])
                .await;
            mpi.win_fence(win).await;
            mpi.win_local(win)
        })
    });
    for (r, w) in outs.iter().enumerate() {
        let left = (r + 3) % 4;
        assert_eq!(w[left], left as u8 + 1, "rank {r} window {w:?}");
        // Only that one slot written.
        for (i, &b) in w.iter().enumerate() {
            if i != left {
                assert_eq!(b, 0);
            }
        }
    }
}

#[test]
fn get_reads_remote_window() {
    let (outs, _) = uni(3).run(|mpi: Mpi| {
        Box::pin(async move {
            let mine: Vec<u8> = (0..8).map(|i| (mpi.rank() * 10 + i) as u8).collect();
            let win = mpi.win_create(mine).await;
            let target = (mpi.rank() + 1) % 3;
            let req = mpi.get(win, target, 2, 4).await;
            mpi.wait(&req).await;
            let data = req.take_data().expect("get reply").to_vec();
            mpi.win_fence(win).await;
            (target, data)
        })
    });
    for (target, data) in outs {
        let expect: Vec<u8> = (2..6).map(|i| (target * 10 + i) as u8).collect();
        assert_eq!(data, expect);
    }
}

#[test]
fn multiple_puts_to_same_target_accumulate_in_order() {
    let (outs, _) = uni(2).run(|mpi: Mpi| {
        Box::pin(async move {
            let win = mpi.win_create(vec![0u8; 8]).await;
            if mpi.rank() == 0 {
                for i in 0..4u8 {
                    let _ = mpi.put(win, 1, i as usize * 2, vec![i + 1, i + 1]).await;
                }
            }
            mpi.win_fence(win).await;
            mpi.win_local(win)
        })
    });
    assert_eq!(outs[1], vec![1, 1, 2, 2, 3, 3, 4, 4]);
}

/// The Casper phenomenon: a put at a *computing* (non-polling) target only
/// completes once the target finally enters MPI — unless a dedicated
/// progress agent (comm-self / core-spec / offload) drives the target's
/// progress engine.
#[test]
fn passive_target_put_needs_async_progress() {
    let compute: Nanos = 5_000_000;
    let origin_wait = |approach: Approach| {
        let (outs, _) = run_approach(
            2,
            MachineProfile::xeon(),
            approach,
            false,
            move |comm: AnyComm| async move {
                let env = comm.env().clone();
                let mpi = comm.mpi().clone();
                let win = mpi.win_create(vec![0u8; 1 << 20]).await;
                let out = if comm.rank() == 0 {
                    let req = mpi.put(win, 1, 0, Bytes::synthetic(1 << 20)).await;
                    let t0 = env.now();
                    mpi.wait(&req).await;
                    env.now() - t0
                } else {
                    // The target computes, never entering MPI.
                    env.advance(compute).await;
                    0
                };
                mpi.win_fence(win).await;
                out
            },
        );
        outs[0]
    };
    let baseline = origin_wait(Approach::Baseline);
    let commself = origin_wait(Approach::CommSelf);
    let corespec = origin_wait(Approach::CoreSpec);
    // Without async progress the origin stalls ~the whole target compute
    // phase; with a progress agent the put completes in wire time.
    assert!(
        baseline > compute / 2,
        "baseline origin wait {baseline}ns should approach the target's {compute}ns compute"
    );
    assert!(
        commself < baseline / 4,
        "comm-self ({commself}ns) must rescue the passive target vs baseline ({baseline}ns)"
    );
    assert!(
        corespec < baseline / 4,
        "core-spec ({corespec}ns) must rescue the passive target vs baseline ({baseline}ns)"
    );
}

#[test]
fn fence_without_rma_is_a_barrier() {
    let (outs, _) = uni(3).run(|mpi: Mpi| {
        Box::pin(async move {
            let env = mpi.env().clone();
            let win = mpi.win_create(vec![0u8; 4]).await;
            env.advance(mpi.rank() as u64 * 100_000).await;
            mpi.win_fence(win).await;
            env.now()
        })
    });
    let spread = outs.iter().max().unwrap() - outs.iter().min().unwrap();
    assert!(spread < 50_000, "fence synchronizes: spread {spread}");
}

#[test]
fn synthetic_put_payloads_move_without_allocation() {
    let (outs, _) = uni(2).run(|mpi: Mpi| {
        Box::pin(async move {
            // A "1 GiB" put as synthetic payload: costs model time, not
            // host memory. The window itself is small and untouched.
            let win = mpi.win_create(vec![7u8; 4]).await;
            if mpi.rank() == 0 {
                let req = mpi.put(win, 1, 0, Bytes::synthetic(1 << 30)).await;
                mpi.wait(&req).await;
            }
            mpi.win_fence(win).await;
            mpi.win_local(win)
        })
    });
    // Synthetic data leaves the window contents alone (documented).
    assert_eq!(outs[1], vec![7u8; 4]);
}
