//! Matrix coverage: every `Comm` trait operation, under every approach,
//! produces the correct data. This pins down the full public surface that
//! applications program against.

use approaches::{run_approach, AnyComm, Approach, Comm};
use mpisim::{bytes_to_f64s, f64s_to_bytes, Bytes, Dtype, ReduceOp};
use simnet::MachineProfile;

const P: usize = 4;

async fn exercise_everything(comm: AnyComm) -> Vec<String> {
    let mut log = Vec::new();
    let me = comm.rank();
    let p = comm.size();

    // p2p: ring exchange via isend/irecv/wait.
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let rx = comm.irecv(Some(left), Some(3)).await;
    let tx = comm.isend(right, 3, Bytes::real(vec![me as u8; 5])).await;
    comm.waitall(&[rx.clone(), tx]).await;
    let st = rx.status().expect("status");
    assert_eq!(st.source, left);
    assert_eq!(st.len, 5);
    log.push(format!("p2p:{}", rx.take_data().expect("data").to_vec()[0]));

    // test() on an already-complete request.
    let done = comm.isend(right, 4, Bytes::real(vec![1])).await;
    let (_, _) = comm.recv(Some(left), Some(4)).await;
    comm.wait(&done).await;
    assert!(comm.test(&done).await);

    // progress_hint is always safe to call.
    comm.progress_hint().await;

    // Barrier + ibarrier.
    comm.barrier().await;
    let b = comm.ibarrier().await;
    comm.wait(&b).await;

    // allreduce / iallreduce.
    let s = comm
        .allreduce(
            Bytes::real(f64s_to_bytes(&[1.0])),
            Dtype::F64,
            ReduceOp::Sum,
        )
        .await;
    assert_eq!(bytes_to_f64s(&s.to_vec())[0], p as f64);
    let r = comm
        .iallreduce(
            Bytes::real(f64s_to_bytes(&[me as f64])),
            Dtype::F64,
            ReduceOp::Max,
        )
        .await;
    comm.wait(&r).await;
    assert_eq!(
        bytes_to_f64s(&r.take_data().expect("max").to_vec())[0],
        (p - 1) as f64
    );

    // ireduce to a non-zero root.
    let r = comm
        .ireduce(
            1,
            Bytes::real(f64s_to_bytes(&[2.0])),
            Dtype::F64,
            ReduceOp::Sum,
        )
        .await;
    comm.wait(&r).await;
    if me == 1 {
        assert_eq!(
            bytes_to_f64s(&r.take_data().expect("reduce").to_vec())[0],
            2.0 * p as f64
        );
    }

    // bcast / ibcast.
    let payload = if me == 2 {
        Bytes::real(vec![7, 8, 9])
    } else {
        Bytes::synthetic(0)
    };
    assert_eq!(comm.bcast(2, payload).await.to_vec(), vec![7, 8, 9]);
    let r = comm
        .ibcast(
            0,
            if me == 0 {
                Bytes::real(vec![5])
            } else {
                Bytes::synthetic(0)
            },
        )
        .await;
    comm.wait(&r).await;
    assert_eq!(r.take_data().expect("bcast").to_vec(), vec![5]);

    // allgather / iallgather.
    let g = comm.allgather(Bytes::real(vec![me as u8])).await;
    assert_eq!(g.to_vec(), (0..p as u8).collect::<Vec<_>>());
    let r = comm.iallgather(Bytes::real(vec![me as u8 + 10])).await;
    comm.wait(&r).await;
    assert_eq!(
        r.take_data().expect("allgather").to_vec(),
        (0..p as u8).map(|x| x + 10).collect::<Vec<_>>()
    );

    // alltoall / ialltoall.
    let input: Vec<u8> = (0..p).map(|d| (me * p + d) as u8).collect();
    let out = comm.alltoall(Bytes::real(input.clone()), 1).await;
    let expect: Vec<u8> = (0..p).map(|s| (s * p + me) as u8).collect();
    assert_eq!(out.to_vec(), expect);
    let r = comm.ialltoall(Bytes::real(input), 1).await;
    comm.wait(&r).await;
    assert_eq!(r.take_data().expect("alltoall").to_vec(), expect);

    // igather / iscatter to root 3.
    let r = comm.igather(3, Bytes::real(vec![me as u8; 2])).await;
    comm.wait(&r).await;
    if me == 3 {
        let g = r.take_data().expect("gather").to_vec();
        let expect: Vec<u8> = (0..p as u8).flat_map(|x| [x, x]).collect();
        assert_eq!(g, expect);
    }
    let input =
        (me == 3).then(|| Bytes::real((0..p as u8).flat_map(|x| [x * 2, x * 2 + 1]).collect()));
    let r = comm.iscatter(3, input, 2).await;
    comm.wait(&r).await;
    assert_eq!(
        r.take_data().expect("scatter").to_vec(),
        vec![me as u8 * 2, me as u8 * 2 + 1]
    );

    log.push("ok".into());
    log
}

#[test]
fn every_approach_supports_the_full_comm_surface() {
    for approach in Approach::ALL {
        let (outs, _) = run_approach(
            P,
            MachineProfile::xeon(),
            approach,
            false,
            exercise_everything,
        );
        for (r, log) in outs.iter().enumerate() {
            assert_eq!(
                log.last().map(String::as_str),
                Some("ok"),
                "{} rank {r}: {log:?}",
                approach.name()
            );
            // The ring delivered the left neighbor's byte.
            assert_eq!(log[0], format!("p2p:{}", (r + P - 1) % P));
        }
    }
}

#[test]
fn approaches_are_deterministic_and_distinct_in_time() {
    // Same program, different approaches: identical data results (checked
    // above), different virtual timings — and each approach's timing is
    // itself reproducible.
    let elapsed = |a: Approach| {
        let (_, t) = run_approach(P, MachineProfile::xeon(), a, false, exercise_everything);
        t
    };
    for a in Approach::ALL {
        assert_eq!(elapsed(a), elapsed(a), "{} must be deterministic", a.name());
    }
    // THREAD_MULTIPLE approaches pay for their locks on this call-heavy
    // program.
    assert!(elapsed(Approach::CommSelf) > elapsed(Approach::Baseline));
}

/// Regression: under core-spec, the unlocked progress helper and a locked
/// application call can poll within one virtual instant; the fabric's
/// non-overtaking guarantee must keep ring-allgather blocks in order.
#[test]
fn core_spec_concurrent_pollers_preserve_message_order() {
    use mpisim::Bytes;
    for _ in 0..3 {
        let (outs, _) = run_approach(
            P,
            MachineProfile::xeon(),
            Approach::CoreSpec,
            false,
            exercise_everything,
        );
        for log in &outs {
            assert_eq!(log.last().map(String::as_str), Some("ok"));
        }
        // And the bare collective sequence:
        let (ag, _) = run_approach(
            P,
            MachineProfile::xeon(),
            Approach::CoreSpec,
            false,
            |comm: AnyComm| async move {
                let me = comm.rank();
                let _ = comm.allgather(Bytes::real(vec![me as u8])).await;
                let r = comm.iallgather(Bytes::real(vec![me as u8 + 10])).await;
                comm.wait(&r).await;
                r.take_data().expect("allgather").to_vec()
            },
        );
        for o in ag {
            assert_eq!(o, (10..10 + P as u8).collect::<Vec<_>>());
        }
    }
}
