//! Matrix coverage: every `Comm` trait operation, under every approach,
//! produces the correct data. This pins down the full public surface that
//! applications program against.

use approaches::{run_approach, AnyComm, Approach, Comm};
use mpisim::{bytes_to_f64s, f64s_to_bytes, Bytes, Dtype, ReduceOp};
use simnet::MachineProfile;

const P: usize = 4;

async fn exercise_everything(comm: AnyComm) -> Vec<String> {
    let mut log = Vec::new();
    let me = comm.rank();
    let p = comm.size();

    // p2p: ring exchange via isend/irecv/wait.
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let rx = comm.irecv(Some(left), Some(3)).await;
    let tx = comm.isend(right, 3, Bytes::real(vec![me as u8; 5])).await;
    comm.waitall(&[rx.clone(), tx]).await;
    let st = rx.status().expect("status");
    assert_eq!(st.source, left);
    assert_eq!(st.len, 5);
    log.push(format!("p2p:{}", rx.take_data().expect("data").to_vec()[0]));

    // test() on an already-complete request.
    let done = comm.isend(right, 4, Bytes::real(vec![1])).await;
    let (_, _) = comm.recv(Some(left), Some(4)).await;
    comm.wait(&done).await;
    assert!(comm.test(&done).await);

    // progress_hint is always safe to call.
    comm.progress_hint().await;

    // Barrier + ibarrier.
    comm.barrier().await;
    let b = comm.ibarrier().await;
    comm.wait(&b).await;

    // allreduce / iallreduce.
    let s = comm
        .allreduce(
            Bytes::real(f64s_to_bytes(&[1.0])),
            Dtype::F64,
            ReduceOp::Sum,
        )
        .await;
    assert_eq!(bytes_to_f64s(&s.to_vec())[0], p as f64);
    let r = comm
        .iallreduce(
            Bytes::real(f64s_to_bytes(&[me as f64])),
            Dtype::F64,
            ReduceOp::Max,
        )
        .await;
    comm.wait(&r).await;
    assert_eq!(
        bytes_to_f64s(&r.take_data().expect("max").to_vec())[0],
        (p - 1) as f64
    );

    // ireduce to a non-zero root.
    let r = comm
        .ireduce(
            1,
            Bytes::real(f64s_to_bytes(&[2.0])),
            Dtype::F64,
            ReduceOp::Sum,
        )
        .await;
    comm.wait(&r).await;
    if me == 1 {
        assert_eq!(
            bytes_to_f64s(&r.take_data().expect("reduce").to_vec())[0],
            2.0 * p as f64
        );
    }

    // bcast / ibcast.
    let payload = if me == 2 {
        Bytes::real(vec![7, 8, 9])
    } else {
        Bytes::synthetic(0)
    };
    assert_eq!(comm.bcast(2, payload).await.to_vec(), vec![7, 8, 9]);
    let r = comm
        .ibcast(
            0,
            if me == 0 {
                Bytes::real(vec![5])
            } else {
                Bytes::synthetic(0)
            },
        )
        .await;
    comm.wait(&r).await;
    assert_eq!(r.take_data().expect("bcast").to_vec(), vec![5]);

    // allgather / iallgather.
    let g = comm.allgather(Bytes::real(vec![me as u8])).await;
    assert_eq!(g.to_vec(), (0..p as u8).collect::<Vec<_>>());
    let r = comm.iallgather(Bytes::real(vec![me as u8 + 10])).await;
    comm.wait(&r).await;
    assert_eq!(
        r.take_data().expect("allgather").to_vec(),
        (0..p as u8).map(|x| x + 10).collect::<Vec<_>>()
    );

    // alltoall / ialltoall.
    let input: Vec<u8> = (0..p).map(|d| (me * p + d) as u8).collect();
    let out = comm.alltoall(Bytes::real(input.clone()), 1).await;
    let expect: Vec<u8> = (0..p).map(|s| (s * p + me) as u8).collect();
    assert_eq!(out.to_vec(), expect);
    let r = comm.ialltoall(Bytes::real(input), 1).await;
    comm.wait(&r).await;
    assert_eq!(r.take_data().expect("alltoall").to_vec(), expect);

    // igather / iscatter to root 3.
    let r = comm.igather(3, Bytes::real(vec![me as u8; 2])).await;
    comm.wait(&r).await;
    if me == 3 {
        let g = r.take_data().expect("gather").to_vec();
        let expect: Vec<u8> = (0..p as u8).flat_map(|x| [x, x]).collect();
        assert_eq!(g, expect);
    }
    let input =
        (me == 3).then(|| Bytes::real((0..p as u8).flat_map(|x| [x * 2, x * 2 + 1]).collect()));
    let r = comm.iscatter(3, input, 2).await;
    comm.wait(&r).await;
    assert_eq!(
        r.take_data().expect("scatter").to_vec(),
        vec![me as u8 * 2, me as u8 * 2 + 1]
    );

    log.push("ok".into());
    log
}

#[test]
fn every_approach_supports_the_full_comm_surface() {
    for approach in Approach::ALL {
        let (outs, _) = run_approach(
            P,
            MachineProfile::xeon(),
            approach,
            false,
            exercise_everything,
        );
        for (r, log) in outs.iter().enumerate() {
            assert_eq!(
                log.last().map(String::as_str),
                Some("ok"),
                "{} rank {r}: {log:?}",
                approach.name()
            );
            // The ring delivered the left neighbor's byte.
            assert_eq!(log[0], format!("p2p:{}", (r + P - 1) % P));
        }
    }
}

#[test]
fn approaches_are_deterministic_and_distinct_in_time() {
    // Same program, different approaches: identical data results (checked
    // above), different virtual timings — and each approach's timing is
    // itself reproducible.
    let elapsed = |a: Approach| {
        let (_, t) = run_approach(P, MachineProfile::xeon(), a, false, exercise_everything);
        t
    };
    for a in Approach::ALL {
        assert_eq!(elapsed(a), elapsed(a), "{} must be deterministic", a.name());
    }
    // THREAD_MULTIPLE approaches pay for their locks on this call-heavy
    // program.
    assert!(elapsed(Approach::CommSelf) > elapsed(Approach::Baseline));
}

/// Regression: under core-spec, the unlocked progress helper and a locked
/// application call can poll within one virtual instant; the fabric's
/// non-overtaking guarantee must keep ring-allgather blocks in order.
#[test]
fn core_spec_concurrent_pollers_preserve_message_order() {
    use mpisim::Bytes;
    for _ in 0..3 {
        let (outs, _) = run_approach(
            P,
            MachineProfile::xeon(),
            Approach::CoreSpec,
            false,
            exercise_everything,
        );
        for log in &outs {
            assert_eq!(log.last().map(String::as_str), Some("ok"));
        }
        // And the bare collective sequence:
        let (ag, _) = run_approach(
            P,
            MachineProfile::xeon(),
            Approach::CoreSpec,
            false,
            |comm: AnyComm| async move {
                let me = comm.rank();
                let _ = comm.allgather(Bytes::real(vec![me as u8])).await;
                let r = comm.iallgather(Bytes::real(vec![me as u8 + 10])).await;
                comm.wait(&r).await;
                r.take_data().expect("allgather").to_vec()
            },
        );
        for o in ag {
            assert_eq!(o, (10..10 + P as u8).collect::<Vec<_>>());
        }
    }
}

// ---------------------------------------------------------------------------
// The same matching contract against the *wire* backend: real sockets
// (loopback pairs in-process), MPI-style FIFO (source, tag) matching with
// wildcards, 2–4 ranks, payloads on both sides of the eager/rendezvous
// crossover.
// ---------------------------------------------------------------------------

mod wire_matrix {
    use approaches::live::{LiveApproach, LiveComm};
    use rtmpi::Transport;
    use std::sync::Arc;

    /// Distinguishable payload: sender rank, sequence number, size regime.
    fn payload(src: usize, seq: u8, len: usize) -> Arc<[u8]> {
        let mut v = vec![seq; len];
        v[0] = src as u8;
        Arc::from(v)
    }

    /// Every (wildcard × exact) combination of source and tag filters, with
    /// FIFO order within each (source, tag) stream. Rank 0 receives, every
    /// other rank sends three messages (tags 1, 2, 1 — in that order) whose
    /// sizes straddle the eager crossover.
    fn wildcard_matrix(n: usize, eager: usize) {
        let world = wire::loopback(n);
        let handles: Vec<_> = world
            .into_iter()
            .map(|t| {
                std::thread::spawn(move || {
                    let small = 64;
                    let big = eager * 4; // rendezvous regime
                    let mut c = LiveComm::start(LiveApproach::Baseline, t);
                    let (r, n) = (c.rank(), c.size());
                    if r != 0 {
                        // Sequence per sender: tag 1 (eager), tag 2
                        // (rendezvous), tag 1 again (rendezvous).
                        c.send(0, 1, payload(r, 10, small)).expect("send 1");
                        c.send(0, 2, payload(r, 20, big)).expect("send 2");
                        c.send(0, 1, payload(r, 30, big)).expect("send 3");
                        // Ack ensures the world stays up until rank 0 is done.
                        c.recv(Some(0), Some(9)).expect("ack");
                        return;
                    }
                    // Phase A — exact source, wildcard tag: must deliver each
                    // sender's FIFO-first message (tag 1, seq 10).
                    for s in 1..n {
                        let (st, d) = c.recv(Some(s), None).expect("recv A");
                        assert_eq!((st.source, st.tag, st.len), (s, 1, small));
                        assert_eq!((d[0] as usize, d[1]), (s, 10));
                    }
                    // Phase B — wildcard source, exact tag: the tag-2
                    // rendezvous messages, one per sender, any order.
                    let mut seen = vec![false; n];
                    for _ in 1..n {
                        let (st, d) = c.recv(None, Some(2)).expect("recv B");
                        assert_eq!((st.tag, st.len), (2, big));
                        assert_eq!((d[0] as usize, d[1]), (st.source, 20));
                        assert!(!seen[st.source], "duplicate source {}", st.source);
                        seen[st.source] = true;
                    }
                    assert!(seen[1..].iter().all(|&s| s), "all senders matched");
                    // Phase C — full wildcard: only the trailing tag-1
                    // messages remain; FIFO within each sender's stream
                    // means these are the seq-30 payloads.
                    for _ in 1..n {
                        let (st, d) = c.recv(None, None).expect("recv C");
                        assert_eq!((st.tag, st.len), (1, big));
                        assert_eq!((d[0] as usize, d[1]), (st.source, 30));
                    }
                    for s in 1..n {
                        c.send(s, 9, payload(0, 0, 1)).expect("ack");
                    }
                    // Everything consumed: iprobe on the reclaimed
                    // transport finds nothing buffered.
                    let mut t = c.finalize();
                    assert!(t.iprobe(None, None).is_none());
                })
            })
            .collect();
        for h in handles {
            h.join().expect("rank thread");
        }
    }

    #[test]
    fn wildcard_matrix_over_wire_2_to_4_ranks() {
        for n in 2..=4 {
            // Default crossover (4096) keeps small/big on opposite sides.
            wildcard_matrix(n, 4096);
        }
    }

    /// A receive posted *before* anything arrives must match the first
    /// frame its filters accept, not a later one — posted-order matching
    /// against live socket delivery.
    #[test]
    fn posted_wildcards_match_in_post_order() {
        let world = wire::loopback(2);
        let mut it = world.into_iter();
        let receiver = it.next().expect("rank 0");
        let sender = it.next().expect("rank 1");
        let rx_thread = std::thread::spawn(move || {
            let mut c = LiveComm::start(LiveApproach::Baseline, receiver);
            // Two wildcard receives posted before any data exists: they
            // must resolve in post order against the sender's FIFO.
            let r1 = c.irecv(None, None);
            let r2 = c.irecv(Some(1), Some(5));
            let (st1, d1) = c.wait(r1).expect("first").expect("payload");
            let (st2, d2) = c.wait(r2).expect("second").expect("payload");
            assert_eq!((st1.tag, d1[1]), (5, 1));
            assert_eq!((st2.tag, d2[1]), (5, 2));
            c.send(1, 9, payload(0, 0, 1)).expect("ack");
        });
        let tx_thread = std::thread::spawn(move || {
            let mut c = LiveComm::start(LiveApproach::Baseline, sender);
            c.send(0, 5, payload(1, 1, 8000)).expect("send 1");
            c.send(0, 5, payload(1, 2, 64)).expect("send 2");
            c.recv(Some(0), Some(9)).expect("ack");
        });
        rx_thread.join().expect("receiver");
        tx_thread.join().expect("sender");
    }
}
